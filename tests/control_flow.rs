//! Integration tests for control-flow-heavy programs: `while` loops, nested
//! loops, branch-in-loop mutation — the "beyond control flow boundaries"
//! capability that names the paper.

use tensorssa::backend::{DeviceProfile, RtValue};
use tensorssa::frontend::compile;
use tensorssa::pipelines::all_pipelines;
use tensorssa::tensor::Tensor;

fn agree(src: &str, inputs: &[RtValue]) {
    let g = compile(src).unwrap_or_else(|e| panic!("{src}\n{e}"));
    let mut reference: Option<Tensor> = None;
    for p in all_pipelines() {
        let cp = p.compile(&g);
        assert!(
            cp.graph.verify().is_ok(),
            "{}: {:?}",
            p.name(),
            cp.graph.verify()
        );
        let (outs, _) = cp
            .run(DeviceProfile::consumer(), inputs)
            .unwrap_or_else(|e| panic!("{}: {e}\n{src}", p.name()));
        let t = outs[0].as_tensor().unwrap().clone();
        match &reference {
            None => reference = Some(t),
            Some(r) => assert!(t.allclose(r, 1e-5), "{} diverges on\n{src}", p.name()),
        }
    }
}

#[test]
fn while_loop_with_mutation_agrees() {
    agree(
        "def f(x: Tensor, n: int):
             b = x.clone()
             k = 0
             while k < n:
                 b[k] = sigmoid(b[k])
                 k += 1
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[6, 4], -1.0, 1.0, 5)),
            RtValue::Int(6),
        ],
    );
}

#[test]
fn while_loop_zero_iterations() {
    agree(
        "def f(x: Tensor, n: int):
             b = x.clone()
             k = 0
             while k < n:
                 b[0] = relu(b[0])
                 k += 1
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[3, 3], -1.0, 1.0, 6)),
            RtValue::Int(0),
        ],
    );
}

#[test]
fn nested_loops_with_inner_mutation() {
    agree(
        "def f(x: Tensor, n: int, m: int):
             b = x.clone()
             for i in range(n):
                 for j in range(m):
                     b[i, j] = tanh(b[i, j]) + 0.25
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[3, 4], -1.0, 1.0, 7)),
            RtValue::Int(3),
            RtValue::Int(4),
        ],
    );
}

#[test]
fn branch_inside_loop_mutation() {
    agree(
        "def f(x: Tensor, n: int):
             b = x.clone()
             for i in range(n):
                 if i % 2 == 0:
                     b[i] = relu(b[i])
                 else:
                     b[i] = sigmoid(b[i]) * 2.0
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[6, 3], -1.0, 1.0, 8)),
            RtValue::Int(6),
        ],
    );
}

#[test]
fn loop_then_branch_then_mutation_chain() {
    agree(
        "def f(x: Tensor, c: bool, n: int):
             b = x.clone()
             if c:
                 b *= 2.0
             for i in range(n):
                 b[i] += 1.0
             if not c:
                 b[0] = b[1] + b[2]
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[4, 2], -1.0, 1.0, 9)),
            RtValue::Bool(false),
            RtValue::Int(4),
        ],
    );
}

#[test]
fn data_dependent_while_via_item() {
    // The loop count depends on tensor *data*, forcing a device sync each
    // iteration — all pipelines must still agree.
    agree(
        "def f(x: Tensor):
             b = x.clone()
             while b.sum(0).sum(0).item() < 20.0:
                 b += 1.0
             return b
        ",
        &[RtValue::Tensor(Tensor::zeros(&[2, 3]))],
    );
}

#[test]
fn sequential_dependency_is_preserved() {
    // b[i] reads b[i-1]: NOT parallelizable; the pattern guard must keep the
    // loop sequential and results identical.
    agree(
        "def f(x: Tensor, n: int):
             b = x.clone()
             for i in range(n):
                 b[i + 1] = b[i] + b[i + 1]
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[5, 3], -1.0, 1.0, 11)),
            RtValue::Int(4),
        ],
    );
}
