//! Regression tests pinning the *structure* the TensorSSA pipeline produces
//! for each workload — which optimizations fire where. If a pass change
//! silently stops parallelizing attention or fusing LSTM bodies, these fail
//! before any benchmark notices.

use tensorssa::ir::Op;
use tensorssa::pipelines::{Pipeline, TensorSsa};
use tensorssa::workloads::Workload;

struct Expect {
    name: &'static str,
    mutations_removed_at_least: usize,
    parallel_loops: usize,
    fusion_groups_at_least: usize,
}

const EXPECTATIONS: &[Expect] = &[
    Expect {
        name: "yolov3",
        mutations_removed_at_least: 3,
        parallel_loops: 0,
        fusion_groups_at_least: 1,
    },
    Expect {
        name: "ssd",
        mutations_removed_at_least: 2,
        parallel_loops: 0,
        fusion_groups_at_least: 1,
    },
    Expect {
        name: "yolact",
        mutations_removed_at_least: 4,
        parallel_loops: 0,
        fusion_groups_at_least: 1,
    },
    Expect {
        name: "fcos",
        mutations_removed_at_least: 4,
        parallel_loops: 0,
        fusion_groups_at_least: 1,
    },
    Expect {
        name: "nasrnn",
        mutations_removed_at_least: 1,
        parallel_loops: 0,
        fusion_groups_at_least: 1,
    },
    Expect {
        name: "lstm",
        mutations_removed_at_least: 1,
        parallel_loops: 0,
        fusion_groups_at_least: 1,
    },
    Expect {
        name: "seq2seq",
        mutations_removed_at_least: 1,
        parallel_loops: 0,
        fusion_groups_at_least: 0,
    },
    Expect {
        name: "attention",
        mutations_removed_at_least: 2,
        parallel_loops: 1,
        fusion_groups_at_least: 1,
    },
];

#[test]
fn tensorssa_structure_per_workload() {
    for e in EXPECTATIONS {
        let w = Workload::by_name(e.name).expect("known workload");
        let g = w.graph().expect("compiles");
        let cp = TensorSsa::default().compile(&g);
        assert!(
            cp.conversion.mutations_removed >= e.mutations_removed_at_least,
            "{}: expected ≥{} mutations removed, got {}",
            e.name,
            e.mutations_removed_at_least,
            cp.conversion.mutations_removed
        );
        assert_eq!(
            cp.parallel_loops, e.parallel_loops,
            "{}: parallel loop count changed",
            e.name
        );
        assert!(
            cp.fusion_groups >= e.fusion_groups_at_least,
            "{}: expected ≥{} fusion groups, got {}",
            e.name,
            e.fusion_groups_at_least,
            cp.fusion_groups
        );
        // The converted graph must contain no imperative mutation.
        let mutations = cp
            .graph
            .nodes_recursive(cp.graph.top())
            .into_iter()
            .filter(|&n| matches!(cp.graph.node(n).op, Op::Mutate(_)))
            .count();
        assert_eq!(mutations, 0, "{}: imperative mutation survived", e.name);
    }
}

#[test]
fn attention_collapses_to_parallel_map() {
    let w = Workload::by_name("attention").unwrap();
    let cp = TensorSsa::default().compile(&w.graph().unwrap());
    let ops: Vec<String> = cp
        .graph
        .nodes_recursive(cp.graph.top())
        .into_iter()
        .map(|n| cp.graph.node(n).op.name())
        .collect();
    assert!(
        ops.iter().any(|o| o == "prim::ParallelMap"),
        "attention loop should parallelize: {ops:?}"
    );
    assert!(
        !ops.iter().any(|o| o == "prim::Loop"),
        "no sequential loop should remain: {ops:?}"
    );
}

#[test]
fn nlp_recurrences_stay_sequential() {
    for name in ["nasrnn", "lstm", "seq2seq"] {
        let w = Workload::by_name(name).unwrap();
        let cp = TensorSsa::default().compile(&w.graph().unwrap());
        let has_loop = cp
            .graph
            .nodes_recursive(cp.graph.top())
            .into_iter()
            .any(|n| cp.graph.node(n).op == Op::Loop);
        assert!(has_loop, "{name}: the time recurrence cannot parallelize");
    }
}

#[test]
fn baselines_never_functionalize_across_control_flow() {
    use tensorssa::pipelines::DynamoInductor;
    // LSTM's out[t] mutation sits inside the loop: the Dynamo model must
    // leave it imperative (the graph-break behaviour).
    let w = Workload::by_name("lstm").unwrap();
    let cp = DynamoInductor.compile(&w.graph().unwrap());
    let mutations = cp
        .graph
        .nodes_recursive(cp.graph.top())
        .into_iter()
        .filter(|&n| cp.graph.node(n).op.is_mutation())
        .count();
    assert!(
        mutations > 0,
        "Dynamo model must graph-break on loop mutation"
    );
}
