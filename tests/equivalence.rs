//! Cross-crate integration: every pipeline must compute the same results as
//! eager execution on every workload, while TensorSSA launches no more
//! kernels than any baseline.

use tensorssa::backend::{DeviceProfile, ExecStats, RtValue};
use tensorssa::pipelines::{all_pipelines, Pipeline, TensorSsa};
use tensorssa::workloads::all_workloads;

fn run_workload(name: &str, batch: usize, seq: usize) -> Vec<(String, Vec<RtValue>, ExecStats)> {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .expect("workload exists");
    let g = w.graph().expect("compiles");
    let inputs = w.inputs(batch, seq, 1234);
    all_pipelines()
        .iter()
        .map(|p| {
            let cp = p.compile(&g);
            assert!(
                cp.graph.verify().is_ok(),
                "{name}/{}: {:?}",
                p.name(),
                cp.graph.verify()
            );
            let (o, s) = cp
                .run(DeviceProfile::consumer(), &inputs)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name()));
            (p.name().to_string(), o, s)
        })
        .collect()
}

fn assert_all_agree(name: &str, results: &[(String, Vec<RtValue>, ExecStats)]) {
    let (_, reference, _) = &results[0];
    for (pname, outs, _) in results {
        assert_eq!(outs.len(), reference.len(), "{name}/{pname} arity");
        for (i, (o, r)) in outs.iter().zip(reference).enumerate() {
            let (o, r) = (o.as_tensor().unwrap(), r.as_tensor().unwrap());
            assert!(
                o.allclose(r, 1e-4),
                "{name}/{pname}: output {i} diverges from eager"
            );
        }
    }
}

macro_rules! workload_tests {
    ($($fn_name:ident => $name:literal),* $(,)?) => {
        $(
            #[test]
            fn $fn_name() {
                let results = run_workload($name, 0, 0);
                assert_all_agree($name, &results);
                let launches = |n: &str| {
                    results
                        .iter()
                        .find(|(p, ..)| p == n)
                        .map(|(_, _, s)| s.kernel_launches)
                        .unwrap()
                };
                let ours = launches("TensorSSA");
                for p in ["Eager", "TorchScript+NNC", "TorchScript+nvFuser", "Dynamo+Inductor"] {
                    assert!(
                        ours <= launches(p),
                        "{}: TensorSSA launches {ours} kernels but {p} launches {}",
                        $name,
                        launches(p)
                    );
                }
            }
        )*
    };
}

workload_tests!(
    yolov3_agrees => "yolov3",
    ssd_agrees => "ssd",
    yolact_agrees => "yolact",
    fcos_agrees => "fcos",
    nasrnn_agrees => "nasrnn",
    lstm_agrees => "lstm",
    seq2seq_agrees => "seq2seq",
    attention_agrees => "attention",
);

#[test]
fn tensorssa_beats_baselines_in_simulated_time_on_average() {
    let mut total_ours = 0.0;
    let mut total_best_baseline = 0.0;
    for w in all_workloads() {
        let results = run_workload(w.name, 0, 0);
        let ours = results
            .iter()
            .find(|(p, ..)| p == "TensorSSA")
            .map(|(_, _, s)| s.total_ns())
            .unwrap();
        let best = results
            .iter()
            .filter(|(p, ..)| p != "TensorSSA" && p != "Eager")
            .map(|(_, _, s)| s.total_ns())
            .fold(f64::INFINITY, f64::min);
        total_ours += ours;
        total_best_baseline += best;
    }
    assert!(
        total_ours < total_best_baseline,
        "TensorSSA total {total_ours}ns should beat best-baseline total {total_best_baseline}ns"
    );
}

#[test]
fn batch_scaling_preserves_agreement() {
    for batch in [1, 2, 8] {
        let results = run_workload("ssd", batch, 0);
        assert_all_agree("ssd", &results);
    }
}

#[test]
fn seq_scaling_preserves_agreement() {
    for seq in [4, 32] {
        let results = run_workload("attention", 0, seq);
        assert_all_agree("attention", &results);
    }
}

#[test]
fn ablations_stay_correct() {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "yolact")
        .unwrap();
    let g = w.graph().unwrap();
    let inputs = w.inputs(0, 0, 99);
    let reference = tensorssa::pipelines::Eager
        .compile(&g)
        .run(DeviceProfile::consumer(), &inputs)
        .unwrap()
        .0;
    for variant in [
        TensorSsa {
            block_propagation: false,
            ..TensorSsa::default()
        },
        TensorSsa {
            horizontal: false,
            ..TensorSsa::default()
        },
        TensorSsa {
            fuse_access_assign: false,
            ..TensorSsa::default()
        },
    ] {
        let cp = variant.compile(&g);
        let (outs, _) = cp.run(DeviceProfile::consumer(), &inputs).unwrap();
        assert!(outs[0]
            .as_tensor()
            .unwrap()
            .allclose(reference[0].as_tensor().unwrap(), 1e-5));
    }
}
