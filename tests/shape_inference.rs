//! Shape inference applied to whole workloads: the analysis must agree with
//! the shapes the executor actually produces.

use tensorssa::backend::{ExecConfig, Executor, RtValue};
use tensorssa::ir::infer_shapes;
use tensorssa::workloads::Workload;

#[test]
fn inferred_shapes_match_executed_shapes() {
    for name in [
        "yolov3",
        "ssd",
        "yolact",
        "fcos",
        "nasrnn",
        "lstm",
        "seq2seq",
        "attention",
    ] {
        let w = Workload::by_name(name).expect("known workload");
        let g = w.graph().expect("compiles");
        let inputs = w.inputs(2, 6, 11);
        let input_shapes: Vec<Option<Vec<usize>>> = inputs
            .iter()
            .map(|v| match v {
                RtValue::Tensor(t) => Some(t.shape().to_vec()),
                _ => None,
            })
            .collect();
        let info = infer_shapes(&g, &input_shapes);
        let (outs, _) = Executor::new(ExecConfig::compiled())
            .run(&g, &inputs)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for (i, (&ret, out)) in g.block(g.top()).returns.iter().zip(&outs).enumerate() {
            let actual = out.as_tensor().unwrap().shape().to_vec();
            if let Some(inferred) = info.shape(ret) {
                assert_eq!(
                    inferred.len(),
                    actual.len(),
                    "{name}: output {i} rank mismatch (inferred {inferred:?}, actual {actual:?})"
                );
                for (d, (inf, act)) in inferred.iter().zip(&actual).enumerate() {
                    if let Some(v) = inf.as_const() {
                        assert_eq!(
                            v, *act,
                            "{name}: output {i} dim {d} inferred {v} but executed {act}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn straight_line_cv_outputs_are_fully_known() {
    // yolov3 uses only constant slice bounds: the analysis should pin every
    // output dimension statically.
    let w = Workload::by_name("yolov3").unwrap();
    let g = w.graph().unwrap();
    let inputs = w.inputs(2, 0, 1);
    let shapes: Vec<Option<Vec<usize>>> = inputs
        .iter()
        .map(|v| match v {
            RtValue::Tensor(t) => Some(t.shape().to_vec()),
            _ => None,
        })
        .collect();
    let info = infer_shapes(&g, &shapes);
    let ret = g.block(g.top()).returns[0];
    assert!(info.fully_known(ret), "{:?}", info.shape(ret));
}
