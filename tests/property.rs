//! Property-based equivalence testing: random imperative tensor programs
//! (views, slice/row mutations, loops, branches) must produce identical
//! results under every compilation pipeline, and the TensorSSA conversion
//! must never *increase* the kernel-launch count.

use proptest::prelude::*;

use tensorssa::backend::{DeviceProfile, RtValue};
use tensorssa::frontend::compile;
use tensorssa::pipelines::all_pipelines;
use tensorssa::tensor::Tensor;

const ROWS: usize = 4;

/// Expression over the current row context (`b[i]`-style operands).
#[derive(Debug, Clone)]
enum PExpr {
    BRow,
    XRow,
    Sigmoid(Box<PExpr>),
    Tanh(Box<PExpr>),
    Relu(Box<PExpr>),
    AddS(Box<PExpr>, i8),
    MulS(Box<PExpr>, i8),
    Add(Box<PExpr>, Box<PExpr>),
    Mul(Box<PExpr>, Box<PExpr>),
}

impl PExpr {
    fn render(&self, row: &str) -> String {
        match self {
            PExpr::BRow => format!("b[{row}]"),
            PExpr::XRow => format!("x[{row}]"),
            PExpr::Sigmoid(e) => format!("sigmoid({})", e.render(row)),
            PExpr::Tanh(e) => format!("tanh({})", e.render(row)),
            PExpr::Relu(e) => format!("relu({})", e.render(row)),
            PExpr::AddS(e, v) => format!("({} + {}.5)", e.render(row), v),
            PExpr::MulS(e, v) => format!("({} * {}.25)", e.render(row), v),
            PExpr::Add(a, b) => format!("({} + {})", a.render(row), b.render(row)),
            PExpr::Mul(a, b) => format!("({} * {})", a.render(row), b.render(row)),
        }
    }
}

/// Statement forms; loops iterate the row dimension, branches test a bool
/// input.
#[derive(Debug, Clone)]
enum PStmt {
    AssignRow { dst: usize, expr: PExpr },
    AugRow { dst: usize, mul: bool, v: i8 },
    SliceFill { lo: usize, len: usize, v: i8 },
    WholeMut { op: &'static str },
    LoopRows { expr: PExpr },
    Branch { then: Vec<PStmt>, els: Vec<PStmt> },
}

fn render_block(stmts: &[PStmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            PStmt::AssignRow { dst, expr } => {
                out.push_str(&format!(
                    "{pad}b[{dst}] = {}\n",
                    expr.render(&dst.to_string())
                ));
            }
            PStmt::AugRow { dst, mul, v } => {
                let op = if *mul { "*=" } else { "+=" };
                out.push_str(&format!("{pad}b[{dst}] {op} {v}.5\n"));
            }
            PStmt::SliceFill { lo, len, v } => {
                out.push_str(&format!("{pad}b[{lo}:{}] = {v}.75\n", lo + len));
            }
            PStmt::WholeMut { op } => {
                out.push_str(&format!("{pad}b.{op}()\n"));
            }
            PStmt::LoopRows { expr } => {
                out.push_str(&format!("{pad}for i in range({ROWS}):\n"));
                out.push_str(&format!("{pad}    b[i] = {}\n", expr.render("i")));
            }
            PStmt::Branch { then, els } => {
                out.push_str(&format!("{pad}if c:\n"));
                render_block(then, indent + 1, out);
                if !els.is_empty() {
                    out.push_str(&format!("{pad}else:\n"));
                    render_block(els, indent + 1, out);
                }
            }
        }
    }
}

fn render_program(stmts: &[PStmt]) -> String {
    let mut src = String::from("def prog(x: Tensor, c: bool):\n    b = x.clone()\n");
    render_block(stmts, 1, &mut src);
    src.push_str("    return b\n");
    src
}

fn expr_strategy() -> impl Strategy<Value = PExpr> {
    let leaf = prop_oneof![Just(PExpr::BRow), Just(PExpr::XRow)];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| PExpr::Sigmoid(Box::new(e))),
            inner.clone().prop_map(|e| PExpr::Tanh(Box::new(e))),
            inner.clone().prop_map(|e| PExpr::Relu(Box::new(e))),
            (inner.clone(), -3i8..3).prop_map(|(e, v)| PExpr::AddS(Box::new(e), v)),
            (inner.clone(), -2i8..3).prop_map(|(e, v)| PExpr::MulS(Box::new(e), v)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| PExpr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn simple_stmt_strategy() -> impl Strategy<Value = PStmt> {
    prop_oneof![
        (0..ROWS, expr_strategy()).prop_map(|(dst, expr)| PStmt::AssignRow { dst, expr }),
        (0..ROWS, any::<bool>(), -2i8..3).prop_map(|(dst, mul, v)| PStmt::AugRow { dst, mul, v }),
        (0..ROWS - 1, 1..2usize, -2i8..3).prop_map(|(lo, len, v)| PStmt::SliceFill { lo, len, v }),
        prop_oneof![Just("relu_"), Just("sigmoid_"), Just("tanh_"), Just("neg_")]
            .prop_map(|op| PStmt::WholeMut { op }),
        expr_strategy().prop_map(|expr| PStmt::LoopRows { expr }),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = PStmt> {
    prop_oneof![
        4 => simple_stmt_strategy(),
        1 => (
            prop::collection::vec(simple_stmt_strategy(), 1..3),
            prop::collection::vec(simple_stmt_strategy(), 0..3),
        )
            .prop_map(|(then, els)| PStmt::Branch { then, els }),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<PStmt>> {
    prop::collection::vec(stmt_strategy(), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
    })]

    /// Every pipeline computes what eager computes, on every random program.
    #[test]
    fn pipelines_agree_on_random_programs(
        stmts in program_strategy(),
        cond in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let src = render_program(&stmts);
        let graph = compile(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        let x = Tensor::rand_uniform(&[ROWS, 3], -1.0, 1.0, seed);
        let inputs = [RtValue::Tensor(x), RtValue::Bool(cond)];
        let mut reference: Option<Tensor> = None;
        let mut eager_launches = 0;
        for p in all_pipelines() {
            let cp = p.compile(&graph);
            prop_assert!(cp.graph.verify().is_ok(), "{}:\n{src}\n{:?}", p.name(), cp.graph.verify());
            let (outs, stats) = cp
                .run(DeviceProfile::consumer(), &inputs)
                .unwrap_or_else(|e| panic!("{}:\n{src}\n{e}", p.name()));
            let t = outs[0].as_tensor().unwrap().clone();
            match &reference {
                None => {
                    reference = Some(t);
                    eager_launches = stats.kernel_launches;
                }
                Some(r) => {
                    prop_assert!(
                        t.allclose(r, 1e-4),
                        "{} diverges on:\n{src}",
                        p.name()
                    );
                    if p.name() == "TensorSSA" {
                        prop_assert!(
                            stats.kernel_launches <= eager_launches,
                            "TensorSSA regressed launches on:\n{src}"
                        );
                    }
                }
            }
        }
    }

    /// The printed IR of any random program parses back to the same text.
    #[test]
    fn ir_text_round_trips(stmts in program_strategy()) {
        let src = render_program(&stmts);
        let graph = compile(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        let printed = graph.to_string();
        let reparsed = tensorssa::ir::parse_graph(&printed)
            .unwrap_or_else(|e| panic!("{printed}\n{e}"));
        prop_assert_eq!(printed, reparsed.to_string());
    }
}
