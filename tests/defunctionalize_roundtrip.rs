//! Functionalize → de-functionalize round trips (§3.2's "flexibility"):
//! converting the immutable operators back to views and mutations must
//! preserve results on real workloads.

use tensorssa::backend::{DeviceProfile, ExecConfig, Executor};
use tensorssa::core::passes::dce;
use tensorssa::core::{convert_to_tensorssa, defunctionalize};
use tensorssa::workloads::all_workloads;

#[test]
fn defunctionalized_workloads_match_eager() {
    let exec = Executor::new(ExecConfig::eager().with_device(DeviceProfile::consumer()));
    for w in all_workloads() {
        let original = w.graph().expect("workload compiles");
        let inputs = w.inputs(2, 8, 77);
        let (reference, _) = exec.run(&original, &inputs).expect("eager runs");

        let mut g = original.clone();
        convert_to_tensorssa(&mut g);
        dce(&mut g);
        defunctionalize(&mut g);
        dce(&mut g);
        g.verify()
            .unwrap_or_else(|e| panic!("{}: {e}\n{g}", w.name));
        let (roundtrip, _) = exec
            .run(&g, &inputs)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));

        assert_eq!(reference.len(), roundtrip.len(), "{}", w.name);
        for (i, (a, b)) in reference.iter().zip(&roundtrip).enumerate() {
            let (a, b) = (a.as_tensor().unwrap(), b.as_tensor().unwrap());
            assert!(
                a.allclose(b, 1e-4),
                "{}: output {i} changed across the round trip",
                w.name
            );
        }
    }
}

#[test]
fn tensorssa_form_contains_no_mutation_for_clean_workloads() {
    use tensorssa::ir::Op;
    for w in all_workloads() {
        let mut g = w.graph().expect("workload compiles");
        convert_to_tensorssa(&mut g);
        dce(&mut g);
        let leftover_mutations = g
            .nodes_recursive(g.top())
            .into_iter()
            .filter(|&n| matches!(g.node(n).op, Op::Mutate(_)))
            .count();
        assert_eq!(
            leftover_mutations, 0,
            "{}: every mutation should be functionalized",
            w.name
        );
    }
}
