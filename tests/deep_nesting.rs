//! Stress tests for block propagation through multiple nesting levels:
//! mutations buried in loop-in-loop, branch-in-loop and loop-in-branch
//! structures must version correctly all the way to the top block.

use tensorssa::backend::{DeviceProfile, ExecConfig, Executor, RtValue};
use tensorssa::core::convert_to_tensorssa;
use tensorssa::core::passes::dce;
use tensorssa::frontend::compile;
use tensorssa::ir::Op;
use tensorssa::tensor::Tensor;

/// Run the imperative graph and its TensorSSA conversion; both must agree,
/// and the converted form must be mutation-free.
fn check(src: &str, inputs: &[RtValue]) {
    let original = compile(src).unwrap_or_else(|e| panic!("{src}\n{e}"));
    let exec = Executor::new(ExecConfig::compiled().with_device(DeviceProfile::consumer()));
    let (reference, _) = exec.run(&original, inputs).expect("imperative runs");

    let mut converted = original.clone();
    let stats = convert_to_tensorssa(&mut converted);
    assert!(stats.mutations_removed > 0, "nothing converted for\n{src}");
    dce(&mut converted);
    converted
        .verify()
        .unwrap_or_else(|e| panic!("{e}\n{converted}"));
    let mutations = converted
        .nodes_recursive(converted.top())
        .into_iter()
        .filter(|&n| matches!(converted.node(n).op, Op::Mutate(_)))
        .count();
    assert_eq!(mutations, 0, "leftover mutations in\n{converted}");

    let (result, _) = exec.run(&converted, inputs).expect("converted runs");
    for (i, (a, b)) in reference.iter().zip(&result).enumerate() {
        assert!(
            a.as_tensor()
                .unwrap()
                .allclose(b.as_tensor().unwrap(), 1e-5),
            "output {i} diverges for\n{src}\n{converted}"
        );
    }
}

#[test]
fn mutation_two_loops_deep() {
    check(
        "def f(x: Tensor, n: int, m: int):
             b = x.clone()
             for i in range(n):
                 for j in range(m):
                     b[i, j] = sigmoid(b[i, j])
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[3, 4], -1.0, 1.0, 1)),
            RtValue::Int(3),
            RtValue::Int(4),
        ],
    );
}

#[test]
fn mutation_in_branch_in_loop() {
    check(
        "def f(x: Tensor, n: int):
             b = x.clone()
             for i in range(n):
                 if i % 2 == 0:
                     b[i] = relu(b[i])
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[4, 3], -1.0, 1.0, 2)),
            RtValue::Int(4),
        ],
    );
}

#[test]
fn mutation_in_loop_in_branch() {
    check(
        "def f(x: Tensor, c: bool, n: int):
             b = x.clone()
             if c:
                 for i in range(n):
                     b[i] = tanh(b[i])
             else:
                 b[0] = relu(b[0])
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[4, 2], -1.0, 1.0, 3)),
            RtValue::Bool(true),
            RtValue::Int(4),
        ],
    );
    check(
        "def f(x: Tensor, c: bool, n: int):
             b = x.clone()
             if c:
                 for i in range(n):
                     b[i] = tanh(b[i])
             else:
                 b[0] = relu(b[0])
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[4, 2], -1.0, 1.0, 4)),
            RtValue::Bool(false),
            RtValue::Int(4),
        ],
    );
}

#[test]
fn mutations_of_two_tensors_interleaved() {
    check(
        "def f(x: Tensor, y: Tensor, n: int):
             a = x.clone()
             b = y.clone()
             for i in range(n):
                 a[i] = sigmoid(a[i]) + b[i]
                 b[i] = tanh(b[i]) * 0.5
             return a, b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[4, 3], -1.0, 1.0, 5)),
            RtValue::Tensor(Tensor::rand_uniform(&[4, 3], -1.0, 1.0, 6)),
            RtValue::Int(4),
        ],
    );
}

#[test]
fn mutation_before_inside_and_after_loop() {
    check(
        "def f(x: Tensor, n: int):
             b = x.clone()
             b[0] = relu(b[0])
             for i in range(n):
                 b[i] += 1.0
             b[1] = b[0] * 2.0
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[3, 2], -1.0, 1.0, 7)),
            RtValue::Int(3),
        ],
    );
}

#[test]
fn three_levels_of_nesting() {
    check(
        "def f(x: Tensor, n: int, c: bool):
             b = x.clone()
             for i in range(n):
                 if c:
                     for j in range(n):
                         b[i, j] = b[i, j] * 2.0 + 1.0
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[3, 3], -1.0, 1.0, 8)),
            RtValue::Int(3),
            RtValue::Bool(true),
        ],
    );
}

#[test]
fn slice_mutations_at_depth() {
    check(
        "def f(x: Tensor, n: int):
             b = x.clone()
             for i in range(n):
                 b[i, 1:3] = sigmoid(b[i, 0:2])
             return b
        ",
        &[
            RtValue::Tensor(Tensor::rand_uniform(&[3, 4], -1.0, 1.0, 9)),
            RtValue::Int(3),
        ],
    );
}
