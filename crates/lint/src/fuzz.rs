//! Differential IR fuzzing (TorchProbe-style): seeded random imperative DSL
//! programs executed before and after a graph transformation, diffing the
//! numeric results.
//!
//! The generator emits *source text* rather than raw graphs, so every case
//! is automatically well-scoped and type-correct — the frontend is the
//! oracle for validity, the reference interpreter for semantics. Programs
//! mix views, in-place mutations and nested `if`/`for` control flow: the
//! exact territory where functionalization bugs hide.
//!
//! All tensors are 4x4 matrices; the integer input is pinned to 4 so loop
//! indices always stay in bounds, and only NaN-free operations are emitted
//! (no `exp`/`log`/`sqrt`/division), keeping `allclose` comparisons
//! meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tssa_backend::{ExecConfig, Executor, RtValue};
use tssa_ir::{infer_shapes_symbolic, DimVar, Graph};
use tssa_tensor::Tensor;

/// Side length of every generated matrix (and the value of the `n` input).
pub const DIM: usize = 4;

/// Comparison tolerance for the differential check.
pub const TOLERANCE: f64 = 1e-5;

/// Generate the DSL source text for `seed`.
///
/// The skeleton is fixed (`def fuzz(x: Tensor, y: Tensor, c: bool, n: int)`
/// with `a`/`b` cloned up front so mutations are functionalizable); the body
/// is 3–10 random statements drawn from pure rebinds, row assignments,
/// in-place mutations, `if c:` branches and `for i in range(n):` loops.
pub fn generate_source(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(seed));
    let mut lines: Vec<String> = vec![
        "def fuzz(x: Tensor, y: Tensor, c: bool, n: int):".into(),
        "    a = x.clone()".into(),
        "    b = y.clone()".into(),
    ];
    let mut vars: Vec<String> = vec!["a".into(), "b".into()];
    let mut fresh = 0usize;

    let pick = |rng: &mut StdRng, vars: &[String]| -> String {
        vars[rng.gen_range(0..vars.len())].clone()
    };
    let lit = |rng: &mut StdRng| -> String {
        // Small halves: exactly representable, keeps magnitudes tame.
        format!("{:.1}", (rng.gen_range(-4i64..5) as f64) * 0.5)
    };
    let unary = |rng: &mut StdRng| -> &'static str {
        ["relu", "sigmoid", "tanh", "neg"][rng.gen_range(0usize..4)]
    };
    let inplace = |rng: &mut StdRng| -> &'static str {
        ["relu_", "sigmoid_", "tanh_", "neg_"][rng.gen_range(0usize..4)]
    };
    // A matrix-shaped expression over existing variables.
    fn mat_expr(rng: &mut StdRng, vars: &[String]) -> String {
        let a = vars[rng.gen_range(0..vars.len())].clone();
        match rng.gen_range(0u32..5) {
            0 => format!("{a}.relu()"),
            1 => format!("{a}.tanh()"),
            2 => {
                let b = &vars[rng.gen_range(0..vars.len())];
                format!("{a} + {b}")
            }
            3 => {
                let b = &vars[rng.gen_range(0..vars.len())];
                format!("{a} * {b}")
            }
            _ => format!("{a} + {:.1}", (rng.gen_range(-4i64..5) as f64) * 0.5),
        }
    }
    // A row-shaped (length-DIM) expression.
    fn row_expr(rng: &mut StdRng, vars: &[String], idx: &str) -> String {
        let src = &vars[rng.gen_range(0..vars.len())];
        let j = rng.gen_range(0..DIM);
        match rng.gen_range(0u32..4) {
            0 => format!("{src}[{j}]"),
            1 => format!("{src}[{j}] + {:.1}", (rng.gen_range(-4i64..5) as f64) * 0.5),
            2 => format!("{src}[{j}].relu()"),
            _ => format!("{src}[{idx}]", src = src, idx = idx),
        }
    }
    // One mutation-flavoured statement at the given indent, usable inside
    // control-flow bodies (no new bindings, so scoping stays trivial).
    fn mutation_stmt(rng: &mut StdRng, vars: &[String], indent: &str, idx: &str) -> String {
        let m = vars[rng.gen_range(0..vars.len())].clone();
        match rng.gen_range(0u32..4) {
            0 => {
                let i = rng.gen_range(0..DIM).to_string();
                let e = row_expr(rng, vars, &i);
                format!("{indent}{m}[{i}] = {e}")
            }
            1 => {
                let i = if idx.is_empty() {
                    rng.gen_range(0..DIM).to_string()
                } else {
                    idx.to_string()
                };
                let l = format!("{:.1}", (rng.gen_range(-4i64..5) as f64) * 0.5);
                format!("{indent}{m}[{i}] += {l}")
            }
            2 => {
                let f = ["relu_", "sigmoid_", "tanh_", "neg_"][rng.gen_range(0usize..4)];
                format!("{indent}{m}.{f}()")
            }
            _ => {
                let e = mat_expr(rng, vars);
                format!("{indent}{m} = {e}")
            }
        }
    }

    let n_stmts = rng.gen_range(3usize..11);
    for _ in 0..n_stmts {
        match rng.gen_range(0u32..8) {
            // Bind a new matrix variable.
            0 | 1 => {
                let e = mat_expr(&mut rng, &vars);
                let v = format!("v{fresh}");
                fresh += 1;
                lines.push(format!("    {v} = {e}"));
                vars.push(v);
            }
            // Row assignment.
            2 => {
                let m = pick(&mut rng, &vars);
                let i = rng.gen_range(0..DIM).to_string();
                let e = row_expr(&mut rng, &vars, &i);
                lines.push(format!("    {m}[{i}] = {e}"));
            }
            // Row augmented assignment.
            3 => {
                let m = pick(&mut rng, &vars);
                let i = rng.gen_range(0..DIM);
                let l = lit(&mut rng);
                lines.push(format!("    {m}[{i}] += {l}"));
            }
            // Whole-tensor in-place mutation.
            4 => {
                let m = pick(&mut rng, &vars);
                let f = inplace(&mut rng);
                lines.push(format!("    {m}.{f}()"));
            }
            // Conditional, possibly with an else branch.
            5 => {
                lines.push("    if c:".into());
                for _ in 0..rng.gen_range(1usize..3) {
                    lines.push(mutation_stmt(&mut rng, &vars, "        ", ""));
                }
                if rng.gen_range(0u32..2) == 0 {
                    lines.push("    else:".into());
                    lines.push(mutation_stmt(&mut rng, &vars, "        ", ""));
                }
            }
            // Loop over the rows, mutating through the loop index.
            6 => {
                lines.push("    for i in range(n):".into());
                for _ in 0..rng.gen_range(1usize..3) {
                    lines.push(mutation_stmt(&mut rng, &vars, "        ", "i"));
                }
            }
            // Rebind an existing variable (exercises scalar SSA).
            _ => {
                let m = pick(&mut rng, &vars);
                let u = unary(&mut rng);
                lines.push(format!("    {m} = {m}.{u}()"));
            }
        }
    }

    let mut rets: Vec<String> = vec!["a".into(), "b".into()];
    if let Some(last) = vars.last() {
        if !rets.contains(last) {
            rets.push(last.clone());
        }
    }
    lines.push(format!("    return {}", rets.join(", ")));
    let mut src = lines.join("\n");
    src.push('\n');
    src
}

/// Fresh runtime inputs for `seed`. Regenerated before every execution:
/// mutations write through the tensors, so inputs must never be shared
/// between runs.
pub fn inputs_for(seed: u64) -> Vec<RtValue> {
    vec![
        RtValue::Tensor(Tensor::rand_uniform(&[DIM, DIM], -1.0, 1.0, seed ^ 0xA5A5)),
        RtValue::Tensor(Tensor::rand_uniform(&[DIM, DIM], -1.0, 1.0, seed ^ 0x5A5A)),
        RtValue::Bool(seed.is_multiple_of(2)),
        RtValue::Int(DIM as i64),
    ]
}

/// Execute `g` on fresh inputs for `seed` under `config`, returning the
/// output tensors.
pub fn run_with(g: &Graph, config: &ExecConfig, seed: u64) -> Result<Vec<Tensor>, String> {
    let (outs, _stats) = Executor::new(config.clone())
        .run(g, &inputs_for(seed))
        .map_err(|e| format!("execution failed: {e}"))?;
    outs.iter()
        .map(|v| {
            v.as_tensor()
                .map(Tensor::clone_data)
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// Execute `g` on fresh inputs for `seed` with the reference (eager)
/// interpreter, returning the output tensors.
pub fn run_reference(g: &Graph, seed: u64) -> Result<Vec<Tensor>, String> {
    run_with(g, &ExecConfig::eager(), seed)
}

/// Input ranks of the fuzz skeleton `(x: Tensor, y: Tensor, c: bool,
/// n: int)` as the symbolic shape analysis expects them.
pub const SYMBOLIC_RANKS: [Option<usize>; 4] = [Some(2), Some(2), None, None];

/// Differential check of the symbolic shape analysis itself: run `g` under
/// a shape-tracing executor and require that every concrete shape the
/// interpreter binds refines the symbolic one — rank matches, and every
/// `Known` dim evaluates (under `in*.d* = DIM`) to the observed extent.
/// `Unknown` dims admit anything; a missing symbolic shape (a value the
/// analysis gave up on entirely) is not a claim and is skipped.
///
/// # Errors
///
/// A description of the first value whose runtime shape the symbolic
/// analysis fails to admit.
pub fn check_concretization(g: &Graph, config: &ExecConfig, seed: u64) -> Result<(), String> {
    let info = infer_shapes_symbolic(g, &SYMBOLIC_RANKS);
    let exec = Executor::with_shape_trace(config.clone());
    exec.run(g, &inputs_for(seed))
        .map_err(|e| format!("traced run failed: {e}"))?;
    let env = |_v: DimVar| Some(DIM as i64);
    for (value, concrete) in exec.take_shape_trace() {
        let Some(sym) = info.shape(value) else {
            continue;
        };
        if sym.len() != concrete.len() {
            return Err(format!(
                "{value:?}: symbolic rank {} vs runtime shape {concrete:?}",
                sym.len()
            ));
        }
        for (d, (s, &c)) in sym.iter().zip(&concrete).enumerate() {
            if !s.admits(c, &env) {
                return Err(format!(
                    "{value:?} dim {d}: symbolic `{s}` does not admit runtime \
                     extent {c} (shape {concrete:?})"
                ));
            }
        }
    }
    Ok(())
}

/// One differential case: compile the seeded program, execute it, apply
/// `transform`, execute again, and require element-wise agreement.
///
/// # Errors
///
/// A description of the first divergence (or compile/run failure), prefixed
/// with the seed, suitable for direct reporting.
pub fn diff_case(
    seed: u64,
    transform: &dyn Fn(&Graph) -> Result<Graph, String>,
) -> Result<(), String> {
    diff_case_compiled(seed, &|g| transform(g).map(|h| (h, ExecConfig::eager())))
}

/// A transform that also chooses the execution configuration for the
/// transformed graph (a full pipeline's compile step).
pub type CompileFn<'a> = &'a dyn Fn(&Graph) -> Result<(Graph, ExecConfig), String>;

/// As [`diff_case`], but the transform also chooses the execution
/// configuration for the transformed graph — required for full pipelines
/// whose output (fusion groups, parallel maps) runs under a compiled
/// [`ExecConfig`].
pub fn diff_case_compiled(seed: u64, transform: CompileFn<'_>) -> Result<(), String> {
    let source = generate_source(seed);
    let fail = |stage: &str, detail: String| -> String {
        format!("seed {seed}: {stage}: {detail}\n--- program ---\n{source}")
    };
    let g = tssa_frontend::compile(&source).map_err(|e| fail("frontend", e.to_string()))?;
    let before = run_reference(&g, seed).map_err(|e| fail("reference run", e))?;
    check_concretization(&g, &ExecConfig::eager(), seed)
        .map_err(|e| fail("shape concretization (source)", e))?;
    let (h, config) = transform(&g).map_err(|e| fail("transform", e))?;
    h.verify()
        .map_err(|e| fail("verify after transform", e.to_string()))?;
    let after = run_with(&h, &config, seed).map_err(|e| fail("transformed run", e))?;
    check_concretization(&h, &config, seed)
        .map_err(|e| fail("shape concretization (transformed)", e))?;
    if before.len() != after.len() {
        return Err(fail(
            "diff",
            format!("{} outputs before vs {} after", before.len(), after.len()),
        ));
    }
    for (i, (x, y)) in before.iter().zip(&after).enumerate() {
        if !x.allclose(y, TOLERANCE) {
            return Err(fail(
                "diff",
                format!("output {i} diverges (tolerance {TOLERANCE})"),
            ));
        }
    }
    Ok(())
}

/// The standard transform under test: TensorSSA conversion plus the cleanup
/// passes, i.e. the functionalization core of the paper's pipeline.
pub fn functionalize(g: &Graph) -> Result<Graph, String> {
    let mut out = g.clone();
    tssa_core::convert_to_tensorssa(&mut out);
    tssa_core::passes::dce(&mut out);
    out.verify().map_err(|e| e.to_string())?;
    Ok(out)
}

/// Run seeds `start..start + count` through [`diff_case`], collecting every
/// failure.
pub fn run_seeds(
    start: u64,
    count: u64,
    transform: &dyn Fn(&Graph) -> Result<Graph, String>,
) -> Vec<String> {
    (start..start + count)
        .filter_map(|seed| diff_case(seed, transform).err())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate_source(7), generate_source(7));
        assert_ne!(generate_source(7), generate_source(8));
    }

    #[test]
    fn generated_programs_compile_and_run() {
        for seed in 0..40 {
            let source = generate_source(seed);
            let g = tssa_frontend::compile(&source)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
            run_reference(&g, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
        }
    }

    #[test]
    fn identity_transform_never_diverges() {
        for seed in 0..10 {
            diff_case(seed, &|g| Ok(g.clone())).unwrap();
        }
    }

    #[test]
    fn functionalization_smoke() {
        for seed in 0..25 {
            diff_case(seed, &functionalize).unwrap();
        }
    }

    #[test]
    fn concretization_holds_on_generated_programs() {
        for seed in 0..40 {
            let source = generate_source(seed);
            let g = tssa_frontend::compile(&source)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
            check_concretization(&g, &ExecConfig::eager(), seed)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
        }
    }

    #[test]
    fn concretization_catches_a_lying_analysis() {
        // A graph whose runtime shape is [DIM, DIM]: if the admits() check
        // were vacuous, a wrong symbolic claim could never fail. Build a
        // shape the analysis *does* pin (a constant) and check admits()
        // rejects a different runtime extent.
        use tssa_ir::SymDim;
        let pinned = SymDim::konst(3);
        let env = |_v: DimVar| Some(DIM as i64);
        assert!(!pinned.admits(DIM, &env));
        assert!(pinned.admits(3, &env));
    }
}
