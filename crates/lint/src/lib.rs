//! Static analysis for imperative tensor programs: effect checking, lint
//! rules, a pass sanitizer and differential IR fuzzing.
//!
//! TensorSSA (the DAC'24 paper this workspace reproduces) hinges on one
//! semantic claim: after functionalization, the graph is *pure*, so every
//! downstream rewrite may treat it as immutable data flow. This crate turns
//! that claim from an assumption into a checked property, four ways:
//!
//! - [`check_effects`] / [`certify_pure`] — a dataflow effect checker over
//!   the `tssa-alias` points-to graph proving a graph free of in-place
//!   mutation, leftover `tssa::update` markers, and views escaping their
//!   origin's control-flow region.
//! - [`Linter`] — eight lint rules over pre-functionalization IR (view
//!   escapes, dead mutations, redundant clones, non-functionalizable
//!   mutations per Eq. (1)–(2), unused values, shape-incompatible view
//!   chains, provably impossible broadcasts, data-dependent output dims)
//!   behind a registry with per-rule allow/warn/deny.
//! - [`certify_shapes`] — the shape-polymorphism certifier: seeds the
//!   symbolic shape analysis with fresh per-input-dim variables and emits a
//!   `ShapeSignature` classifying every input dim as polymorphic,
//!   specialized or data-dependent — the certificate a bucketed plan cache
//!   keys on.
//! - [`PassSanitizer`] — a `tssa_core::PassHook` re-running `Graph::verify`
//!   and the effect checker after every pass, attributing the first broken
//!   invariant to `pass:<name>` (surfaced through the `tssa-obs` span
//!   tree). Installed by `tssa-pipelines` in debug builds.
//! - [`fuzz`] — a TorchProbe-style differential harness: seeded random DSL
//!   programs with views, mutations and nested control flow, executed by
//!   the reference interpreter before and after a transformation and
//!   diffed element-wise.
//!
//! # Examples
//!
//! ```
//! use tssa_lint::{check_effects, Linter};
//! use tssa_frontend::compile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = compile(
//!     "def f(x: Tensor, n: int):
//!          b = x.clone()
//!          for i in range(n):
//!              b[i] = b[i] + 1.0
//!          return b
//! ")?;
//! // The imperative graph carries one effect (the row write)…
//! assert_eq!(check_effects(&g).mutations, 1);
//! // …which the linter proves functionalizable (no diagnostics).
//! assert!(Linter::new().lint(&g).is_empty());
//! # Ok(())
//! # }
//! ```

mod diag;
mod effect;
pub mod fuzz;
mod rules;
mod sanitize;
mod shapesig;

pub use diag::{Diagnostic, Severity};
pub use effect::{certify_pure, check_effects, check_effects_with, PurityReport};
pub use rules::{LintContext, Linter, Rule};
pub use sanitize::PassSanitizer;
pub use shapesig::certify_shapes;
