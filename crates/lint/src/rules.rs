//! Lint rules over pre-functionalization IR, plus the [`Linter`] registry.
//!
//! Rules inspect the imperative graph *before* TensorSSA conversion — the
//! form the frontend lowers to — and flag patterns that are bugs, wasted
//! work, or obstacles to functionalization. Each rule has a default
//! [`Severity`] that a [`Linter`] can override per rule (`allow` / `warn` /
//! `deny`), mirroring compiler lint flags.

use std::collections::{HashMap, HashSet};

use tssa_alias::{AliasAnalysis, DepKind};
use tssa_ir::{
    infer_shapes, infer_shapes_symbolic, Graph, NodeId, Op, Shape, ShapeInfo, SymDim, SymExpr,
    Type, ValueDef, ValueId, ViewKind,
};

use crate::diag::{Diagnostic, Severity};

/// Everything a rule may inspect.
pub struct LintContext<'a> {
    /// The graph under analysis.
    pub graph: &'a Graph,
    /// Points-to analysis of the graph.
    pub alias: &'a AliasAnalysis,
    /// Shape inference results (ranks may be unknown).
    pub shapes: &'a ShapeInfo,
}

impl<'a> LintContext<'a> {
    /// Representatives of alias components containing a mutation.
    fn mutated_components(&self) -> HashSet<ValueId> {
        let g = self.graph;
        let mut out = HashSet::new();
        for n in g.nodes_recursive(g.top()) {
            if let Op::Mutate(_) = g.node(n).op {
                out.insert(self.alias.component_of(g.node(n).inputs[0]));
            }
        }
        out
    }

    /// All values sharing `v`'s alias component.
    fn component_members(&self, v: ValueId) -> Vec<ValueId> {
        let rep = self.alias.component_of(v);
        let mut seen: HashSet<ValueId> = HashSet::new();
        seen.insert(v);
        for e in self.alias.edges() {
            for cand in [e.from, e.to] {
                if self.alias.component_of(cand) == rep {
                    seen.insert(cand);
                }
            }
        }
        seen.into_iter().collect()
    }
}

/// A single lint rule.
pub trait Rule {
    /// Stable kebab-case name used for allow/deny flags.
    fn name(&self) -> &'static str;
    /// Severity when the user has not overridden it.
    fn default_severity(&self) -> Severity;
    /// One-line description for `tssa-lint rules`.
    fn describe(&self) -> &'static str;
    /// Run the rule; emitted diagnostics should use `severity` (the
    /// effective severity after overrides).
    fn check(&self, cx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic>;
}

// ---------------------------------------------------------------------------
// Rule 1: view-escape
// ---------------------------------------------------------------------------

/// A control-flow block returns a view of storage defined outside the block
/// while that storage is mutated somewhere — the pattern TensorSSA block
/// propagation must repair, and a correctness hazard for any backend that
/// materializes block boundaries.
struct ViewEscape;

impl Rule for ViewEscape {
    fn name(&self) -> &'static str {
        "view-escape"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "control-flow block returns a mutable view of storage defined outside it"
    }
    fn check(&self, cx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let g = cx.graph;
        let mutated = cx.mutated_components();
        let mut out = Vec::new();
        for b in g.block_ids() {
            let block = g.block(b);
            let owner = match block.owner {
                Some(n) => n,
                None => continue,
            };
            if !matches!(g.node(owner).op, Op::If | Op::Loop) {
                continue;
            }
            for &r in &block.returns {
                if g.value(r).ty != Type::Tensor {
                    continue;
                }
                let origin = cx.alias.origin_of(r);
                if origin == r {
                    continue;
                }
                let origin_block = g.def_block(origin);
                if origin_block == b || !g.block_is_ancestor(origin_block, b) {
                    continue;
                }
                if !mutated.contains(&cx.alias.component_of(r)) {
                    continue;
                }
                out.push(Diagnostic::at_value(
                    self.name(),
                    severity,
                    g,
                    r,
                    format!(
                        "escapes the {} block as a view of {}, whose storage is mutated",
                        g.node(owner).op.name(),
                        g.value_name(origin)
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 2: dead-mutation
// ---------------------------------------------------------------------------

/// An in-place mutation whose written storage is never read afterwards:
/// nothing in the alias set escapes through returns and no later node reads
/// any member. The write is wasted work (and blocks fusion for nothing).
struct DeadMutation;

impl Rule for DeadMutation {
    fn name(&self) -> &'static str {
        "dead-mutation"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "in-place mutation whose result is never read"
    }
    fn check(&self, cx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let g = cx.graph;
        let mut out = Vec::new();
        for m in g.nodes_recursive(g.top()) {
            let node = g.node(m);
            let k = match &node.op {
                Op::Mutate(k) => *k,
                _ => continue,
            };
            let recv = node.inputs[0];
            let origin = cx.alias.origin_of(recv);
            // Caller-owned storage: the effect is observable outside.
            if matches!(g.value(origin).def, ValueDef::BlockParam { .. }) {
                continue;
            }
            let members: HashSet<ValueId> = cx.component_members(recv).into_iter().collect();
            // Any member in any block's returns escapes.
            let escapes = g.block_ids().any(|b| {
                g.block(b)
                    .returns
                    .iter()
                    .any(|r| members.contains(r) || members.contains(&cx.alias.origin_of(*r)))
            });
            if escapes {
                continue;
            }
            // A later read of any member keeps the write alive. "Later"
            // is program pre-order; inside a loop, *any* read within the
            // outermost enclosing loop subtree counts (iterations repeat).
            let mpos = g.position(m);
            let loop_scope = g
                .block_ancestry(node.owner)
                .into_iter()
                .filter_map(|b| g.block(b).owner)
                .find(|&n| matches!(g.node(n).op, Op::Loop)); // ancestry is top-first: outermost loop
            let mut live = false;
            'scan: for n in g.nodes_recursive(g.top()) {
                if n == m {
                    continue;
                }
                let user = g.node(n);
                for &inp in &user.inputs {
                    if !members.contains(&inp) {
                        continue;
                    }
                    // Views only propagate the alias; their outputs are
                    // already members, so a bare view is not a read.
                    if user.op.is_view() {
                        continue;
                    }
                    let after = g.position(n) > mpos;
                    let in_loop = loop_scope
                        .map(|lp| g.enclosing_node_in(g.node(lp).owner, n) == Some(lp) || n == lp)
                        .unwrap_or(false);
                    if after || in_loop {
                        live = true;
                        break 'scan;
                    }
                }
            }
            if !live {
                out.push(Diagnostic::at_node(
                    self.name(),
                    severity,
                    g,
                    m,
                    format!(
                        "aten::{} writes storage of {} that is never read afterwards",
                        k.name(),
                        g.value_name(origin)
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 3: redundant-clone
// ---------------------------------------------------------------------------

/// `aten::clone` whose source and copy are both never mutated: the defensive
/// copy protects nothing and costs a full tensor materialization.
struct RedundantClone;

impl Rule for RedundantClone {
    fn name(&self) -> &'static str {
        "redundant-clone"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "clone of a tensor that is never mutated (neither source nor copy)"
    }
    fn check(&self, cx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let g = cx.graph;
        let mutated = cx.mutated_components();
        let mut out = Vec::new();
        for n in g.nodes_recursive(g.top()) {
            let node = g.node(n);
            if !matches!(node.op, Op::CloneOp) {
                continue;
            }
            let src = node.inputs[0];
            let dst = node.outputs[0];
            if mutated.contains(&cx.alias.component_of(src))
                || mutated.contains(&cx.alias.component_of(dst))
            {
                continue;
            }
            out.push(Diagnostic::at_node(
                self.name(),
                severity,
                g,
                n,
                format!(
                    "clone of {} is redundant: neither the source nor the copy is ever mutated",
                    g.value_name(src)
                ),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 4: non-functionalizable
// ---------------------------------------------------------------------------

/// An in-place mutation that no TensorSSA candidate covers (Eq. 1–2): the
/// conversion pass will leave it imperative, so the fused/parallel pipeline
/// falls back to eager semantics around it. The message states why.
struct NonFunctionalizable;

impl Rule for NonFunctionalizable {
    fn name(&self) -> &'static str {
        "non-functionalizable"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "mutation outside every functionalization candidate (Eq. 1-2)"
    }
    fn check(&self, cx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let g = cx.graph;
        let covered: HashSet<NodeId> = cx
            .alias
            .candidates()
            .iter()
            .flat_map(|c| c.mutations.iter().copied())
            .collect();
        // Components touched by a non-memory points-to edge.
        let tainted: HashSet<ValueId> = cx
            .alias
            .edges()
            .iter()
            .filter(|e| e.kind != DepKind::Memory)
            .map(|e| cx.alias.component_of(e.from))
            .collect();
        let mut out = Vec::new();
        for m in g.nodes_recursive(g.top()) {
            let node = g.node(m);
            let k = match &node.op {
                Op::Mutate(k) => *k,
                _ => continue,
            };
            if covered.contains(&m) {
                continue;
            }
            let recv = node.inputs[0];
            let origin = cx.alias.origin_of(recv);
            let reason = if matches!(g.value(origin).def, ValueDef::BlockParam { .. }) {
                format!(
                    "storage of {} is owned outside the graph (argument or loop-carried value); \
                     clone it first to functionalize",
                    g.value_name(origin)
                )
            } else if tainted.contains(&cx.alias.component_of(recv)) {
                "its alias set crosses control flow or containers, \
                 so the component is not memory-dependency-only"
                    .to_string()
            } else if g
                .def_node(recv)
                .map(|d| matches!(&g.node(d).op, Op::View(ViewKind::Expand { .. })))
                .unwrap_or(false)
            {
                "the receiver is a broadcast (expand) view, whose stride-0 \
                 storage cannot be written through"
                    .to_string()
            } else {
                format!("origin {} does not own fresh storage", g.value_name(origin))
            };
            out.push(Diagnostic::at_node(
                self.name(),
                severity,
                g,
                m,
                format!("aten::{} cannot be functionalized: {}", k.name(), reason),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 5: unused-value
// ---------------------------------------------------------------------------

/// A pure computation whose every output is unused. Dead on arrival — DCE
/// will drop it, but in source form it usually signals a typo (computing
/// `x.relu()` and discarding it instead of rebinding).
struct UnusedValue;

impl Rule for UnusedValue {
    fn name(&self) -> &'static str {
        "unused-value"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "pure computation whose results are never used"
    }
    fn check(&self, cx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let g = cx.graph;
        let mut out = Vec::new();
        for n in g.nodes_recursive(g.top()) {
            let node = g.node(n);
            if !node.op.is_pure() || node.op.has_blocks() || node.outputs.is_empty() {
                continue;
            }
            if matches!(node.op, Op::Constant(_)) {
                continue; // constants are materialized eagerly by the lowerer
            }
            // A view with unused output can still carry aliasing relevance
            // only if something mutates through it — but with no uses there
            // is no such path, so views are reported too.
            if node.outputs.iter().any(|&o| g.has_uses(o)) {
                continue;
            }
            out.push(Diagnostic::at_node(
                self.name(),
                severity,
                g,
                n,
                "result is never used",
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 6: shape-incompatible-view-chain
// ---------------------------------------------------------------------------

/// Structural validity of view chains: dimension attributes must exist in
/// the operand's rank, permutations must be complete, reshapes must
/// preserve element count. Violations crash or silently corrupt at run
/// time, so the rule denies by default.
struct ShapeIncompatibleViewChain;

/// Total element count of a symbolic shape as an affine expression, when at
/// most one dim is non-constant.
fn symbolic_numel(shape: &Shape) -> Option<SymExpr> {
    let mut acc = SymExpr::constant(1);
    for d in shape {
        let e = d.expr()?;
        acc = match (acc.as_const(), e.as_const()) {
            (_, Some(k)) => acc.mul_const(k),
            (Some(k), None) => e.mul_const(k),
            (None, None) => return None,
        };
    }
    Some(acc)
}

fn norm_dim(dim: i64, rank: usize) -> Option<usize> {
    let d = if dim < 0 { dim + rank as i64 } else { dim };
    if d >= 0 && (d as usize) < rank {
        Some(d as usize)
    } else {
        None
    }
}

impl Rule for ShapeIncompatibleViewChain {
    fn name(&self) -> &'static str {
        "shape-incompatible-view-chain"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn describe(&self) -> &'static str {
        "view whose attributes are structurally invalid for the operand shape"
    }
    fn check(&self, cx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let g = cx.graph;
        let mut out = Vec::new();
        for n in g.nodes_recursive(g.top()) {
            let kind = match &g.node(n).op {
                Op::View(k) => k.clone(),
                _ => continue,
            };
            let input = g.node(n).inputs[0];
            let shape = match cx.shapes.shape(input) {
                Some(s) => s.clone(),
                None => continue, // rank unknown: nothing to check
            };
            let rank = shape.len();
            let problem: Option<String> = match &kind {
                ViewKind::Select { dim } | ViewKind::SliceView { dim } => {
                    if norm_dim(*dim, rank).is_none() {
                        Some(format!("dim {dim} out of range for rank {rank}"))
                    } else {
                        None
                    }
                }
                ViewKind::Transpose { dim0, dim1 } => {
                    if norm_dim(*dim0, rank).is_none() || norm_dim(*dim1, rank).is_none() {
                        Some(format!(
                            "transpose dims ({dim0}, {dim1}) out of range for rank {rank}"
                        ))
                    } else {
                        None
                    }
                }
                ViewKind::Squeeze { dim } => match norm_dim(*dim, rank) {
                    None => Some(format!("squeeze dim {dim} out of range for rank {rank}")),
                    // Squeezing a dim that provably cannot be 1 is a
                    // guaranteed runtime error; the symbolic domain can
                    // prove it even for non-constant dims (e.g. `2*in0.d0`
                    // after `cat(x, x)`).
                    Some(d) => match shape[d].expr() {
                        Some(e) if !e.can_equal(1) => {
                            Some(format!("squeeze dim {dim} of size {e} (provably never 1)"))
                        }
                        _ => None,
                    },
                },
                ViewKind::Unsqueeze { dim } => {
                    let d = if *dim < 0 {
                        dim + rank as i64 + 1
                    } else {
                        *dim
                    };
                    if d < 0 || d as usize > rank {
                        Some(format!("unsqueeze dim {dim} out of range for rank {rank}"))
                    } else {
                        None
                    }
                }
                ViewKind::Permute { perm } => {
                    let mut seen = vec![false; rank];
                    let mut bad = perm.len() != rank;
                    if !bad {
                        for &p in perm {
                            match norm_dim(p, rank) {
                                Some(d) if !seen[d] => seen[d] = true,
                                _ => {
                                    bad = true;
                                    break;
                                }
                            }
                        }
                    }
                    if bad {
                        Some(format!(
                            "permutation {perm:?} is not a permutation of 0..{rank}"
                        ))
                    } else {
                        None
                    }
                }
                ViewKind::Expand { shape: target } => {
                    if target.len() < rank {
                        Some(format!(
                            "expand to rank {} from rank {rank} (cannot drop dims)",
                            target.len()
                        ))
                    } else {
                        let offset = target.len() - rank;
                        let mut bad = None;
                        for (i, dim) in shape.iter().enumerate() {
                            let t = target[offset + i];
                            if t == -1 {
                                continue;
                            }
                            if let Some(d) = dim.as_const() {
                                if d != 1 && t != d as i64 {
                                    bad = Some(format!(
                                        "expand dim {} from size {d} to {t} (only size-1 \
                                         dims broadcast)",
                                        offset + i
                                    ));
                                    break;
                                }
                            } else if let Some(e) = dim.expr() {
                                // Symbolic: expanding is only valid when the
                                // dim can be 1 or already equal the target.
                                if t >= 0 && !e.can_equal(1) && !e.can_equal(t) {
                                    bad = Some(format!(
                                        "expand dim {} from size {e} to {t} (provably \
                                         neither 1 nor {t})",
                                        offset + i
                                    ));
                                    break;
                                }
                            }
                        }
                        bad
                    }
                }
                ViewKind::ViewShape { shape: target } => {
                    // The element count stays affine when at most one dim is
                    // non-constant; a reshape to a fixed total the affine
                    // form can never reach (e.g. `4*in0.d0` elements into 6)
                    // is unsatisfiable for every input.
                    if target.contains(&-1) {
                        None
                    } else {
                        let tn: i64 = target.iter().product();
                        match symbolic_numel(&shape) {
                            Some(e) if tn >= 0 && !e.can_equal(tn) => Some(format!(
                                "reshape to {target:?} ({tn} elements) from {e} elements \
                                 (unsatisfiable)"
                            )),
                            _ => None,
                        }
                    }
                }
            };
            if let Some(p) = problem {
                out.push(Diagnostic::at_node(self.name(), severity, g, n, p));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 7: symbolic-broadcast-mismatch
// ---------------------------------------------------------------------------

/// Two dims feeding one broadcast can *provably never* be compatible: under
/// no assignment of non-negative extents to the input-dim variables are they
/// equal, nor is either 1. Every execution of the node fails, so the rule
/// denies. Only the symbolic domain can prove this for non-constant dims
/// (e.g. `2*in0.d0+4` against `2*in0.d0+2` after two different concats).
struct SymbolicBroadcastMismatch;

/// `true` when `a` and `b` can never broadcast together: no non-negative
/// assignment makes them equal, and neither can be 1. Each disjunct is
/// refuted independently, which is sound (if all three are unsatisfiable,
/// so is their disjunction).
fn provable_broadcast_mismatch(a: &SymDim, b: &SymDim) -> bool {
    match (a.expr(), b.expr()) {
        (Some(ea), Some(eb)) => {
            ea != eb && !ea.sub(eb).can_equal(0) && !ea.can_equal(1) && !eb.can_equal(1)
        }
        _ => false,
    }
}

impl Rule for SymbolicBroadcastMismatch {
    fn name(&self) -> &'static str {
        "symbolic-broadcast-mismatch"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn describe(&self) -> &'static str {
        "broadcast of two dims that can never be compatible for any input"
    }
    fn check(&self, cx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let g = cx.graph;
        let mut out = Vec::new();
        for n in g.nodes_recursive(g.top()) {
            let node = g.node(n);
            let broadcasting = matches!(
                node.op,
                Op::Add
                    | Op::Sub
                    | Op::Mul
                    | Op::Div
                    | Op::Maximum
                    | Op::Minimum
                    | Op::Pow
                    | Op::Gt
                    | Op::Lt
                    | Op::Ge
                    | Op::Le
                    | Op::EqElem
                    | Op::LogicalAnd
                    | Op::LogicalOr
                    | Op::WhereSelect
            );
            if !broadcasting {
                continue;
            }
            // Check every pair of tensor operands (WhereSelect has three).
            let shapes: Vec<Option<&Shape>> =
                node.inputs.iter().map(|&v| cx.shapes.shape(v)).collect();
            'pairs: for i in 0..shapes.len() {
                for j in i + 1..shapes.len() {
                    let (Some(a), Some(b)) = (shapes[i], shapes[j]) else {
                        continue;
                    };
                    let rank = a.len().max(b.len());
                    for k in 0..rank {
                        let one = SymDim::konst(1);
                        let da = if k < rank - a.len() {
                            &one
                        } else {
                            &a[k - (rank - a.len())]
                        };
                        let db = if k < rank - b.len() {
                            &one
                        } else {
                            &b[k - (rank - b.len())]
                        };
                        if provable_broadcast_mismatch(da, db) {
                            out.push(Diagnostic::at_node(
                                self.name(),
                                severity,
                                g,
                                n,
                                format!(
                                    "dim {k}: {} can never broadcast against {} \
                                     (incompatible for every input)",
                                    da, db
                                ),
                            ));
                            break 'pairs;
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Rule 8: data-dependent-shape-escapes-output
// ---------------------------------------------------------------------------

/// A graph output has a data-dependent (⊥) dimension: its extent cannot be
/// expressed over the input dims, so no shape-keyed plan cache can bucket
/// the program and callers cannot preallocate. Warn-level — legitimate
/// programs (nonzero-style filters) do this on purpose.
struct DataDependentShapeEscapesOutput;

impl Rule for DataDependentShapeEscapesOutput {
    fn name(&self) -> &'static str {
        "data-dependent-shape-escapes-output"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn describe(&self) -> &'static str {
        "graph output has a data-dependent dimension (defeats shape-keyed caching)"
    }
    fn check(&self, cx: &LintContext<'_>, severity: Severity) -> Vec<Diagnostic> {
        let g = cx.graph;
        let mut out = Vec::new();
        for (i, &r) in g.block(g.top()).returns.iter().enumerate() {
            if g.value(r).ty != Type::Tensor {
                continue;
            }
            let Some(shape) = cx.shapes.shape(r) else {
                continue; // rank unknown (unseeded input), not data-dependent
            };
            for (d, dim) in shape.iter().enumerate() {
                if let SymDim::Unknown(taint) = dim {
                    let blame = if taint.is_empty() {
                        String::from("no input dim can explain it")
                    } else {
                        let vars: Vec<String> = taint.iter().map(|v| v.to_string()).collect();
                        format!("tainted by {}", vars.join(", "))
                    };
                    out.push(Diagnostic::at_value(
                        self.name(),
                        severity,
                        g,
                        r,
                        format!("output {i} dim {d} is data-dependent ({blame})"),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// All built-in rules, in reporting order.
fn builtin_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ShapeIncompatibleViewChain),
        Box::new(SymbolicBroadcastMismatch),
        Box::new(DataDependentShapeEscapesOutput),
        Box::new(ViewEscape),
        Box::new(NonFunctionalizable),
        Box::new(DeadMutation),
        Box::new(RedundantClone),
        Box::new(UnusedValue),
    ]
}

/// Rule registry with per-rule severity overrides.
pub struct Linter {
    rules: Vec<Box<dyn Rule>>,
    overrides: HashMap<&'static str, Severity>,
}

impl Default for Linter {
    fn default() -> Self {
        Linter::new()
    }
}

impl Linter {
    /// A linter running every built-in rule at its default severity.
    pub fn new() -> Linter {
        Linter {
            rules: builtin_rules(),
            overrides: HashMap::new(),
        }
    }

    /// `(name, default severity, description)` of every registered rule.
    pub fn rules(&self) -> Vec<(&'static str, Severity, &'static str)> {
        self.rules
            .iter()
            .map(|r| (r.name(), r.default_severity(), r.describe()))
            .collect()
    }

    /// Override the severity of rule `name`. Returns false (and changes
    /// nothing) when no such rule exists.
    pub fn set_severity(&mut self, name: &str, severity: Severity) -> bool {
        match self.rules.iter().find(|r| r.name() == name) {
            Some(r) => {
                self.overrides.insert(r.name(), severity);
                true
            }
            None => false,
        }
    }

    /// Suppress rule `name`.
    pub fn allow(&mut self, name: &str) -> bool {
        self.set_severity(name, Severity::Allow)
    }

    /// Escalate rule `name` to a hard failure.
    pub fn deny(&mut self, name: &str) -> bool {
        self.set_severity(name, Severity::Deny)
    }

    /// Lint `g` with unknown input shapes.
    pub fn lint(&self, g: &Graph) -> Vec<Diagnostic> {
        let n_inputs = g.block(g.top()).params.len();
        self.lint_with_shapes(g, &vec![None; n_inputs])
    }

    /// Lint `g`, seeding shape inference with the given input shapes.
    pub fn lint_with_shapes(
        &self,
        g: &Graph,
        input_shapes: &[Option<Vec<usize>>],
    ) -> Vec<Diagnostic> {
        self.run(g, &infer_shapes(g, input_shapes))
    }

    /// Lint `g` with *symbolic* input shapes: tensor input `i` of rank `r`
    /// gets fresh dims `in{i}.d0…`. This is the seeding that lets the
    /// symbolic rules (provably-bad squeezes, unsatisfiable reshapes,
    /// impossible broadcasts) fire on programs whose concrete shapes are
    /// unknown.
    pub fn lint_symbolic(&self, g: &Graph, input_ranks: &[Option<usize>]) -> Vec<Diagnostic> {
        self.run(g, &infer_shapes_symbolic(g, input_ranks))
    }

    fn run(&self, g: &Graph, shapes: &ShapeInfo) -> Vec<Diagnostic> {
        let alias = AliasAnalysis::build(g);
        let cx = LintContext {
            graph: g,
            alias: &alias,
            shapes,
        };
        let mut out = Vec::new();
        for rule in &self.rules {
            let severity = self
                .overrides
                .get(rule.name())
                .copied()
                .unwrap_or_else(|| rule.default_severity());
            if severity == Severity::Allow {
                continue;
            }
            out.extend(rule.check(&cx, severity));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::MutateKind;

    fn cloned_base(g: &mut Graph) -> ValueId {
        let x = g.add_input("x", Type::Tensor);
        let cl = g.append(g.top(), Op::CloneOp, &[x], &[Type::Tensor]);
        g.out(cl)
    }

    fn names(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn registry_lists_eight_rules() {
        let l = Linter::new();
        assert_eq!(l.rules().len(), 8);
    }

    #[test]
    fn clean_graph_has_no_diagnostics() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let r = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let rv = g.out(r);
        g.set_returns(g.top(), &[rv]);
        assert!(Linter::new().lint(&g).is_empty());
    }

    #[test]
    fn unused_pure_node_fires() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        g.set_returns(g.top(), &[x]);
        let diags = Linter::new().lint(&g);
        assert_eq!(names(&diags), vec!["unused-value"]);
    }

    #[test]
    fn allow_suppresses_rule() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        g.set_returns(g.top(), &[x]);
        let mut l = Linter::new();
        assert!(l.allow("unused-value"));
        assert!(!l.allow("no-such-rule"));
        assert!(l.lint(&g).is_empty());
    }

    #[test]
    fn deny_escalates_severity() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        g.set_returns(g.top(), &[x]);
        let mut l = Linter::new();
        l.deny("unused-value");
        let diags = l.lint(&g);
        assert_eq!(diags[0].severity, Severity::Deny);
    }

    #[test]
    fn redundant_clone_fires_without_mutation() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        g.set_returns(g.top(), &[base]);
        let diags = Linter::new().lint(&g);
        assert_eq!(names(&diags), vec!["redundant-clone"]);
    }

    #[test]
    fn clone_guarding_mutation_is_kept() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        g.append(
            g.top(),
            Op::Mutate(MutateKind::Relu),
            &[base],
            &[Type::Tensor],
        );
        g.set_returns(g.top(), &[base]);
        let diags = Linter::new().lint(&g);
        assert!(!names(&diags).contains(&"redundant-clone"), "{diags:?}");
    }

    #[test]
    fn dead_mutation_fires_when_never_read() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        g.append(
            g.top(),
            Op::Mutate(MutateKind::Relu),
            &[base],
            &[Type::Tensor],
        );
        // base never returned, never read again.
        let x2 = g.add_input("y", Type::Tensor);
        g.set_returns(g.top(), &[x2]);
        let diags = Linter::new().lint(&g);
        assert!(names(&diags).contains(&"dead-mutation"), "{diags:?}");
    }

    #[test]
    fn returned_mutation_is_live() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        g.append(
            g.top(),
            Op::Mutate(MutateKind::Relu),
            &[base],
            &[Type::Tensor],
        );
        g.set_returns(g.top(), &[base]);
        let diags = Linter::new().lint(&g);
        assert!(!names(&diags).contains(&"dead-mutation"), "{diags:?}");
    }

    #[test]
    fn non_functionalizable_input_mutation() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        g.append(g.top(), Op::Mutate(MutateKind::Relu), &[x], &[Type::Tensor]);
        g.set_returns(g.top(), &[x]);
        let diags = Linter::new().lint(&g);
        let d = diags
            .iter()
            .find(|d| d.rule == "non-functionalizable")
            .expect("rule fired");
        assert!(d.message.contains("owned outside the graph"), "{}", d);
    }

    #[test]
    fn functionalizable_mutation_is_quiet() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        g.append(
            g.top(),
            Op::Mutate(MutateKind::Relu),
            &[base],
            &[Type::Tensor],
        );
        g.set_returns(g.top(), &[base]);
        let diags = Linter::new().lint(&g);
        assert!(
            !names(&diags).contains(&"non-functionalizable"),
            "{diags:?}"
        );
    }

    #[test]
    fn shape_rule_catches_bad_select_dim() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let i = g.constant_int(0);
        let s = g.append(
            g.top(),
            Op::View(ViewKind::Select { dim: 5 }),
            &[x, i],
            &[Type::Tensor],
        );
        let sv = g.out(s);
        g.set_returns(g.top(), &[sv]);
        let diags = Linter::new().lint_with_shapes(&g, &[Some(vec![4, 4])]);
        let d = diags
            .iter()
            .find(|d| d.rule == "shape-incompatible-view-chain")
            .expect("rule fired");
        assert_eq!(d.severity, Severity::Deny);
        assert!(d.message.contains("dim 5 out of range for rank 2"), "{}", d);
    }

    #[test]
    fn shape_rule_catches_bad_permutation() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let p = g.append(
            g.top(),
            Op::View(ViewKind::Permute { perm: vec![0, 0] }),
            &[x],
            &[Type::Tensor],
        );
        let pv = g.out(p);
        g.set_returns(g.top(), &[pv]);
        let diags = Linter::new().lint_with_shapes(&g, &[Some(vec![4, 4])]);
        assert!(names(&diags).contains(&"shape-incompatible-view-chain"));
    }

    #[test]
    fn symbolic_squeeze_of_provably_non_unit_dim_fires() {
        // cat(x, x) has dim 0 = 2*in0.d0, which can never be 1.
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let c = g.append(g.top(), Op::Concat { dim: 0 }, &[x, x], &[Type::Tensor]);
        let cv = g.out(c);
        let s = g.append(
            g.top(),
            Op::View(ViewKind::Squeeze { dim: 0 }),
            &[cv],
            &[Type::Tensor],
        );
        let sv = g.out(s);
        g.set_returns(g.top(), &[sv]);
        let diags = Linter::new().lint_symbolic(&g, &[Some(2)]);
        let d = diags
            .iter()
            .find(|d| d.rule == "shape-incompatible-view-chain")
            .expect("rule fired");
        assert!(d.message.contains("provably never 1"), "{}", d);
        // With concrete even shapes the same graph is still caught…
        let diags = Linter::new().lint_with_shapes(&g, &[Some(vec![3, 4])]);
        assert!(names(&diags).contains(&"shape-incompatible-view-chain"));
    }

    #[test]
    fn symbolic_unsatisfiable_reshape_fires() {
        // cat(x, x) over rank-1 x has 2*in0.d0 elements: never 5.
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let c = g.append(g.top(), Op::Concat { dim: 0 }, &[x, x], &[Type::Tensor]);
        let cv = g.out(c);
        let r = g.append(
            g.top(),
            Op::View(ViewKind::ViewShape { shape: vec![5] }),
            &[cv],
            &[Type::Tensor],
        );
        let rv = g.out(r);
        g.set_returns(g.top(), &[rv]);
        let diags = Linter::new().lint_symbolic(&g, &[Some(1)]);
        let d = diags
            .iter()
            .find(|d| d.rule == "shape-incompatible-view-chain")
            .expect("rule fired");
        assert!(d.message.contains("unsatisfiable"), "{}", d);
    }

    #[test]
    fn symbolic_broadcast_mismatch_fires_when_provable() {
        // cat(cat(x,x), ones(4)) = 2v+4 against cat(cat(x,x), ones(2)) =
        // 2v+2: never equal, and neither can be 1 — impossible for every v.
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let c2 = g.append(g.top(), Op::Concat { dim: 0 }, &[x, x], &[Type::Tensor]);
        let c2v = g.out(c2);
        let pad2 = g.append(g.top(), Op::Ones { shape: vec![2] }, &[], &[Type::Tensor]);
        let pad2v = g.out(pad2);
        let pad4 = g.append(g.top(), Op::Ones { shape: vec![4] }, &[], &[Type::Tensor]);
        let pad4v = g.out(pad4);
        let a = g.append(
            g.top(),
            Op::Concat { dim: 0 },
            &[c2v, pad2v],
            &[Type::Tensor],
        );
        let av = g.out(a);
        let b = g.append(
            g.top(),
            Op::Concat { dim: 0 },
            &[c2v, pad4v],
            &[Type::Tensor],
        );
        let bv = g.out(b);
        let s = g.append(g.top(), Op::Add, &[av, bv], &[Type::Tensor]);
        let sv = g.out(s);
        g.set_returns(g.top(), &[sv]);
        let diags = Linter::new().lint_symbolic(&g, &[Some(1)]);
        let d = diags
            .iter()
            .find(|d| d.rule == "symbolic-broadcast-mismatch")
            .expect("rule fired");
        assert_eq!(d.severity, Severity::Deny);
        assert!(d.message.contains("can never broadcast"), "{}", d);
        // 2v against v is NOT provable (v = 0 works), so a plain
        // cat-vs-base add stays quiet.
        let mut g2 = Graph::new();
        let y = g2.add_input("x", Type::Tensor);
        let cc = g2.append(g2.top(), Op::Concat { dim: 0 }, &[y, y], &[Type::Tensor]);
        let ccv = g2.out(cc);
        let add = g2.append(g2.top(), Op::Add, &[ccv, y], &[Type::Tensor]);
        let addv = g2.out(add);
        g2.set_returns(g2.top(), &[addv]);
        let diags = Linter::new().lint_symbolic(&g2, &[Some(1)]);
        assert!(!names(&diags).contains(&"symbolic-broadcast-mismatch"));
    }

    #[test]
    fn data_dependent_output_dim_warns() {
        // arange over a runtime int: the output extent is data-dependent.
        let mut g = Graph::new();
        let n = g.add_input("n", Type::Int);
        let a = g.append(g.top(), Op::Arange, &[n], &[Type::Tensor]);
        let av = g.out(a);
        g.set_returns(g.top(), &[av]);
        let diags = Linter::new().lint_symbolic(&g, &[None]);
        let d = diags
            .iter()
            .find(|d| d.rule == "data-dependent-shape-escapes-output")
            .expect("rule fired");
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("data-dependent"), "{}", d);
    }

    #[test]
    fn polymorphic_output_is_not_data_dependent() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let r = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let rv = g.out(r);
        g.set_returns(g.top(), &[rv]);
        let diags = Linter::new().lint_symbolic(&g, &[Some(2)]);
        assert!(!names(&diags).contains(&"data-dependent-shape-escapes-output"));
    }

    #[test]
    fn shape_rule_quiet_on_valid_views() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let t = g.append(
            g.top(),
            Op::View(ViewKind::Transpose { dim0: 0, dim1: 1 }),
            &[x],
            &[Type::Tensor],
        );
        let tv = g.out(t);
        g.set_returns(g.top(), &[tv]);
        let diags = Linter::new().lint_with_shapes(&g, &[Some(vec![4, 4])]);
        assert!(!names(&diags).contains(&"shape-incompatible-view-chain"));
    }
}
