//! Pass sanitizer: a [`PassHook`] that re-verifies the graph and re-runs the
//! effect checker after every pass, attributing the first broken invariant
//! to the offending pass.
//!
//! Two invariants are enforced:
//!
//! 1. **Well-formedness** — `Graph::verify` must hold after every pass.
//! 2. **Effect ratchet** — the number of effect violations
//!    ([`crate::check_effects`]) must never *increase*. Imperative input
//!    graphs legally carry violations before TensorSSA conversion; the
//!    conversion pass lowers the count and later passes must not reintroduce
//!    mutation, leftover `tssa::update` markers, or view escapes.
//!
//! The hook is installed by `tssa-pipelines` under `debug_assertions` (on in
//! tests and debug builds, compiled out of release pipelines), so every
//! pipeline test in the workspace doubles as a sanitizer run.

use tssa_core::PassHook;
use tssa_ir::Graph;

use crate::effect::check_effects;

/// The lint pass sanitizer. See the module docs.
#[derive(Debug, Default)]
pub struct PassSanitizer {
    /// Effect-violation count of the graph before the first pass; updated
    /// downward as passes remove violations (ratchet).
    baseline: Option<usize>,
}

impl PassSanitizer {
    /// A sanitizer that takes its baseline from the first graph it sees.
    pub fn new() -> PassSanitizer {
        PassSanitizer::default()
    }
}

impl PassHook for PassSanitizer {
    fn name(&self) -> &'static str {
        "lint-sanitizer"
    }

    fn begin(&mut self, g: &Graph) {
        self.baseline = Some(check_effects(g).violations.len());
    }

    fn check(&mut self, pass: &'static str, g: &Graph) -> Result<(), String> {
        if let Err(e) = g.verify() {
            return Err(format!("graph verification failed after pass: {e}"));
        }
        let report = check_effects(g);
        let count = report.violations.len();
        let baseline = self.baseline.unwrap_or(count);
        if count > baseline {
            let first = report
                .violations
                .iter()
                .map(|d| d.to_string())
                .next()
                .unwrap_or_default();
            return Err(format!(
                "effect violations increased from {baseline} to {count} \
                 (pass {pass} reintroduced an effect); first: {first}"
            ));
        }
        self.baseline = Some(count);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_core::{Pass, PassManager};
    use tssa_ir::{MutateKind, Op, Type};
    use tssa_obs::TraceScope;

    /// A pass that ignores its input and appends a fresh in-place mutation —
    /// the kind of bad rewrite the sanitizer exists to catch.
    struct InjectMutation;

    impl Pass for InjectMutation {
        fn name(&self) -> &'static str {
            "inject-mutation"
        }
        fn run(&mut self, g: &mut Graph) -> usize {
            let v = g.block(g.top()).params[0];
            g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
            1
        }
    }

    struct Noop;

    impl Pass for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn run(&mut self, _g: &mut Graph) -> usize {
            0
        }
    }

    fn input_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let r = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let rv = g.out(r);
        g.set_returns(g.top(), &[rv]);
        g
    }

    #[test]
    fn clean_pipeline_passes() {
        let mut g = input_graph();
        let mut pm = PassManager::new()
            .with(Noop)
            .with_hook(PassSanitizer::new());
        assert!(pm.try_run(&mut g, &TraceScope::disabled()).is_ok());
    }

    #[test]
    fn injected_mutation_is_attributed() {
        let mut g = input_graph();
        let mut pm = PassManager::new()
            .with(Noop)
            .with(InjectMutation)
            .with_hook(PassSanitizer::new());
        let err = pm.try_run(&mut g, &TraceScope::disabled()).unwrap_err();
        assert_eq!(err.pass, "inject-mutation");
        assert_eq!(err.hook, "lint-sanitizer");
        assert!(err.message.contains("effect violations increased"), "{err}");
    }

    #[test]
    fn preexisting_violations_are_tolerated() {
        // An imperative graph with a mutation is fine as *input*; the
        // sanitizer only rejects increases.
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let cl = g.append(g.top(), Op::CloneOp, &[x], &[Type::Tensor]);
        let base = g.out(cl);
        g.append(
            g.top(),
            Op::Mutate(MutateKind::Relu),
            &[base],
            &[Type::Tensor],
        );
        g.set_returns(g.top(), &[base]);
        let mut pm = PassManager::new()
            .with(Noop)
            .with_hook(PassSanitizer::new());
        assert!(pm.try_run(&mut g, &TraceScope::disabled()).is_ok());
    }
}
