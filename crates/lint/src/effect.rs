//! Dataflow effect checker: proves a graph free of observable mutation.
//!
//! Built on the points-to graph of `tssa-alias`, the checker issues three
//! judgments over the whole block tree:
//!
//! - **E1 — mutation present**: any `aten::*_` ([`Op::Mutate`]) node is an
//!   effect. When the receiver's storage origin lives in an *ancestor* block
//!   of the mutation, the effect additionally crosses a control-flow
//!   boundary (the exact pattern TensorSSA block propagation, §4.1.2, must
//!   eliminate), and the message says so.
//! - **E2 — leftover update marker**: a `tssa::update` node surviving after
//!   functionalization means renaming never ran; the graph is in an
//!   intermediate, non-executable state.
//! - **E3 — view escape**: a control-flow block returning a value that
//!   aliases storage owned *outside* the block, where that alias component
//!   is also mutated. Executing such a graph leaks a mutable window across
//!   the block boundary.
//!
//! A graph with no violations is *pure* in the paper's sense: evaluating it
//! cannot observe or cause in-place updates, so every rewrite that treats
//! values as immutable data flow (fusion, CSE, LICM, parallelization) is
//! sound.

use tssa_alias::AliasAnalysis;
use tssa_ir::{Graph, Op, Type};

use crate::diag::{Diagnostic, Severity};

/// Outcome of [`check_effects`].
#[derive(Debug, Clone, Default)]
pub struct PurityReport {
    /// All effect violations found, in program order.
    pub violations: Vec<Diagnostic>,
    /// Number of E1 (mutation) violations.
    pub mutations: usize,
    /// Number of E2 (leftover update) violations.
    pub leftover_updates: usize,
    /// Number of E3 (view escape) violations.
    pub view_escapes: usize,
}

impl PurityReport {
    /// True when no judgment fired: the graph is certified pure.
    pub fn is_pure(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run all three effect judgments over `g`.
pub fn check_effects(g: &Graph) -> PurityReport {
    let alias = AliasAnalysis::build(g);
    check_effects_with(g, &alias)
}

/// [`check_effects`] reusing a prebuilt [`AliasAnalysis`].
pub fn check_effects_with(g: &Graph, alias: &AliasAnalysis) -> PurityReport {
    let mut report = PurityReport::default();

    // Alias components containing at least one mutation (by representative).
    let mut mutated_components = std::collections::HashSet::new();
    for n in g.nodes_recursive(g.top()) {
        if let Op::Mutate(_) = g.node(n).op {
            mutated_components.insert(alias.component_of(g.node(n).inputs[0]));
        }
    }

    for n in g.nodes_recursive(g.top()) {
        let node = g.node(n);
        match &node.op {
            // E1: in-place mutation.
            Op::Mutate(k) => {
                let recv = node.inputs[0];
                let origin = alias.origin_of(recv);
                let origin_block = g.def_block(origin);
                let here = node.owner;
                let msg = if origin_block != here && g.block_is_ancestor(origin_block, here) {
                    format!(
                        "mutation through view across control-flow boundary \
                         (aten::{} writes storage of {} defined outside this block)",
                        k.name(),
                        g.value_name(origin)
                    )
                } else {
                    format!("in-place mutation present (aten::{})", k.name())
                };
                report.mutations += 1;
                report
                    .violations
                    .push(Diagnostic::at_node("effect", Severity::Deny, g, n, msg));
            }
            // E2: tssa::update marker survived functionalization.
            Op::Update => {
                report.leftover_updates += 1;
                report.violations.push(Diagnostic::at_node(
                    "effect",
                    Severity::Deny,
                    g,
                    n,
                    "leftover tssa::update marker (renaming never ran; \
                     graph is in an intermediate state)",
                ));
            }
            _ => {}
        }
    }

    // E3: control-flow block returns a mutable alias of outer storage.
    for b in g.block_ids() {
        let block = g.block(b);
        let owner = match block.owner {
            Some(n) => n,
            None => continue, // top block: returning views of inputs is the caller's business
        };
        if !matches!(g.node(owner).op, Op::If | Op::Loop) {
            continue;
        }
        for &r in &block.returns {
            if g.value(r).ty != Type::Tensor {
                continue;
            }
            let origin = alias.origin_of(r);
            if origin == r {
                continue; // returns its own storage
            }
            let origin_block = g.def_block(origin);
            if origin_block == b || !g.block_is_ancestor(origin_block, b) {
                continue; // origin lives inside the block (or elsewhere): no escape
            }
            if !mutated_components.contains(&alias.component_of(r)) {
                continue; // read-only alias: harmless
            }
            report.view_escapes += 1;
            report.violations.push(Diagnostic::at_value(
                "effect",
                Severity::Deny,
                g,
                r,
                format!(
                    "view of {} (defined outside the {} block) escapes through \
                     the block returns while its alias set is mutated",
                    g.value_name(origin),
                    g.node(owner).op.name()
                ),
            ));
        }
    }

    report
}

/// Certify `g` pure, returning all violations otherwise.
pub fn certify_pure(g: &Graph) -> Result<(), Vec<Diagnostic>> {
    let report = check_effects(g);
    if report.is_pure() {
        Ok(())
    } else {
        Err(report.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::{ConstValue, MutateKind, ViewKind};

    fn cloned_base(g: &mut Graph) -> tssa_ir::ValueId {
        let x = g.add_input("x", Type::Tensor);
        let cl = g.append(g.top(), Op::CloneOp, &[x], &[Type::Tensor]);
        g.out(cl)
    }

    #[test]
    fn pure_graph_certifies() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let r = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let rv = g.out(r);
        g.set_returns(g.top(), &[rv]);
        assert!(certify_pure(&g).is_ok());
    }

    #[test]
    fn top_level_mutation_is_e1() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        g.append(
            g.top(),
            Op::Mutate(MutateKind::Relu),
            &[base],
            &[Type::Tensor],
        );
        let report = check_effects(&g);
        assert_eq!(report.mutations, 1);
        assert!(report.violations[0]
            .message
            .contains("in-place mutation present"));
    }

    #[test]
    fn cross_block_mutation_is_flagged_as_boundary_crossing() {
        // Figure 4: mutate a view of an outer tensor inside a loop body.
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let n = g.add_input("n", Type::Int);
        let t = g.constant_bool(true);
        let lp = g.append(g.top(), Op::Loop, &[n, t], &[]);
        let body = g.add_node_block(lp);
        let i = g.add_block_param(body, Type::Int);
        let sel = g.append(
            body,
            Op::View(ViewKind::Select { dim: 0 }),
            &[base, i],
            &[Type::Tensor],
        );
        let v = g.out(sel);
        g.append(body, Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        let cond = g.constant_in(body, ConstValue::Bool(true));
        g.set_returns(body, &[cond]);
        let report = check_effects(&g);
        assert_eq!(report.mutations, 1);
        assert!(
            report.violations[0]
                .message
                .contains("across control-flow boundary"),
            "{}",
            report.violations[0]
        );
    }

    #[test]
    fn leftover_update_is_e2() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let y = g.append(g.top(), Op::Relu, &[base], &[Type::Tensor]);
        let yv = g.out(y);
        g.append(g.top(), Op::Update, &[base, yv], &[Type::Tensor]);
        let report = check_effects(&g);
        assert_eq!(report.leftover_updates, 1);
    }

    #[test]
    fn mutated_view_escaping_if_is_e3() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let c = g.add_input("c", Type::Bool);
        let i = g.constant_int(0);
        let iff = g.append(g.top(), Op::If, &[c], &[Type::Tensor]);
        let tb = g.add_node_block(iff);
        let eb = g.add_node_block(iff);
        let sel = g.append(
            tb,
            Op::View(ViewKind::Select { dim: 0 }),
            &[base, i],
            &[Type::Tensor],
        );
        let sv = g.out(sel);
        g.append(tb, Op::Mutate(MutateKind::Relu), &[sv], &[Type::Tensor]);
        g.set_returns(tb, &[sv]);
        g.set_returns(eb, &[base]);
        let report = check_effects(&g);
        assert!(report.view_escapes >= 1, "{:?}", report);
    }

    #[test]
    fn unmutated_escaping_view_is_not_e3() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let c = g.add_input("c", Type::Bool);
        let i = g.constant_int(0);
        let iff = g.append(g.top(), Op::If, &[c], &[Type::Tensor]);
        let tb = g.add_node_block(iff);
        let eb = g.add_node_block(iff);
        let sel = g.append(
            tb,
            Op::View(ViewKind::Select { dim: 0 }),
            &[base, i],
            &[Type::Tensor],
        );
        let sv = g.out(sel);
        g.set_returns(tb, &[sv]);
        g.set_returns(eb, &[base]);
        let report = check_effects(&g);
        assert!(report.is_pure(), "{:?}", report.violations);
    }
}
