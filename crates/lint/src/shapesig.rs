//! The shape-polymorphism certifier.
//!
//! The analogue of [`certify_pure`](crate::certify_pure) for shapes: after
//! the full pass pipeline has run, [`certify_shapes`] seeds the symbolic
//! shape analysis with fresh variables (`in0.d0`, …) for every tensor input
//! and classifies each input dimension by what the *output* shapes say
//! about it:
//!
//! * [`DimClass::Polymorphic`] — outputs are affine in the variable (or
//!   ignore it); the plan is valid for any extent, so a shape-keyed plan
//!   cache may bucket on "same rank" instead of "same shape".
//! * [`DimClass::Specialized`] — the analysis (or a pass that constant-
//!   folded a shape) pinned the variable to a constant via an equality
//!   constraint; the plan is valid only for that extent.
//! * [`DimClass::DataDependent`] — the variable taints a ⊥ output
//!   dimension; no static bucketing is possible.
//!
//! Equality constraints recorded by propagation (broadcast of two symbolic
//! dims, matmul contractions, concat off-dims) are solved with a small
//! union-find: variables unified with a constant become `Specialized`,
//! variables unified with each other stay polymorphic *as a class* (the
//! signature's rendered constraints carry the coupling).

use std::collections::HashMap;

use tssa_ir::{
    infer_shapes_symbolic, Constraint, DimClass, DimVar, Graph, ShapeSignature, SymDim, Type,
};

/// Union-find over [`DimVar`]s with an optional constant binding per class.
struct DimClasses {
    parent: HashMap<DimVar, DimVar>,
    bound: HashMap<DimVar, i64>,
}

impl DimClasses {
    fn new() -> DimClasses {
        DimClasses {
            parent: HashMap::new(),
            bound: HashMap::new(),
        }
    }

    fn find(&mut self, v: DimVar) -> DimVar {
        let p = *self.parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    fn union(&mut self, a: DimVar, b: DimVar) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Keep rb's binding if ra has none.
        if let (None, Some(&k)) = (self.bound.get(&ra), self.bound.get(&rb)) {
            self.bound.insert(ra, k);
        }
        self.parent.insert(rb, ra);
    }

    fn bind(&mut self, v: DimVar, k: i64) {
        let r = self.find(v);
        // First binding wins; a second, different constant would make the
        // program unsatisfiable — the rendered constraints still show it.
        self.bound.entry(r).or_insert(k);
    }

    fn constant_of(&mut self, v: DimVar) -> Option<i64> {
        let r = self.find(v);
        self.bound.get(&r).copied()
    }
}

/// Solve the recorded equality constraints into the union-find. Only the
/// affine forms a solver can use exactly are consumed (`v = k`, `v = w`,
/// `c·v = k` with exact division); everything else just stays as a rendered
/// assumption in the signature.
fn solve(classes: &mut DimClasses, constraints: &[Constraint]) {
    for c in constraints {
        let Constraint::Eq(a, b) = c else { continue };
        let d = a.sub(b);
        match d.terms() {
            [(v, coef)] => {
                // coef·v + c0 = 0  →  v = -c0/coef when exact and ≥ 0.
                let c0 = d.constant_term();
                if c0 % coef == 0 {
                    let k = -c0 / coef;
                    if k >= 0 {
                        classes.bind(*v, k);
                    }
                }
            }
            [(v, 1), (w, -1)] | [(v, -1), (w, 1)] if d.constant_term() == 0 => {
                classes.union(*v, *w);
            }
            _ => {}
        }
    }
}

/// Certify the shape polymorphism of `g`: run the symbolic shape analysis
/// with fresh per-input-dim variables and classify every input dimension.
///
/// `input_ranks` supplies the rank of each graph input (`None` for
/// non-tensor inputs or inputs whose rank the caller does not know; those
/// get no classification).
pub fn certify_shapes(g: &Graph, input_ranks: &[Option<usize>]) -> ShapeSignature {
    let info = infer_shapes_symbolic(g, input_ranks);

    let mut classes = DimClasses::new();
    solve(&mut classes, info.constraints());

    // Symbolic output shapes, and the set of variables tainting a ⊥ output
    // dim (those inputs are data-dependent for caching purposes).
    let mut outputs = Vec::new();
    let mut tainted: Vec<DimVar> = Vec::new();
    for &r in &g.block(g.top()).returns {
        if g.value(r).ty != Type::Tensor {
            outputs.push(None);
            continue;
        }
        let shape = info.shape(r).cloned();
        if let Some(shape) = &shape {
            for d in shape {
                if let SymDim::Unknown(t) = d {
                    tainted.extend(t.iter().copied());
                }
            }
        }
        outputs.push(shape);
    }

    let inputs = input_ranks
        .iter()
        .enumerate()
        .map(|(i, rank)| {
            rank.map(|r| {
                (0..r)
                    .map(|d| {
                        let v = DimVar {
                            input: i as u32,
                            dim: d as u32,
                        };
                        if tainted.iter().any(|&t| classes.find(t) == classes.find(v)) {
                            DimClass::DataDependent
                        } else if let Some(k) = classes.constant_of(v) {
                            DimClass::Specialized(k.max(0) as usize)
                        } else {
                            DimClass::Polymorphic
                        }
                    })
                    .collect()
            })
        })
        .collect();

    ShapeSignature {
        inputs,
        outputs,
        constraints: info.constraints().iter().map(|c| c.to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::{parse_graph, Op};

    #[test]
    fn pure_elementwise_program_is_fully_polymorphic() {
        let g = parse_graph(
            "graph(%x : Tensor):
               %y : Tensor = aten::relu(%x)
               return (%y)",
        )
        .unwrap();
        let sig = certify_shapes(&g, &[Some(2)]);
        assert_eq!(sig.polymorphic_dims(), 2);
        assert_eq!(sig.data_dependent_output_dims(), 0);
        assert!(sig.is_polymorphic(0, 0) && sig.is_polymorphic(0, 1));
        assert_eq!(sig.outputs.len(), 1);
    }

    #[test]
    fn matmul_against_constant_weight_specializes_the_contraction() {
        // x @ w with w constant 16x4: x.d1 must equal 16 → Specialized(16).
        let g = parse_graph(
            "graph(%x : Tensor):
               %w : Tensor = aten::ones[shape=[16, 4]]()
               %y : Tensor = aten::matmul(%x, %w)
               return (%y)",
        )
        .unwrap();
        let sig = certify_shapes(&g, &[Some(2)]);
        assert!(sig.is_polymorphic(0, 0), "{}", sig.render());
        assert_eq!(
            sig.inputs[0].as_ref().unwrap()[1],
            DimClass::Specialized(16),
            "{}",
            sig.render()
        );
    }

    #[test]
    fn broadcast_couples_two_inputs_without_specializing() {
        let g = parse_graph(
            "graph(%a : Tensor, %b : Tensor):
               %c : Tensor = aten::add(%a, %b)
               return (%c)",
        )
        .unwrap();
        let sig = certify_shapes(&g, &[Some(2), Some(2)]);
        assert_eq!(sig.polymorphic_dims(), 4, "{}", sig.render());
        assert!(
            sig.constraints.iter().any(|c| c == "in0.d0 = in1.d0"),
            "{:?}",
            sig.constraints
        );
    }

    #[test]
    fn data_dependent_output_taints_the_source_dim() {
        // A loop that concats the carried tensor with itself each iteration:
        // the output extent depends on the trip count, tainting in0.d0.
        let g = parse_graph(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %u : Tensor = aten::cat[dim=0](%c, %c)
                   -> (%t, %u)
               return (%o)",
        )
        .unwrap();
        let sig = certify_shapes(&g, &[Some(2), None]);
        assert_eq!(
            sig.inputs[0].as_ref().unwrap()[0],
            DimClass::DataDependent,
            "{}",
            sig.render()
        );
        assert!(sig.data_dependent_output_dims() > 0);
        assert!(sig.inputs[1].is_none());
    }

    #[test]
    fn builder_graphs_certify_too() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let r = g.append(g.top(), Op::Softmax { dim: 1 }, &[x], &[Type::Tensor]);
        let rv = g.out(r);
        g.set_returns(g.top(), &[rv]);
        let sig = certify_shapes(&g, &[Some(3)]);
        assert_eq!(sig.polymorphic_dims(), 3);
        assert_eq!(sig.render().lines().count(), 2);
    }
}
