//! Structured diagnostics shared by the effect checker and the lint rules.

use std::fmt;

use tssa_ir::{Graph, NodeId, SrcSpan, ValueId};

/// How seriously a diagnostic is taken.
///
/// Every rule has a default severity which a [`crate::Linter`] can override
/// per rule; `Allow` suppresses the rule entirely, `Deny` makes the `tssa-lint`
/// CLI (and CI) fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed: the rule still runs nowhere (skipped before checking).
    Allow,
    /// Reported, does not fail the build.
    Warn,
    /// Reported and fails the `tssa-lint` CLI / CI gate.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

impl Severity {
    /// Parse a CLI-style severity name.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

/// One finding: a rule name, a severity, a location and a message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Name of the rule (or effect judgment) that fired.
    pub rule: &'static str,
    /// Effective severity (after per-rule overrides).
    pub severity: Severity,
    /// Offending node, when attributable.
    pub node: Option<NodeId>,
    /// Offending value, when attributable.
    pub value: Option<ValueId>,
    /// Source span of the offending node (frontend-lowered graphs only).
    pub span: Option<SrcSpan>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic attached to `node`, inheriting its source span and op
    /// name from `g`.
    pub fn at_node(
        rule: &'static str,
        severity: Severity,
        g: &Graph,
        node: NodeId,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            node: Some(node),
            value: None,
            span: g.node_span(node),
            message: format!(
                "node {} ({}): {}",
                node.index(),
                g.node(node).op.name(),
                message.into()
            ),
        }
    }

    /// A diagnostic attached to a value (e.g. an escaping block return).
    pub fn at_value(
        rule: &'static str,
        severity: Severity,
        g: &Graph,
        value: ValueId,
        message: impl Into<String>,
    ) -> Diagnostic {
        let (node, span) = match g.def_node(value) {
            Some(n) => (Some(n), g.node_span(n)),
            None => (None, None),
        };
        Diagnostic {
            rule,
            severity,
            node,
            value: Some(value),
            span,
            message: format!("value {}: {}", g.value_name(value), message.into()),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(span) = self.span {
            write!(f, " {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::{Op, Type};

    #[test]
    fn renders_rule_span_and_message() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        g.set_current_span(Some(SrcSpan::line(7)));
        let n = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        g.set_current_span(None);
        let d = Diagnostic::at_node("unused-value", Severity::Warn, &g, n, "result never used");
        assert_eq!(
            d.to_string(),
            "warn[unused-value] line 7: node 0 (aten::relu): result never used"
        );
        assert_eq!(Severity::parse("deny"), Some(Severity::Deny));
        assert!(Severity::Warn < Severity::Deny);
    }
}
