//! Golden shape-polymorphism certificates for the paper's 8 workloads.
//!
//! Each workload is compiled through the full TensorSSA pipeline and
//! certified with [`tssa_lint::certify_shapes`]; the rendered signature is
//! pinned verbatim. A diff here means the symbolic shape analysis (or a
//! pipeline pass) changed what it can prove — deliberate improvements
//! update the goldens, regressions fail the build.

use tssa_backend::RtValue;
use tssa_pipelines::{Pipeline, TensorSsa};
use tssa_workloads::all_workloads;

const GOLDEN: [(&str, &str); 8] = [
    (
        "yolov3",
        "  in0: [poly, poly, poly]\n\
         \x20 out0: [in0.d0, in0.d1, in0.d2]\n\
         \x20 assume: in0.d2 >= 0; in0.d2 >= 2; in0.d2 >= 4\n",
    ),
    (
        "ssd",
        "  in0: [poly, poly, poly]\n\
         \x20 in1: [poly, poly]\n\
         \x20 in2: -\n\
         \x20 out0: [in0.d0, in0.d1, in0.d2]\n\
         \x20 assume: in1.d1 >= 0; in1.d1 >= 2; in0.d2 >= 0; in0.d2 >= 2; \
         in1.d1 >= 4; in0.d1 = in1.d0; in1.d0 = in0.d1; in0.d2 >= 4\n",
    ),
    (
        "yolact",
        "  in0: [poly, poly, poly]\n\
         \x20 out0: [in0.d0, in0.d1, in0.d2]\n\
         \x20 assume: in0.d1 >= 0; in0.d1 >= 2; in0.d1-2 >= 0; in0.d2 >= 0; \
         in0.d2 >= 2; in0.d2-2 >= 0\n",
    ),
    (
        "fcos",
        "  in0: [poly, poly, poly]\n\
         \x20 in1: [poly, poly, poly]\n\
         \x20 in2: [poly, poly, poly]\n\
         \x20 in3: [poly, poly]\n\
         \x20 out0: [in2.d0, in2.d1, in2.d2]\n\
         \x20 out1: [in0.d0, in0.d1, in0.d2]\n\
         \x20 assume: in0.d0 = in1.d0; in0.d1 = in1.d1; in0.d2 = in1.d2; \
         in3.d0 = in2.d1\n",
    ),
    (
        "nasrnn",
        "  in0: [poly, poly, poly]\n\
         \x20 in1: [poly, poly]\n\
         \x20 in2: [poly, poly]\n\
         \x20 in3: [poly, poly]\n\
         \x20 in4: -\n\
         \x20 out0: [in0.d0, in0.d1, in0.d2]\n\
         \x20 out1: [in0.d1, in2.d1]\n\
         \x20 assume: in0.d2 = in2.d0; in1.d1 = in3.d0; in0.d1 = in1.d0; \
         in2.d1 = in3.d1; in2.d1 = in1.d1\n",
    ),
    (
        "lstm",
        "  in0: [poly, poly, poly]\n\
         \x20 in1: [poly, poly]\n\
         \x20 in2: [poly, poly]\n\
         \x20 in3: [poly, poly]\n\
         \x20 in4: [poly, poly]\n\
         \x20 in5: -\n\
         \x20 out0: [in0.d0, in0.d1, in0.d2]\n\
         \x20 out1: [in0.d1, in1.d1]\n\
         \x20 out2: [in0.d1, in1.d1]\n\
         \x20 assume: in0.d2 = in3.d0; in1.d1 = in4.d0; in0.d1 = in1.d0; \
         in3.d1 = in4.d1; in3.d1 >= 0; in1.d1 >= 0; in3.d1 >= in1.d1; \
         2*in1.d1 >= 0; in3.d1 >= 2*in1.d1; 2*in1.d1 >= in1.d1; \
         3*in1.d1 >= 0; in3.d1 >= 3*in1.d1; 3*in1.d1 >= 2*in1.d1; \
         4*in1.d1 >= 0; in3.d1 >= 4*in1.d1; 4*in1.d1 >= 3*in1.d1; \
         in0.d1 = in2.d0; in1.d1 = in2.d1\n",
    ),
    (
        "seq2seq",
        "  in0: [poly, poly]\n\
         \x20 in1: [poly, poly]\n\
         \x20 in2: [poly, poly]\n\
         \x20 in3: [poly, poly, poly]\n\
         \x20 in4: -\n\
         \x20 out0: [in3.d0, in3.d1, in3.d2]\n\
         \x20 out1: [in0.d0, in1.d1]\n\
         \x20 assume: in0.d1 = in2.d0; in2.d1 = in0.d1; in2.d1 = in1.d0\n",
    ),
    (
        "attention",
        "  in0: [poly, poly]\n\
         \x20 in1: [poly, poly]\n\
         \x20 in2: [poly, poly]\n\
         \x20 in3: -\n\
         \x20 out0: [in0.d0, in0.d1]\n\
         \x20 assume: in1.d1 = in0.d1; in2.d0 = in1.d0\n",
    ),
];

fn input_ranks(w: &tssa_workloads::Workload) -> Vec<Option<usize>> {
    w.inputs(0, 0, 1)
        .iter()
        .map(|v| match v {
            RtValue::Tensor(t) => Some(t.rank()),
            _ => None,
        })
        .collect()
}

#[test]
fn workload_shape_signatures_match_the_goldens() {
    let workloads = all_workloads();
    assert_eq!(workloads.len(), GOLDEN.len());
    for (w, (name, expected)) in workloads.iter().zip(GOLDEN) {
        assert_eq!(w.name, name, "golden order drifted from all_workloads()");
        let g = w.graph().unwrap();
        let cp = TensorSsa::default().compile(&g);
        let sig = tssa_lint::certify_shapes(&cp.graph, &input_ranks(w));
        assert_eq!(
            sig.render(),
            expected,
            "{name}: signature drifted:\n{}",
            sig.render()
        );
    }
}

#[test]
fn every_workload_certifies_and_batch_dims_stay_polymorphic() {
    let mut batch_polymorphic = 0usize;
    for w in all_workloads() {
        let g = w.graph().unwrap();
        let cp = TensorSsa::default().compile(&g);
        let sig = tssa_lint::certify_shapes(&cp.graph, &input_ranks(&w));
        assert_eq!(
            sig.data_dependent_output_dims(),
            0,
            "{}: data-dependent output dims:\n{}",
            w.name,
            sig.render()
        );
        // Batch dim = dim 0 of input 0 for every paper workload.
        if sig.inputs[0]
            .as_ref()
            .is_some_and(|dims| dims[0] == tssa_ir::DimClass::Polymorphic)
        {
            batch_polymorphic += 1;
        }
    }
    assert!(
        batch_polymorphic >= 6,
        "only {batch_polymorphic}/8 workloads prove the batch dim polymorphic"
    );
}
