//! End-to-end checks tying the analyses to the real compiler:
//!
//! 1. The TensorSSA pipeline's output is certified mutation-free for every
//!    paper workload (the claim the whole optimization rests on).
//! 2. The pass sanitizer pinpoints the offending pass when a bad rewrite is
//!    injected into a realistic pass schedule, and the violation surfaces
//!    in the `tssa-obs` span tree.
//! 3. Differential fuzzing of the full pipeline: random imperative programs
//!    agree between the reference interpreter and the compiled output.

use tssa_core::passes::{ConstantFold, Dce};
use tssa_core::{convert_to_tensorssa, Pass, PassManager};
use tssa_ir::{Graph, MutateKind, Op, Type};
use tssa_lint::{certify_pure, check_effects, fuzz, Linter, PassSanitizer, Severity};
use tssa_obs::{TraceScope, Tracer};
use tssa_pipelines::{Pipeline, TensorSsa};
use tssa_workloads::all_workloads;

#[test]
fn tensorssa_output_is_pure_for_all_workloads() {
    for w in all_workloads() {
        let g = w.graph().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let imperative = check_effects(&g);
        let cp = TensorSsa::default().compile(&g);
        certify_pure(&cp.graph).unwrap_or_else(|diags| {
            panic!(
                "{}: compiled graph not pure ({} imperative effects before):\n{}",
                w.name,
                imperative.violations.len(),
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        });
    }
}

#[test]
fn workload_sources_lint_clean_at_deny_level() {
    // No workload should trip a Deny-level rule; warnings are allowed
    // (several workloads intentionally mutate caller tensors).
    let linter = Linter::new();
    for w in all_workloads() {
        let g = w.graph().unwrap();
        let denies: Vec<String> = linter
            .lint(&g)
            .into_iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.to_string())
            .collect();
        assert!(denies.is_empty(), "{}: {denies:?}", w.name);
    }
}

/// A bad rewrite: turns the last `immut::access`-free graph impure by
/// appending an in-place mutation of the first graph input.
struct BadRewrite;

impl Pass for BadRewrite {
    fn name(&self) -> &'static str {
        "bad-rewrite"
    }
    fn run(&mut self, g: &mut Graph) -> usize {
        let v = g.block(g.top()).params[0];
        g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        1
    }
}

/// TensorSSA conversion as a pass, mirroring the pipeline's first stage.
struct Convert;

impl Pass for Convert {
    fn name(&self) -> &'static str {
        "tensorssa-convert"
    }
    fn run(&mut self, g: &mut Graph) -> usize {
        convert_to_tensorssa(g).mutations_removed
    }
}

#[test]
fn sanitizer_attributes_injected_bad_pass_in_schedule() {
    let g = tssa_frontend::compile(
        "def f(b0: Tensor, n: int):
             b = b0.clone()
             for i in range(n):
                 b[i] = b[i] + 1.0
             return b
    ",
    )
    .unwrap();
    let (tracer, sink) = Tracer::ring(64);
    let mut pm = PassManager::new()
        .with(Convert)
        .with(ConstantFold)
        .with(BadRewrite)
        .with(Dce)
        .with_hook(PassSanitizer::new());
    let mut work = g.clone();
    let err = pm
        .try_run(&mut work, &tracer.scope())
        .expect_err("bad rewrite must be caught");
    assert_eq!(err.pass, "bad-rewrite");
    assert_eq!(err.hook, "lint-sanitizer");
    assert!(err.message.contains("effect violations increased"), "{err}");

    // The violation is visible in the span tree, on the offending pass only.
    let spans = sink.snapshot();
    let violated: Vec<&str> = spans
        .iter()
        .filter(|s| s.counter("sanitizer_violations").unwrap_or(0) > 0)
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(violated, ["pass:bad-rewrite"]);
}

#[test]
fn sanitizer_passes_clean_schedule_on_same_graph() {
    let g = tssa_frontend::compile(
        "def f(b0: Tensor, n: int):
             b = b0.clone()
             for i in range(n):
                 b[i] = b[i] + 1.0
             return b
    ",
    )
    .unwrap();
    let mut pm = PassManager::new()
        .with(Convert)
        .with(ConstantFold)
        .with(Dce)
        .with_hook(PassSanitizer::new());
    let mut work = g.clone();
    pm.try_run(&mut work, &TraceScope::disabled())
        .expect("clean schedule");
    certify_pure(&work).expect("converted graph is pure");
}

#[test]
fn differential_fuzz_full_pipeline() {
    // Smoke slice of the CI fuzz run (200 seeds in scripts/ci.sh): the full
    // TensorSSA pipeline, compiled ExecConfig included, against the
    // reference interpreter.
    let compile = |g: &Graph| {
        let cp = TensorSsa::default().compile(g);
        Ok((cp.graph, cp.exec_config))
    };
    for seed in 0..25 {
        fuzz::diff_case_compiled(seed, &compile).unwrap();
    }
}
