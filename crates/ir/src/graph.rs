//! Arena-based graph, block, node and value storage plus the mutation API
//! used by the compiler passes.

use std::collections::HashMap;

use crate::ops::Op;
use crate::types::{ConstValue, Type};

/// A source location in the frontend program a node was lowered from.
///
/// `line` is 1-based (0 = unknown); `col` is 1-based when the frontend can
/// attribute one and 0 otherwise (the DSL lexer currently tracks lines
/// only). Spans live in a side table on the [`Graph`] rather than on
/// [`Node`] so graphs built programmatically or parsed from text pay
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SrcSpan {
    /// 1-based source line (0 = unknown).
    pub line: u32,
    /// 1-based source column (0 = unknown).
    pub col: u32,
}

impl SrcSpan {
    /// A span covering `line` with no column information.
    pub fn line(line: usize) -> SrcSpan {
        SrcSpan {
            line: line as u32,
            col: 0,
        }
    }
}

impl std::fmt::Display for SrcSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.col > 0 {
            write!(f, "line {}:{}", self.line, self.col)
        } else {
            write!(f, "line {}", self.line)
        }
    }
}

/// Identifier of a [`Value`] within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub(crate) u32);

/// Identifier of a [`Node`] within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a [`Block`] within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

impl ValueId {
    /// Raw index (stable for the graph's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from [`ValueId::index`]; only meaningful for indices
    /// obtained from the same graph.
    pub fn from_index(index: usize) -> ValueId {
        ValueId(index as u32)
    }
}

impl NodeId {
    /// Raw index (stable for the graph's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Raw index (stable for the graph's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// Output `index` of `node`.
    NodeOut {
        /// Defining node.
        node: NodeId,
        /// Output position.
        index: usize,
    },
    /// Parameter `index` of `block`.
    BlockParam {
        /// Defining block.
        block: BlockId,
        /// Parameter position.
        index: usize,
    },
}

/// An SSA value.
#[derive(Debug, Clone)]
pub struct Value {
    /// Type of the value.
    pub ty: Type,
    /// Definition site.
    pub def: ValueDef,
    /// Optional debug name (graph inputs keep their source name).
    pub name: Option<String>,
}

/// An operation instance.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Operand values, in order.
    pub inputs: Vec<ValueId>,
    /// Result values, in order.
    pub outputs: Vec<ValueId>,
    /// Nested blocks (`prim::If` has two, `prim::Loop` one, …).
    pub blocks: Vec<BlockId>,
    /// The block containing this node.
    pub owner: BlockId,
    pub(crate) dead: bool,
}

/// A straight-line sequence of nodes with parameters and returns.
#[derive(Debug, Clone)]
pub struct Block {
    /// Block parameters (loop carries, graph inputs for the top block).
    pub params: Vec<ValueId>,
    /// Nodes in execution order.
    pub nodes: Vec<NodeId>,
    /// Values returned to the owning node (graph outputs for the top block).
    pub returns: Vec<ValueId>,
    /// The node this block belongs to (`None` for the top-level block).
    pub owner: Option<NodeId>,
}

/// A use site of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Use {
    /// Operand `operand` of `node`.
    Operand {
        /// Using node.
        node: NodeId,
        /// Operand position.
        operand: usize,
    },
    /// Entry `index` of `block`'s returns.
    Return {
        /// Using block.
        block: BlockId,
        /// Return position.
        index: usize,
    },
}

/// A graph-level IR program: a tree of blocks rooted at [`Graph::top`].
#[derive(Debug, Clone)]
pub struct Graph {
    values: Vec<Value>,
    nodes: Vec<Node>,
    blocks: Vec<Block>,
    top: BlockId,
    /// Source spans per node (sparse: only frontend-lowered nodes have one).
    spans: HashMap<NodeId, SrcSpan>,
    /// Span stamped onto every node created while set (the frontend points
    /// it at the statement currently being lowered).
    current_span: Option<SrcSpan>,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl Graph {
    /// An empty graph with a top-level block and no inputs.
    pub fn new() -> Graph {
        let top_block = Block {
            params: Vec::new(),
            nodes: Vec::new(),
            returns: Vec::new(),
            owner: None,
        };
        Graph {
            values: Vec::new(),
            nodes: Vec::new(),
            blocks: vec![top_block],
            top: BlockId(0),
            spans: HashMap::new(),
            current_span: None,
        }
    }

    /// Stamp `span` onto every node created until the next call (or `None`
    /// to stop stamping). The frontend sets this to the statement being
    /// lowered so diagnostics can point at source lines.
    pub fn set_current_span(&mut self, span: Option<SrcSpan>) {
        self.current_span = span;
    }

    /// Attach a source span to one node.
    pub fn set_node_span(&mut self, node: NodeId, span: SrcSpan) {
        self.spans.insert(node, span);
    }

    /// The source span of `node`, when the frontend attributed one.
    pub fn node_span(&self, node: NodeId) -> Option<SrcSpan> {
        self.spans.get(&node).copied()
    }

    /// Number of nodes carrying a source span.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// The top-level block (graph body).
    pub fn top(&self) -> BlockId {
        self.top
    }

    // ------------------------------------------------------------ accessors

    /// Immutable node access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Immutable value access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a value of this graph.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Immutable block access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a block of this graph.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Whether a node has been removed.
    pub fn is_removed(&self, id: NodeId) -> bool {
        self.nodes[id.index()].dead
    }

    /// Number of live nodes in the whole graph.
    pub fn live_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead).count()
    }

    /// Total number of values ever created (ids are never reused).
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Iterate all block ids (in creation order).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Single output of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not have exactly one output.
    pub fn out(&self, node: NodeId) -> ValueId {
        let outs = &self.node(node).outputs;
        assert_eq!(outs.len(), 1, "node has {} outputs", outs.len());
        outs[0]
    }

    // --------------------------------------------------------- construction

    fn new_value(&mut self, ty: Type, def: ValueDef, name: Option<String>) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(Value { ty, def, name });
        id
    }

    /// Add a graph input (parameter of the top block).
    pub fn add_input(&mut self, name: &str, ty: Type) -> ValueId {
        let top = self.top;
        self.add_block_param_named(top, ty, Some(name.to_string()))
    }

    /// Add a parameter to `block`.
    pub fn add_block_param(&mut self, block: BlockId, ty: Type) -> ValueId {
        self.add_block_param_named(block, ty, None)
    }

    fn add_block_param_named(&mut self, block: BlockId, ty: Type, name: Option<String>) -> ValueId {
        let index = self.blocks[block.index()].params.len();
        let v = self.new_value(ty, ValueDef::BlockParam { block, index }, name);
        self.blocks[block.index()].params.push(v);
        v
    }

    fn make_node(
        &mut self,
        block: BlockId,
        op: Op,
        inputs: &[ValueId],
        out_types: &[Type],
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            inputs: inputs.to_vec(),
            outputs: Vec::new(),
            blocks: Vec::new(),
            owner: block,
            dead: false,
        });
        if let Some(span) = self.current_span {
            self.spans.insert(id, span);
        }
        for (i, ty) in out_types.iter().enumerate() {
            let v = self.new_value(ty.clone(), ValueDef::NodeOut { node: id, index: i }, None);
            self.nodes[id.index()].outputs.push(v);
        }
        id
    }

    /// Append a node at the end of `block`.
    pub fn append(
        &mut self,
        block: BlockId,
        op: Op,
        inputs: &[ValueId],
        out_types: &[Type],
    ) -> NodeId {
        let id = self.make_node(block, op, inputs, out_types);
        self.blocks[block.index()].nodes.push(id);
        id
    }

    /// Insert a node at `index` within `block`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is past the end of the block.
    pub fn insert(
        &mut self,
        block: BlockId,
        index: usize,
        op: Op,
        inputs: &[ValueId],
        out_types: &[Type],
    ) -> NodeId {
        let id = self.make_node(block, op, inputs, out_types);
        self.blocks[block.index()].nodes.insert(index, id);
        id
    }

    /// Insert a node immediately before `anchor` in the same block.
    pub fn insert_before(
        &mut self,
        anchor: NodeId,
        op: Op,
        inputs: &[ValueId],
        out_types: &[Type],
    ) -> NodeId {
        let block = self.node(anchor).owner;
        let idx = self.node_index(anchor);
        self.insert(block, idx, op, inputs, out_types)
    }

    /// Insert a node immediately after `anchor` in the same block.
    pub fn insert_after(
        &mut self,
        anchor: NodeId,
        op: Op,
        inputs: &[ValueId],
        out_types: &[Type],
    ) -> NodeId {
        let block = self.node(anchor).owner;
        let idx = self.node_index(anchor);
        self.insert(block, idx + 1, op, inputs, out_types)
    }

    /// Insert a node at the beginning of `block`.
    pub fn prepend(
        &mut self,
        block: BlockId,
        op: Op,
        inputs: &[ValueId],
        out_types: &[Type],
    ) -> NodeId {
        self.insert(block, 0, op, inputs, out_types)
    }

    /// Create a nested block owned by `node` (appended to its block list).
    pub fn add_node_block(&mut self, node: NodeId) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            params: Vec::new(),
            nodes: Vec::new(),
            returns: Vec::new(),
            owner: Some(node),
        });
        self.nodes[node.index()].blocks.push(id);
        id
    }

    /// Add an extra output value to `node`.
    pub fn add_output(&mut self, node: NodeId, ty: Type) -> ValueId {
        let index = self.node(node).outputs.len();
        let v = self.new_value(ty, ValueDef::NodeOut { node, index }, None);
        self.nodes[node.index()].outputs.push(v);
        v
    }

    /// Add an extra input to `node`.
    pub fn add_node_input(&mut self, node: NodeId, value: ValueId) {
        self.nodes[node.index()].inputs.push(value);
    }

    /// Replace the returns of `block`.
    pub fn set_returns(&mut self, block: BlockId, values: &[ValueId]) {
        self.blocks[block.index()].returns = values.to_vec();
    }

    /// Append one value to the returns of `block`.
    pub fn push_return(&mut self, block: BlockId, value: ValueId) {
        self.blocks[block.index()].returns.push(value);
    }

    /// Convenience: append a `prim::Constant` to the top block.
    pub fn constant(&mut self, value: ConstValue) -> ValueId {
        let ty = value.ty();
        let top = self.top;
        let n = self.append(top, Op::Constant(value), &[], &[ty]);
        self.out(n)
    }

    /// Convenience: an integer constant in the top block.
    pub fn constant_int(&mut self, v: i64) -> ValueId {
        self.constant(ConstValue::Int(v))
    }

    /// Convenience: a float constant in the top block.
    pub fn constant_float(&mut self, v: f64) -> ValueId {
        self.constant(ConstValue::Float(v))
    }

    /// Convenience: a boolean constant in the top block.
    pub fn constant_bool(&mut self, v: bool) -> ValueId {
        self.constant(ConstValue::Bool(v))
    }

    /// A constant placed in a specific block (needed inside loop bodies so
    /// verification's dominance check passes without hoisting).
    pub fn constant_in(&mut self, block: BlockId, value: ConstValue) -> ValueId {
        let ty = value.ty();
        let n = self.append(block, Op::Constant(value), &[], &[ty]);
        self.out(n)
    }

    // ------------------------------------------------------------ mutation

    /// Replace the operator of `node` in place (arity must stay compatible;
    /// used e.g. to rewrite `aten::select` into `immut::select`).
    pub fn set_op(&mut self, node: NodeId, op: Op) {
        self.nodes[node.index()].op = op;
    }

    /// Rewrite operand `index` of `node`.
    pub fn set_input(&mut self, node: NodeId, index: usize, value: ValueId) {
        self.nodes[node.index()].inputs[index] = value;
    }

    /// Replace the whole operand list of `node`.
    pub fn set_inputs(&mut self, node: NodeId, inputs: &[ValueId]) {
        self.nodes[node.index()].inputs = inputs.to_vec();
    }

    /// Attach a debug name to `value` (used by the printer; parsed graphs
    /// keep their textual names through round trips).
    pub fn set_value_name(&mut self, value: ValueId, name: &str) {
        self.values[value.index()].name = Some(name.to_string());
    }

    /// Remove operand `index` of `node`.
    pub fn remove_node_input(&mut self, node: NodeId, index: usize) {
        self.nodes[node.index()].inputs.remove(index);
    }

    /// Remove output `index` of `node`, re-indexing the definitions of the
    /// outputs that follow. The removed value must be unused.
    pub fn remove_output(&mut self, node: NodeId, index: usize) {
        let removed = self.nodes[node.index()].outputs.remove(index);
        debug_assert!(
            self.uses(removed).is_empty(),
            "removing a used output {removed:?}"
        );
        for (i, &out) in self.nodes[node.index()]
            .outputs
            .iter()
            .enumerate()
            .skip(index)
        {
            if let ValueDef::NodeOut { node: n, .. } = self.values[out.index()].def {
                self.values[out.index()].def = ValueDef::NodeOut { node: n, index: i };
            }
        }
    }

    /// Remove parameter `index` of `block`, re-indexing the parameters that
    /// follow. The removed value must be unused.
    pub fn remove_block_param(&mut self, block: BlockId, index: usize) {
        let removed = self.blocks[block.index()].params.remove(index);
        debug_assert!(
            self.uses(removed).is_empty(),
            "removing a used block param {removed:?}"
        );
        let params = self.blocks[block.index()].params.clone();
        for (i, &p) in params.iter().enumerate().skip(index) {
            if let ValueDef::BlockParam { block: b, .. } = self.values[p.index()].def {
                self.values[p.index()].def = ValueDef::BlockParam { block: b, index: i };
            }
        }
    }

    /// Remove return `index` of `block`.
    pub fn remove_return(&mut self, block: BlockId, index: usize) {
        self.blocks[block.index()].returns.remove(index);
    }

    /// Remove `node` from its block (its values become undefined; callers
    /// must have rerouted all uses first).
    pub fn remove_node(&mut self, node: NodeId) {
        let block = self.node(node).owner;
        self.blocks[block.index()].nodes.retain(|&n| n != node);
        self.nodes[node.index()].dead = true;
    }

    /// Move `node` out of its current block to immediately before `anchor`
    /// (which may live in a different block). The caller is responsible for
    /// scoping: every operand must still be in scope at the new position.
    pub fn move_node_before(&mut self, node: NodeId, anchor: NodeId) {
        let from = self.node(node).owner;
        self.blocks[from.index()].nodes.retain(|&n| n != node);
        let to = self.node(anchor).owner;
        let idx = self.node_index(anchor);
        self.blocks[to.index()].nodes.insert(idx, node);
        self.nodes[node.index()].owner = to;
    }

    /// Position of `node` within its owning block.
    ///
    /// # Panics
    ///
    /// Panics if the node has been removed.
    pub fn node_index(&self, node: NodeId) -> usize {
        let block = self.node(node).owner;
        self.blocks[block.index()]
            .nodes
            .iter()
            .position(|&n| n == node)
            .expect("node not in its owner block")
    }

    /// All use sites of `value` (operands and block returns), in no
    /// particular order.
    pub fn uses(&self, value: ValueId) -> Vec<Use> {
        let mut uses = Vec::new();
        for (bi, b) in self.blocks.iter().enumerate() {
            for (i, &r) in b.returns.iter().enumerate() {
                if r == value {
                    uses.push(Use::Return {
                        block: BlockId(bi as u32),
                        index: i,
                    });
                }
            }
        }
        for (ni, n) in self.nodes.iter().enumerate() {
            if n.dead {
                continue;
            }
            for (i, &inp) in n.inputs.iter().enumerate() {
                if inp == value {
                    uses.push(Use::Operand {
                        node: NodeId(ni as u32),
                        operand: i,
                    });
                }
            }
        }
        uses
    }

    /// Whether `value` has any uses.
    pub fn has_uses(&self, value: ValueId) -> bool {
        !self.uses(value).is_empty()
    }

    /// Rewrite one use site to reference `new`.
    pub fn rewrite_use(&mut self, site: Use, new: ValueId) {
        match site {
            Use::Operand { node, operand } => {
                self.nodes[node.index()].inputs[operand] = new;
            }
            Use::Return { block, index } => {
                self.blocks[block.index()].returns[index] = new;
            }
        }
    }

    /// Replace every use of `old` with `new`.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        for site in self.uses(old) {
            self.rewrite_use(site, new);
        }
    }

    /// The block in which `value` is defined.
    pub fn def_block(&self, value: ValueId) -> BlockId {
        match self.value(value).def {
            ValueDef::NodeOut { node, .. } => self.node(node).owner,
            ValueDef::BlockParam { block, .. } => block,
        }
    }

    /// The defining node of `value`, if it is a node output.
    pub fn def_node(&self, value: ValueId) -> Option<NodeId> {
        match self.value(value).def {
            ValueDef::NodeOut { node, .. } => Some(node),
            ValueDef::BlockParam { .. } => None,
        }
    }

    /// All live nodes of `block` and (recursively) its nested blocks, in
    /// pre-order program order.
    pub fn nodes_recursive(&self, block: BlockId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_nodes(block, &mut out);
        out
    }

    fn collect_nodes(&self, block: BlockId, out: &mut Vec<NodeId>) {
        for &n in &self.blocks[block.index()].nodes {
            out.push(n);
            for &b in &self.nodes[n.index()].blocks {
                self.collect_nodes(b, out);
            }
        }
    }

    /// Display name for a value: its debug name or `%<id>`.
    pub fn value_name(&self, value: ValueId) -> String {
        match &self.value(value).name {
            Some(n) => format!("%{n}"),
            None => format!("%{}", value.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MutateKind, Op, ViewKind};

    #[test]
    fn build_straight_line() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let n = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let y = g.out(n);
        g.set_returns(g.top(), &[y]);
        assert_eq!(g.block(g.top()).nodes.len(), 1);
        assert_eq!(g.value(y).ty, Type::Tensor);
        assert_eq!(g.def_node(y), Some(n));
        assert_eq!(g.def_block(x), g.top());
    }

    #[test]
    fn insertion_order() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let a = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let b = g.insert_before(a, Op::Sigmoid, &[x], &[Type::Tensor]);
        let c = g.insert_after(a, Op::Tanh, &[x], &[Type::Tensor]);
        let order: Vec<NodeId> = g.block(g.top()).nodes.clone();
        assert_eq!(order, vec![b, a, c]);
        assert_eq!(g.node_index(a), 1);
    }

    #[test]
    fn uses_and_replacement() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let n1 = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let n2 = g.append(g.top(), Op::Sigmoid, &[x], &[Type::Tensor]);
        let r1 = g.out(n1);
        g.set_returns(g.top(), &[x]);
        assert_eq!(g.uses(x).len(), 3);
        g.replace_all_uses(x, r1);
        assert_eq!(g.node(n2).inputs[0], r1);
        assert_eq!(g.block(g.top()).returns[0], r1);
        // n1 now uses r1 too (self-reference created deliberately by this
        // blanket replacement; passes use ordered variants instead).
        assert_eq!(g.node(n1).inputs[0], r1);
    }

    #[test]
    fn nested_blocks() {
        let mut g = Graph::new();
        let c = g.constant_bool(true);
        let iff = g.append(g.top(), Op::If, &[c], &[Type::Tensor]);
        let then_b = g.add_node_block(iff);
        let else_b = g.add_node_block(iff);
        let t1 = g.append(then_b, Op::Zeros { shape: vec![2] }, &[], &[Type::Tensor]);
        let e1 = g.append(else_b, Op::Ones { shape: vec![2] }, &[], &[Type::Tensor]);
        let (t1v, e1v) = (g.out(t1), g.out(e1));
        g.set_returns(then_b, &[t1v]);
        g.set_returns(else_b, &[e1v]);
        assert_eq!(g.node(iff).blocks.len(), 2);
        assert_eq!(g.block(then_b).owner, Some(iff));
        let all = g.nodes_recursive(g.top());
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn remove_node_unlinks() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let n = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        assert_eq!(g.live_node_count(), 1);
        g.remove_node(n);
        assert!(g.is_removed(n));
        assert_eq!(g.live_node_count(), 0);
        assert!(g.block(g.top()).nodes.is_empty());
    }

    #[test]
    fn view_and_mutate_nodes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let i = g.constant_int(0);
        let sel = g.append(
            g.top(),
            Op::View(ViewKind::Select { dim: 0 }),
            &[x, i],
            &[Type::Tensor],
        );
        let v = g.out(sel);
        let m = g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        assert!(g.node(sel).op.is_view());
        assert!(g.node(m).op.is_mutation());
    }
}
