//! Value types and constant payloads.

use std::fmt;

/// Element type carried by tensor values (mirrors `tssa-tensor`'s `DType`
/// without depending on it — the IR is independent of the runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 32-bit float.
    F32,
    /// 64-bit signed integer.
    I64,
    /// Boolean.
    Bool,
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::F32 => write!(f, "f32"),
            ScalarType::I64 => write!(f, "i64"),
            ScalarType::Bool => write!(f, "bool"),
        }
    }
}

/// Type of an IR value.
///
/// Tensor types are deliberately coarse (no static shapes): the paper's pass
/// operates on alias structure, not shapes, and the workloads are dynamic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// An n-dimensional tensor.
    Tensor,
    /// A host integer (loop bounds, indices).
    Int,
    /// A host float (scalar operands).
    Float,
    /// A host boolean (branch conditions).
    Bool,
    /// A homogeneous list (container dependency in alias analysis).
    List(Box<Type>),
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Tensor => write!(f, "Tensor"),
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Bool => write!(f, "bool"),
            Type::List(t) => write!(f, "{t}[]"),
        }
    }
}

/// Payload of a `prim::Constant` node.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstValue {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// Boolean constant.
    Bool(bool),
    /// Integer-list constant (shapes, permutations).
    IntList(Vec<i64>),
}

impl ConstValue {
    /// The IR type of this constant.
    pub fn ty(&self) -> Type {
        match self {
            ConstValue::Int(_) => Type::Int,
            ConstValue::Float(_) => Type::Float,
            ConstValue::Bool(_) => Type::Bool,
            ConstValue::IntList(_) => Type::List(Box::new(Type::Int)),
        }
    }
}

impl fmt::Display for ConstValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstValue::Int(v) => write!(f, "{v}"),
            ConstValue::Float(v) => write!(f, "{v:?}"),
            ConstValue::Bool(v) => write!(f, "{v}"),
            ConstValue::IntList(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_types() {
        assert_eq!(ConstValue::Int(3).ty(), Type::Int);
        assert_eq!(ConstValue::Float(1.5).ty(), Type::Float);
        assert_eq!(ConstValue::Bool(true).ty(), Type::Bool);
        assert_eq!(
            ConstValue::IntList(vec![1, 2]).ty(),
            Type::List(Box::new(Type::Int))
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Tensor.to_string(), "Tensor");
        assert_eq!(Type::List(Box::new(Type::Int)).to_string(), "int[]");
        assert_eq!(ConstValue::IntList(vec![1, 2]).to_string(), "[1, 2]");
        assert_eq!(ConstValue::Float(2.0).to_string(), "2.0");
    }
}
