//! TorchScript-flavoured textual form of a graph.
//!
//! The format round-trips through [`crate::parse_graph`]:
//!
//! ```text
//! graph(%x : Tensor, %n : int):
//!   %2 : int = prim::Constant[value=1]()
//!   %4 : Tensor = prim::Loop(%n, %3, %x)
//!     block0(%i : int, %b : Tensor):
//!       %5 : Tensor = aten::relu(%b)
//!       -> (%3, %5)
//!   return (%4)
//! ```

use std::fmt;

use crate::graph::{BlockId, Graph};
use crate::ops::{Op, ViewKind};
use crate::types::ConstValue;

fn int_list(v: &[i64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn view_attrs(kind: &ViewKind) -> String {
    match kind {
        ViewKind::Select { dim } => format!("dim={dim}"),
        ViewKind::SliceView { dim } => format!("dim={dim}"),
        ViewKind::Permute { perm } => format!("perm={}", int_list(perm)),
        ViewKind::Transpose { dim0, dim1 } => format!("dim0={dim0}, dim1={dim1}"),
        ViewKind::Unsqueeze { dim } => format!("dim={dim}"),
        ViewKind::Squeeze { dim } => format!("dim={dim}"),
        ViewKind::Expand { shape } => format!("shape={}", int_list(shape)),
        ViewKind::ViewShape { shape } => format!("shape={}", int_list(shape)),
    }
}

/// The `[k=v, …]` attribute string for an op, if it has attributes.
pub(crate) fn attr_string(op: &Op) -> Option<String> {
    match op {
        Op::Constant(c) => Some(match c {
            ConstValue::Int(v) => format!("value={v}"),
            ConstValue::Float(v) => format!("value={v:?}"),
            ConstValue::Bool(v) => format!("value={v}"),
            ConstValue::IntList(v) => format!("value={}", int_list(v)),
        }),
        Op::Size { dim } => Some(format!("dim={dim}")),
        Op::Zeros { shape } | Op::Ones { shape } | Op::Full { shape } | Op::Reshape { shape } => {
            Some(format!("shape={}", int_list(shape)))
        }
        Op::View(k) | Op::Access(k) | Op::Assign(k) => Some(view_attrs(k)),
        Op::Softmax { dim } | Op::Cumsum { dim } => Some(format!("dim={dim}")),
        Op::SumDim { dim, keepdim }
        | Op::MeanDim { dim, keepdim }
        | Op::MaxDim { dim, keepdim }
        | Op::MinDim { dim, keepdim }
        | Op::ArgmaxDim { dim, keepdim } => Some(format!("dim={dim}, keepdim={keepdim}")),
        Op::Concat { dim } | Op::Stack { dim } | Op::Gather { dim } | Op::IndexSelect { dim } => {
            Some(format!("dim={dim}"))
        }
        Op::Cast { dtype } => Some(format!("dtype={dtype}")),
        Op::ParallelMap { dim } => Some(format!("dim={dim}")),
        _ => None,
    }
}

impl Graph {
    fn fmt_block(&self, f: &mut fmt::Formatter<'_>, block: BlockId, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        for &n in &self.block(block).nodes {
            let node = self.node(n);
            write!(f, "{pad}")?;
            if !node.outputs.is_empty() {
                let outs: Vec<String> = node
                    .outputs
                    .iter()
                    .map(|&v| format!("{} : {}", self.value_name(v), self.value(v).ty))
                    .collect();
                write!(f, "{} = ", outs.join(", "))?;
            }
            write!(f, "{}", node.op.name())?;
            if let Some(attrs) = attr_string(&node.op) {
                write!(f, "[{attrs}]")?;
            }
            let ins: Vec<String> = node.inputs.iter().map(|&v| self.value_name(v)).collect();
            writeln!(f, "({})", ins.join(", "))?;
            for (bi, &b) in node.blocks.iter().enumerate() {
                let params: Vec<String> = self
                    .block(b)
                    .params
                    .iter()
                    .map(|&v| format!("{} : {}", self.value_name(v), self.value(v).ty))
                    .collect();
                writeln!(f, "{pad}  block{bi}({}):", params.join(", "))?;
                self.fmt_block(f, b, indent + 2)?;
                let rets: Vec<String> = self
                    .block(b)
                    .returns
                    .iter()
                    .map(|&v| self.value_name(v))
                    .collect();
                writeln!(f, "{pad}    -> ({})", rets.join(", "))?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let top = self.top();
        let params: Vec<String> = self
            .block(top)
            .params
            .iter()
            .map(|&v| format!("{} : {}", self.value_name(v), self.value(v).ty))
            .collect();
        writeln!(f, "graph({}):", params.join(", "))?;
        self.fmt_block(f, top, 1)?;
        let rets: Vec<String> = self
            .block(top)
            .returns
            .iter()
            .map(|&v| self.value_name(v))
            .collect();
        writeln!(f, "  return ({})", rets.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;
    use crate::ops::{MutateKind, Op, ViewKind};
    use crate::types::Type;

    #[test]
    fn prints_straight_line() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let n = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let y = g.out(n);
        g.set_returns(g.top(), &[y]);
        let s = g.to_string();
        assert!(s.contains("graph(%x : Tensor):"), "{s}");
        assert!(s.contains("aten::relu(%x)"), "{s}");
        assert!(s.contains("return ("), "{s}");
    }

    #[test]
    fn prints_attrs_and_blocks() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let i = g.constant_int(2);
        let sel = g.append(
            g.top(),
            Op::View(ViewKind::Select { dim: 0 }),
            &[x, i],
            &[Type::Tensor],
        );
        let v = g.out(sel);
        g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        let c = g.constant_bool(true);
        let iff = g.append(g.top(), Op::If, &[c], &[]);
        let tb = g.add_node_block(iff);
        let eb = g.add_node_block(iff);
        g.set_returns(tb, &[]);
        g.set_returns(eb, &[]);
        let s = g.to_string();
        assert!(s.contains("aten::select[dim=0]"), "{s}");
        assert!(s.contains("prim::Constant[value=true]"), "{s}");
        assert!(s.contains("block0():"), "{s}");
        assert!(s.contains("block1():"), "{s}");
        assert!(s.contains("aten::relu_"), "{s}");
    }
}
