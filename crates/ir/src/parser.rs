//! Parser for the textual graph form produced by the printer.
//!
//! `parse_graph(&g.to_string())` reconstructs a structurally-identical graph;
//! this powers round-trip tests and lets workloads or test fixtures be
//! written as IR text.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::graph::{BlockId, Graph, ValueId};
use crate::ops::{MutateKind, Op, ViewKind};
use crate::types::{ConstValue, ScalarType, Type};

/// Error produced by [`parse_graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseIrError {
    /// What went wrong, with token context.
    pub message: String,
}

impl fmt::Display for ParseIrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir parse error: {}", self.message)
    }
}

impl Error for ParseIrError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseIrError> {
    Err(ParseIrError {
        message: message.into(),
    })
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Value(String), // %name
    Num(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Eq,
    Arrow,
}

fn lex(src: &str) -> Result<Vec<Tok>, ParseIrError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '-' => {
                if i + 1 < chars.len() && chars[i + 1] == '>' {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    // negative number
                    let mut s = String::from('-');
                    i += 1;
                    while i < chars.len()
                        && (chars[i].is_ascii_digit() || chars[i] == '.' || chars[i] == 'e')
                    {
                        s.push(chars[i]);
                        i += 1;
                    }
                    toks.push(Tok::Num(s));
                }
            }
            ':' => {
                // "::" is glued into identifiers by the ident rule; a bare
                // ':' here is a type/block separator.
                toks.push(Tok::Colon);
                i += 1;
            }
            '%' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    s.push(chars[i]);
                    i += 1;
                }
                toks.push(Tok::Value(s));
            }
            _ if c.is_ascii_digit() => {
                let mut s = String::new();
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || (chars[i] == '-' && s.ends_with('e')))
                {
                    s.push(chars[i]);
                    i += 1;
                }
                toks.push(Tok::Num(s));
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                // Glue "::" namespaces into one identifier.
                while i + 1 < chars.len() && chars[i] == ':' && chars[i + 1] == ':' {
                    s.push_str("::");
                    i += 2;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            _ => return err(format!("unexpected character {c:?}")),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    graph: Graph,
    env: HashMap<String, ValueId>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, ParseIrError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseIrError {
                message: "unexpected end of input".into(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseIrError> {
        let t = self.next()?;
        if t != tok {
            return err(format!("expected {tok:?}, got {t:?}"));
        }
        Ok(())
    }

    fn expect_ident(&mut self, name: &str) -> Result<(), ParseIrError> {
        match self.next()? {
            Tok::Ident(s) if s == name => Ok(()),
            other => err(format!("expected `{name}`, got {other:?}")),
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseIrError> {
        let base = match self.next()? {
            Tok::Ident(s) => match s.as_str() {
                "Tensor" => Type::Tensor,
                "int" => Type::Int,
                "float" => Type::Float,
                "bool" => Type::Bool,
                other => return err(format!("unknown type `{other}`")),
            },
            other => return err(format!("expected type, got {other:?}")),
        };
        let mut ty = base;
        while self.peek() == Some(&Tok::LBracket) {
            self.pos += 1;
            self.expect(Tok::RBracket)?;
            ty = Type::List(Box::new(ty));
        }
        Ok(ty)
    }

    /// Parse `(%a : T, %b : T)`-style parameter lists; returns (name, type).
    fn parse_param_list(&mut self) -> Result<Vec<(String, Type)>, ParseIrError> {
        self.expect(Tok::LParen)?;
        let mut out = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let name = match self.next()? {
                Tok::Value(s) => s,
                other => return err(format!("expected value, got {other:?}")),
            };
            self.expect(Tok::Colon)?;
            let ty = self.parse_type()?;
            out.push((name, ty));
            match self.next()? {
                Tok::Comma => continue,
                Tok::RParen => break,
                other => return err(format!("expected , or ), got {other:?}")),
            }
        }
        Ok(out)
    }

    fn lookup(&self, name: &str) -> Result<ValueId, ParseIrError> {
        self.env.get(name).copied().ok_or_else(|| ParseIrError {
            message: format!("undefined value %{name}"),
        })
    }

    fn parse_value_list(&mut self) -> Result<Vec<ValueId>, ParseIrError> {
        self.expect(Tok::LParen)?;
        let mut out = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            match self.next()? {
                Tok::Value(s) => out.push(self.lookup(&s)?),
                other => return err(format!("expected value, got {other:?}")),
            }
            match self.next()? {
                Tok::Comma => continue,
                Tok::RParen => break,
                other => return err(format!("expected , or ), got {other:?}")),
            }
        }
        Ok(out)
    }

    fn parse_attrs(&mut self) -> Result<HashMap<String, AttrVal>, ParseIrError> {
        let mut attrs = HashMap::new();
        if self.peek() != Some(&Tok::LBracket) {
            return Ok(attrs);
        }
        self.pos += 1;
        loop {
            let key = match self.next()? {
                Tok::Ident(s) => s,
                other => return err(format!("expected attr key, got {other:?}")),
            };
            self.expect(Tok::Eq)?;
            let val = match self.next()? {
                Tok::Num(s) => {
                    if s.contains('.') || s.contains('e') {
                        AttrVal::Float(s.parse().map_err(|_| ParseIrError {
                            message: format!("bad float {s}"),
                        })?)
                    } else {
                        AttrVal::Int(s.parse().map_err(|_| ParseIrError {
                            message: format!("bad int {s}"),
                        })?)
                    }
                }
                Tok::Ident(s) if s == "true" => AttrVal::Bool(true),
                Tok::Ident(s) if s == "false" => AttrVal::Bool(false),
                Tok::Ident(s) => AttrVal::Word(s),
                Tok::LBracket => {
                    let mut items = Vec::new();
                    if self.peek() == Some(&Tok::RBracket) {
                        self.pos += 1;
                        AttrVal::IntList(items)
                    } else {
                        loop {
                            match self.next()? {
                                Tok::Num(s) => items.push(s.parse().map_err(|_| ParseIrError {
                                    message: format!("bad int {s}"),
                                })?),
                                other => return err(format!("expected int, got {other:?}")),
                            }
                            match self.next()? {
                                Tok::Comma => continue,
                                Tok::RBracket => break,
                                other => return err(format!("expected , or ], got {other:?}")),
                            }
                        }
                        AttrVal::IntList(items)
                    }
                }
                other => return err(format!("bad attr value {other:?}")),
            };
            attrs.insert(key, val);
            match self.next()? {
                Tok::Comma => continue,
                Tok::RBracket => break,
                other => return err(format!("expected , or ], got {other:?}")),
            }
        }
        Ok(attrs)
    }

    fn parse_block_body(&mut self, block: BlockId) -> Result<(), ParseIrError> {
        loop {
            match self.peek() {
                Some(Tok::Arrow) => {
                    self.pos += 1;
                    let rets = self.parse_value_list()?;
                    self.graph.set_returns(block, &rets);
                    return Ok(());
                }
                Some(Tok::Ident(s)) if s == "return" => {
                    self.pos += 1;
                    let rets = self.parse_value_list()?;
                    self.graph.set_returns(block, &rets);
                    return Ok(());
                }
                None => return err("unterminated block"),
                _ => self.parse_stmt(block)?,
            }
        }
    }

    fn parse_stmt(&mut self, block: BlockId) -> Result<(), ParseIrError> {
        // Optional output list: %a : T, %b : T =
        let mut outs: Vec<(String, Type)> = Vec::new();
        if matches!(self.peek(), Some(Tok::Value(_))) {
            loop {
                let name = match self.next()? {
                    Tok::Value(s) => s,
                    other => return err(format!("expected value, got {other:?}")),
                };
                self.expect(Tok::Colon)?;
                let ty = self.parse_type()?;
                outs.push((name, ty));
                match self.next()? {
                    Tok::Comma => continue,
                    Tok::Eq => break,
                    other => return err(format!("expected , or =, got {other:?}")),
                }
            }
        }
        let op_name = match self.next()? {
            Tok::Ident(s) => s,
            other => return err(format!("expected op name, got {other:?}")),
        };
        let attrs = self.parse_attrs()?;
        let inputs = self.parse_value_list()?;
        let out_types: Vec<Type> = outs.iter().map(|(_, t)| t.clone()).collect();
        let op = op_from_name(&op_name, &attrs, &out_types)?;
        let node = self.graph.append(block, op, &inputs, &out_types);
        for (i, (name, _)) in outs.iter().enumerate() {
            let v = self.graph.node(node).outputs[i];
            self.graph.set_value_name(v, name);
            self.env.insert(name.clone(), v);
        }
        // Nested blocks.
        while matches!(self.peek(), Some(Tok::Ident(s)) if s.starts_with("block")) {
            self.pos += 1;
            let params = self.parse_param_list()?;
            self.expect(Tok::Colon)?;
            let b = self.graph.add_node_block(node);
            for (name, ty) in params {
                let v = self.graph.add_block_param(b, ty);
                self.graph.set_value_name(v, &name);
                self.env.insert(name, v);
            }
            self.parse_block_body(b)?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq)]
enum AttrVal {
    Int(i64),
    Float(f64),
    Bool(bool),
    IntList(Vec<i64>),
    Word(String),
}

fn attr_int(attrs: &HashMap<String, AttrVal>, key: &str) -> Result<i64, ParseIrError> {
    match attrs.get(key) {
        Some(AttrVal::Int(v)) => Ok(*v),
        _ => err(format!("missing int attr `{key}`")),
    }
}

fn attr_bool(attrs: &HashMap<String, AttrVal>, key: &str) -> Result<bool, ParseIrError> {
    match attrs.get(key) {
        Some(AttrVal::Bool(v)) => Ok(*v),
        _ => err(format!("missing bool attr `{key}`")),
    }
}

fn attr_list(attrs: &HashMap<String, AttrVal>, key: &str) -> Result<Vec<i64>, ParseIrError> {
    match attrs.get(key) {
        Some(AttrVal::IntList(v)) => Ok(v.clone()),
        _ => err(format!("missing int-list attr `{key}`")),
    }
}

fn view_kind_from(base: &str, attrs: &HashMap<String, AttrVal>) -> Result<ViewKind, ParseIrError> {
    Ok(match base {
        "select" => ViewKind::Select {
            dim: attr_int(attrs, "dim")?,
        },
        "slice" => ViewKind::SliceView {
            dim: attr_int(attrs, "dim")?,
        },
        "permute" => ViewKind::Permute {
            perm: attr_list(attrs, "perm")?,
        },
        "transpose" => ViewKind::Transpose {
            dim0: attr_int(attrs, "dim0")?,
            dim1: attr_int(attrs, "dim1")?,
        },
        "unsqueeze" => ViewKind::Unsqueeze {
            dim: attr_int(attrs, "dim")?,
        },
        "squeeze" => ViewKind::Squeeze {
            dim: attr_int(attrs, "dim")?,
        },
        "expand" => ViewKind::Expand {
            shape: attr_list(attrs, "shape")?,
        },
        "view" => ViewKind::ViewShape {
            shape: attr_list(attrs, "shape")?,
        },
        other => return err(format!("unknown view kind `{other}`")),
    })
}

fn mutate_kind_from(base: &str) -> Option<MutateKind> {
    Some(match base {
        "copy_" => MutateKind::Copy,
        "fill_" => MutateKind::Fill,
        "add_" => MutateKind::Add,
        "sub_" => MutateKind::Sub,
        "mul_" => MutateKind::Mul,
        "div_" => MutateKind::Div,
        "add_scalar_" => MutateKind::AddScalar,
        "mul_scalar_" => MutateKind::MulScalar,
        "relu_" => MutateKind::Relu,
        "sigmoid_" => MutateKind::Sigmoid,
        "tanh_" => MutateKind::Tanh,
        "exp_" => MutateKind::Exp,
        "neg_" => MutateKind::Neg,
        "clamp_" => MutateKind::Clamp,
        _ => return None,
    })
}

fn op_from_name(
    name: &str,
    attrs: &HashMap<String, AttrVal>,
    out_types: &[Type],
) -> Result<Op, ParseIrError> {
    let (ns, base) = name.split_once("::").unwrap_or(("aten", name));
    match ns {
        "prim" => {
            return Ok(match base {
                "Constant" => {
                    let cv = match attrs.get("value") {
                        Some(AttrVal::Int(v)) => {
                            if out_types.first() == Some(&Type::Float) {
                                ConstValue::Float(*v as f64)
                            } else {
                                ConstValue::Int(*v)
                            }
                        }
                        Some(AttrVal::Float(v)) => ConstValue::Float(*v),
                        Some(AttrVal::Bool(v)) => ConstValue::Bool(*v),
                        Some(AttrVal::IntList(v)) => ConstValue::IntList(v.clone()),
                        _ => return err("constant missing value"),
                    };
                    Op::Constant(cv)
                }
                "ListConstruct" => Op::ListConstruct,
                "ListUnpack" => Op::ListUnpack,
                "If" => Op::If,
                "Loop" => Op::Loop,
                "FusionGroup" => Op::FusionGroup,
                "ParallelMap" => Op::ParallelMap {
                    dim: attr_int(attrs, "dim")?,
                },
                other => return err(format!("unknown prim op `{other}`")),
            });
        }
        "immut" => {
            return Ok(if let Some(rest) = base.strip_prefix("assign_") {
                Op::Assign(view_kind_from(rest, attrs)?)
            } else {
                Op::Access(view_kind_from(base, attrs)?)
            });
        }
        "tssa" => {
            if base == "update" {
                return Ok(Op::Update);
            }
            return err(format!("unknown tssa op `{base}`"));
        }
        "aten" => {}
        other => return err(format!("unknown namespace `{other}`")),
    }
    if let Some(mk) = mutate_kind_from(base) {
        return Ok(Op::Mutate(mk));
    }
    if matches!(
        base,
        "select" | "slice" | "permute" | "transpose" | "unsqueeze" | "squeeze" | "expand" | "view"
    ) {
        return Ok(Op::View(view_kind_from(base, attrs)?));
    }
    Ok(match base {
        "int_add" => Op::IntAdd,
        "int_sub" => Op::IntSub,
        "int_mul" => Op::IntMul,
        "int_div" => Op::IntDiv,
        "int_mod" => Op::IntMod,
        "int_neg" => Op::IntNeg,
        "int_lt" => Op::IntLt,
        "int_le" => Op::IntLe,
        "int_gt" => Op::IntGt,
        "int_ge" => Op::IntGe,
        "int_eq" => Op::IntEq,
        "int_ne" => Op::IntNe,
        "bool_and" => Op::BoolAnd,
        "bool_or" => Op::BoolOr,
        "bool_not" => Op::BoolNot,
        "float_add" => Op::FloatAdd,
        "float_sub" => Op::FloatSub,
        "float_mul" => Op::FloatMul,
        "float_div" => Op::FloatDiv,
        "float_neg" => Op::FloatNeg,
        "float_lt" => Op::FloatLt,
        "float_gt" => Op::FloatGt,
        "int_to_float" => Op::IntToFloat,
        "size" => Op::Size {
            dim: attr_int(attrs, "dim")?,
        },
        "item_float" => Op::ItemFloat,
        "item_int" => Op::ItemInt,
        "item_bool" => Op::ItemBool,
        "zeros" => Op::Zeros {
            shape: attr_list(attrs, "shape")?,
        },
        "ones" => Op::Ones {
            shape: attr_list(attrs, "shape")?,
        },
        "full" => Op::Full {
            shape: attr_list(attrs, "shape")?,
        },
        "arange" => Op::Arange,
        "zeros_like" => Op::ZerosLike,
        "ones_like" => Op::OnesLike,
        "full_like" => Op::FullLike,
        "broadcast_like" => Op::BroadcastLike,
        "add" => Op::Add,
        "sub" => Op::Sub,
        "mul" => Op::Mul,
        "div" => Op::Div,
        "maximum" => Op::Maximum,
        "minimum" => Op::Minimum,
        "pow" => Op::Pow,
        "add_scalar" => Op::AddScalar,
        "sub_scalar" => Op::SubScalar,
        "mul_scalar" => Op::MulScalar,
        "div_scalar" => Op::DivScalar,
        "pow_scalar" => Op::PowScalar,
        "gt" => Op::Gt,
        "lt" => Op::Lt,
        "ge" => Op::Ge,
        "le" => Op::Le,
        "eq" => Op::EqElem,
        "logical_and" => Op::LogicalAnd,
        "logical_or" => Op::LogicalOr,
        "logical_not" => Op::LogicalNot,
        "neg" => Op::Neg,
        "relu" => Op::Relu,
        "sigmoid" => Op::Sigmoid,
        "tanh" => Op::Tanh,
        "exp" => Op::Exp,
        "log" => Op::Log,
        "sqrt" => Op::Sqrt,
        "abs" => Op::Abs,
        "clamp" => Op::Clamp,
        "softmax" => Op::Softmax {
            dim: attr_int(attrs, "dim")?,
        },
        "sum" => Op::SumDim {
            dim: attr_int(attrs, "dim")?,
            keepdim: attr_bool(attrs, "keepdim")?,
        },
        "mean" => Op::MeanDim {
            dim: attr_int(attrs, "dim")?,
            keepdim: attr_bool(attrs, "keepdim")?,
        },
        "max" => Op::MaxDim {
            dim: attr_int(attrs, "dim")?,
            keepdim: attr_bool(attrs, "keepdim")?,
        },
        "min" => Op::MinDim {
            dim: attr_int(attrs, "dim")?,
            keepdim: attr_bool(attrs, "keepdim")?,
        },
        "argmax" => Op::ArgmaxDim {
            dim: attr_int(attrs, "dim")?,
            keepdim: attr_bool(attrs, "keepdim")?,
        },
        "cumsum" => Op::Cumsum {
            dim: attr_int(attrs, "dim")?,
        },
        "matmul" => Op::Matmul,
        "bmm" => Op::Bmm,
        "cat" => Op::Concat {
            dim: attr_int(attrs, "dim")?,
        },
        "stack" => Op::Stack {
            dim: attr_int(attrs, "dim")?,
        },
        "where" => Op::WhereSelect,
        "gather" => Op::Gather {
            dim: attr_int(attrs, "dim")?,
        },
        "index_select" => Op::IndexSelect {
            dim: attr_int(attrs, "dim")?,
        },
        "to" => Op::Cast {
            dtype: match attrs.get("dtype") {
                Some(AttrVal::Word(w)) if w == "f32" => ScalarType::F32,
                Some(AttrVal::Word(w)) if w == "i64" => ScalarType::I64,
                Some(AttrVal::Word(w)) if w == "bool" => ScalarType::Bool,
                _ => return err("bad dtype attr"),
            },
        },
        "clone" => Op::CloneOp,
        "contiguous" => Op::Contiguous,
        "reshape" => Op::Reshape {
            shape: attr_list(attrs, "shape")?,
        },
        other => return err(format!("unknown aten op `{other}`")),
    })
}

/// Parse the textual graph format produced by [`Graph`]'s `Display` impl.
///
/// # Errors
///
/// Returns a [`ParseIrError`] describing the first syntactic problem.
pub fn parse_graph(src: &str) -> Result<Graph, ParseIrError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        graph: Graph::new(),
        env: HashMap::new(),
    };
    p.expect_ident("graph")?;
    let params = p.parse_param_list()?;
    p.expect(Tok::Colon)?;
    for (name, ty) in params {
        let v = p.graph.add_input(&name, ty);
        p.env.insert(name, v);
    }
    let top = p.graph.top();
    p.parse_block_body(top)?;
    Ok(p.graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn parses_minimal_graph() {
        let g = parse_graph("graph(%x : Tensor):\n  %1 : Tensor = aten::relu(%x)\n  return (%1)\n")
            .unwrap();
        assert!(g.verify().is_ok());
        assert_eq!(g.block(g.top()).nodes.len(), 1);
        assert_eq!(g.block(g.top()).returns.len(), 1);
    }

    #[test]
    fn round_trips_loop_graph() {
        let src = "graph(%n : int, %x : Tensor):
  %t : bool = prim::Constant[value=true]()
  %out : Tensor = prim::Loop(%n, %t, %x)
    block0(%i : int, %c : Tensor):
      %u : Tensor = aten::relu(%c)
      -> (%t, %u)
  return (%out)
";
        let g = parse_graph(src).unwrap();
        assert!(g.verify().is_ok(), "{:?}", g.verify());
        let printed = g.to_string();
        let g2 = parse_graph(&printed).unwrap();
        assert!(g2.verify().is_ok());
        assert_eq!(printed, g2.to_string());
    }

    #[test]
    fn parses_views_mutations_and_attrs() {
        let src = "graph(%x : Tensor):
  %i : int = prim::Constant[value=0]()
  %v : Tensor = aten::select[dim=1](%x, %i)
  %f : float = prim::Constant[value=2.5]()
  %m : Tensor = aten::mul_scalar_(%v, %f)
  %a : Tensor = immut::select[dim=1](%x, %i)
  %s : Tensor = immut::assign_select[dim=1](%x, %a, %i)
  return (%s)
";
        let g = parse_graph(src).unwrap();
        assert!(g.verify().is_ok(), "{:?}", g.verify());
        let round = parse_graph(&g.to_string()).unwrap().to_string();
        assert_eq!(g.to_string(), round);
    }

    #[test]
    fn rejects_undefined_values() {
        let r = parse_graph("graph(%x : Tensor):\n  %1 : Tensor = aten::relu(%y)\n  return (%1)\n");
        assert!(r.is_err());
    }

    #[test]
    fn rejects_unknown_ops() {
        let r = parse_graph(
            "graph(%x : Tensor):\n  %1 : Tensor = aten::frobnicate(%x)\n  return (%1)\n",
        );
        assert!(r.is_err());
    }

    #[test]
    fn constant_float_coerced_by_output_type() {
        let g = parse_graph("graph():\n  %1 : float = prim::Constant[value=2]()\n  return (%1)\n")
            .unwrap();
        assert_eq!(g.value(g.block(g.top()).returns[0]).ty, Type::Float);
    }
}
