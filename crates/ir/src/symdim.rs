//! The symbolic dimension domain for shape inference.
//!
//! Shape analysis used to track each dimension as `Option<usize>` — a known
//! constant or ⊥. That lattice cannot state the one fact a plan cache needs:
//! *which input dimensions a compiled plan is generic over*. This module
//! replaces the dim domain with [`SymDim`]:
//!
//! * a **known affine expression** over named input-dimension variables
//!   (`in0.d0`, `in2.d1`, …) with integer coefficients — constants are the
//!   degenerate expression with no variables;
//! * **⊥** ([`SymDim::Unknown`]) for data-dependent dimensions, carrying a
//!   *taint set* of the input-dim variables that fed the unknown (so a
//!   certifier can blame specific input dims for lost polymorphism).
//!
//! Affine expressions are kept normalized (terms sorted by variable,
//! zero coefficients dropped), which makes structural equality the semantic
//! equality test and keeps joins cheap. Products of two variables are not
//! representable and degrade soundly to ⊥.
//!
//! The module also defines [`ShapeSignature`]: the per-plan certificate the
//! `tssa-lint` shape certifier emits, classifying every graph input dim as
//! [`DimClass::Polymorphic`], [`DimClass::Specialized`] or
//! [`DimClass::DataDependent`], with symbolic output shapes and the
//! equality/ordering assumptions the analysis made.

use std::collections::BTreeSet;
use std::fmt;

/// A named input-dimension variable: dimension `dim` of graph input `input`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimVar {
    /// Index of the graph input (top-block parameter).
    pub input: u32,
    /// Dimension index within that input's shape.
    pub dim: u32,
}

impl DimVar {
    /// Parse the rendered form `in<i>.d<d>` back into a variable — the
    /// inverse of [`DimVar`]'s `Display`. Used when re-deriving machine
    /// facts (couplings, admission checks) from a signature's rendered
    /// constraint strings.
    pub fn parse(s: &str) -> Option<DimVar> {
        let rest = s.strip_prefix("in")?;
        let (input, dim) = rest.split_once(".d")?;
        Some(DimVar {
            input: input.parse().ok()?,
            dim: dim.parse().ok()?,
        })
    }
}

impl fmt::Display for DimVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in{}.d{}", self.input, self.dim)
    }
}

/// A normalized affine expression `c0 + Σ ci·vi` over [`DimVar`]s.
///
/// Terms are sorted by variable and never carry a zero coefficient, so two
/// expressions denote the same function iff they are `==`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymExpr {
    c0: i64,
    terms: Vec<(DimVar, i64)>,
}

impl SymExpr {
    /// The constant expression `k`.
    pub fn constant(k: i64) -> SymExpr {
        SymExpr {
            c0: k,
            terms: Vec::new(),
        }
    }

    /// The single-variable expression `v`.
    pub fn var(v: DimVar) -> SymExpr {
        SymExpr {
            c0: 0,
            terms: vec![(v, 1)],
        }
    }

    /// Rebuild from raw parts (used by the plan-file decoder). Terms are
    /// re-normalized, so untrusted input cannot break the invariants.
    pub fn from_parts(c0: i64, terms: impl IntoIterator<Item = (DimVar, i64)>) -> SymExpr {
        let mut e = SymExpr::constant(c0);
        for (v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    fn add_term(&mut self, v: DimVar, c: i64) {
        if c == 0 {
            return;
        }
        match self.terms.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => {
                self.terms[i].1 += c;
                if self.terms[i].1 == 0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (v, c)),
        }
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.c0
    }

    /// The `(variable, coefficient)` terms, sorted by variable.
    pub fn terms(&self) -> &[(DimVar, i64)] {
        &self.terms
    }

    /// `Some(k)` iff the expression is the constant `k`.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.c0)
    }

    /// `Some(v)` iff the expression is exactly the variable `v`.
    pub fn as_var(&self) -> Option<DimVar> {
        match (self.c0, self.terms.as_slice()) {
            (0, [(v, 1)]) => Some(*v),
            _ => None,
        }
    }

    /// Every variable occurring in the expression.
    pub fn vars(&self) -> impl Iterator<Item = DimVar> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// `self + other`.
    pub fn add(&self, other: &SymExpr) -> SymExpr {
        let mut out = self.clone();
        out.c0 += other.c0;
        for &(v, c) in &other.terms {
            out.add_term(v, c);
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &SymExpr) -> SymExpr {
        let mut out = self.clone();
        out.c0 -= other.c0;
        for &(v, c) in &other.terms {
            out.add_term(v, -c);
        }
        out
    }

    /// `self * k`.
    pub fn mul_const(&self, k: i64) -> SymExpr {
        if k == 0 {
            return SymExpr::constant(0);
        }
        SymExpr {
            c0: self.c0 * k,
            terms: self.terms.iter().map(|&(v, c)| (v, c * k)).collect(),
        }
    }

    /// `self / k` when every coefficient (and the constant) divides exactly.
    pub fn div_exact(&self, k: i64) -> Option<SymExpr> {
        if k == 0 || self.c0 % k != 0 || self.terms.iter().any(|&(_, c)| c % k != 0) {
            return None;
        }
        Some(SymExpr {
            c0: self.c0 / k,
            terms: self.terms.iter().map(|&(v, c)| (v, c / k)).collect(),
        })
    }

    /// Evaluate under an assignment of the variables. `None` when `env`
    /// lacks a variable the expression mentions.
    pub fn eval(&self, env: &dyn Fn(DimVar) -> Option<i64>) -> Option<i64> {
        let mut acc = self.c0;
        for &(v, c) in &self.terms {
            acc += c * env(v)?;
        }
        Some(acc)
    }

    /// Parse the rendered affine form back into an expression — the inverse
    /// of [`SymExpr`]'s `Display` (`"in0.d0+2*in1.d2-3"`, `"-4"`, …). Only
    /// the shapes `Display` emits are accepted: terms `N`, `inA.dB` and
    /// `N*inA.dB` joined by `+`/`-`. Anything else returns `None`, which
    /// admission checks treat as a vacuous (unevaluable) constraint.
    pub fn parse(s: &str) -> Option<SymExpr> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let mut chunks: Vec<(i64, String)> = Vec::new();
        let mut sign = 1i64;
        let mut chunk = String::new();
        for (i, ch) in s.char_indices() {
            match ch {
                '+' | '-' if i > 0 => {
                    chunks.push((sign, std::mem::take(&mut chunk)));
                    sign = if ch == '+' { 1 } else { -1 };
                }
                '-' => sign = -1,
                '+' => {}
                _ => chunk.push(ch),
            }
        }
        chunks.push((sign, chunk));
        let mut expr = SymExpr::constant(0);
        for (sgn, body) in chunks {
            let body = body.trim();
            if body.is_empty() {
                return None;
            }
            if let Some((coef, var)) = body.split_once('*') {
                let c: i64 = coef.trim().parse().ok()?;
                expr.add_term(DimVar::parse(var.trim())?, sgn * c);
            } else if let Some(v) = DimVar::parse(body) {
                expr.add_term(v, sgn);
            } else {
                let c: i64 = body.parse().ok()?;
                expr.c0 += sgn * c;
            }
        }
        Some(expr)
    }

    /// Whether *some* assignment of non-negative integers to the variables
    /// makes the expression equal `k`. Used to prove broadcasts impossible:
    /// `false` is a guarantee, `true` is "could not rule it out".
    pub fn can_equal(&self, k: i64) -> bool {
        let d = k - self.c0;
        if self.terms.is_empty() {
            return d == 0;
        }
        // Dimensions are non-negative: with all-positive coefficients the
        // expression can never drop below its constant term.
        if self.terms.iter().all(|&(_, c)| c > 0) && d < 0 {
            return false;
        }
        // The variable part is always a multiple of gcd(coefficients).
        let g = self
            .terms
            .iter()
            .fold(0i64, |acc, &(_, c)| gcd(acc, c.unsigned_abs() as i64));
        d % g == 0
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.c0);
        }
        let mut first = true;
        for &(v, c) in &self.terms {
            if first {
                match c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else if c < 0 {
                if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "-{}*{v}", -c)?;
                }
            } else if c == 1 {
                write!(f, "+{v}")?;
            } else {
                write!(f, "+{c}*{v}")?;
            }
        }
        match self.c0.cmp(&0) {
            std::cmp::Ordering::Greater => write!(f, "+{}", self.c0),
            std::cmp::Ordering::Less => write!(f, "{}", self.c0),
            std::cmp::Ordering::Equal => Ok(()),
        }
    }
}

/// One dimension in the symbolic shape lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymDim {
    /// A known affine expression over input-dim variables (constants
    /// included).
    Known(SymExpr),
    /// ⊥ — the dimension depends on runtime data. The taint set names the
    /// input-dim variables that flowed into the unknown (possibly empty,
    /// when the source is a non-shape runtime value).
    Unknown(BTreeSet<DimVar>),
}

impl SymDim {
    /// The known constant `n`.
    pub fn konst(n: usize) -> SymDim {
        SymDim::Known(SymExpr::constant(n as i64))
    }

    /// The input-dim variable `in{input}.d{dim}`.
    pub fn var(input: u32, dim: u32) -> SymDim {
        SymDim::Known(SymExpr::var(DimVar { input, dim }))
    }

    /// ⊥ with an empty taint set.
    pub fn unknown() -> SymDim {
        SymDim::Unknown(BTreeSet::new())
    }

    /// `Some(n)` iff the dimension is the known constant `n`.
    pub fn as_const(&self) -> Option<usize> {
        match self {
            SymDim::Known(e) => e.as_const().and_then(|v| usize::try_from(v).ok()),
            SymDim::Unknown(_) => None,
        }
    }

    /// The affine expression, when known.
    pub fn expr(&self) -> Option<&SymExpr> {
        match self {
            SymDim::Known(e) => Some(e),
            SymDim::Unknown(_) => None,
        }
    }

    /// Every variable the dimension mentions (expression vars or taint).
    pub fn vars(&self) -> BTreeSet<DimVar> {
        match self {
            SymDim::Known(e) => e.vars().collect(),
            SymDim::Unknown(t) => t.clone(),
        }
    }

    /// Lattice join: equal dims stay, disagreeing dims widen to ⊥ carrying
    /// the union of both sides' variables.
    pub fn join(&self, other: &SymDim) -> SymDim {
        if self == other {
            return self.clone();
        }
        let mut taint = self.vars();
        taint.extend(other.vars());
        SymDim::Unknown(taint)
    }

    /// Concretization membership: does the exact dimension `concrete` refine
    /// this symbolic dimension under the given variable assignment? ⊥ admits
    /// everything; a known expression must evaluate to exactly `concrete`
    /// (an unevaluable expression — missing variable — admits vacuously).
    pub fn admits(&self, concrete: usize, env: &dyn Fn(DimVar) -> Option<i64>) -> bool {
        match self {
            SymDim::Unknown(_) => true,
            SymDim::Known(e) => e.eval(env).is_none_or(|v| v == concrete as i64),
        }
    }
}

impl fmt::Display for SymDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymDim::Known(e) => write!(f, "{e}"),
            SymDim::Unknown(_) => write!(f, "?"),
        }
    }
}

/// An assumption the analysis made while propagating symbolic dims. The
/// certifier surfaces these in the [`ShapeSignature`]: a plan is only valid
/// for concrete shapes satisfying its constraints (the contract a bucketed
/// plan cache checks before reusing a plan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// The two expressions must be equal (broadcast of two non-unit dims,
    /// matmul contraction, concat off-dims, …).
    Eq(SymExpr, SymExpr),
    /// `lhs >= rhs` (a constant slice bound on a symbolic dim, …).
    Ge(SymExpr, SymExpr),
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Eq(a, b) => write!(f, "{a} = {b}"),
            Constraint::Ge(a, b) => write!(f, "{a} >= {b}"),
        }
    }
}

/// Classification of one graph-input dimension in a [`ShapeSignature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimClass {
    /// The plan is generic over this dimension: outputs are affine in it and
    /// no pass burned it into a constant.
    Polymorphic,
    /// The analysis (or a pass) pinned the dimension to this constant; the
    /// plan is only valid for inputs with exactly this extent.
    Specialized(usize),
    /// The dimension flows into a data-dependent (⊥) dimension somewhere;
    /// shape-keyed caching cannot reason about it statically.
    DataDependent,
}

impl fmt::Display for DimClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimClass::Polymorphic => write!(f, "poly"),
            DimClass::Specialized(n) => write!(f, "spec({n})"),
            DimClass::DataDependent => write!(f, "data"),
        }
    }
}

/// The shape-polymorphism certificate of a compiled plan.
///
/// Emitted by the `tssa-lint` shape certifier after the full pass pipeline
/// (the analogue of `certify_pure` for shapes), attached to
/// `CompiledProgram` and persisted in plan files. `inputs` has one entry
/// per graph input (`None` for non-tensor inputs or inputs whose rank was
/// not supplied); `outputs` one entry per graph return (`None` for
/// non-tensor returns or unknown ranks).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShapeSignature {
    /// Per-input dim classes.
    pub inputs: Vec<Option<Vec<DimClass>>>,
    /// Symbolic output shapes.
    pub outputs: Vec<Option<Vec<SymDim>>>,
    /// Rendered assumptions (equalities / bounds) the signature relies on.
    pub constraints: Vec<String>,
}

impl ShapeSignature {
    /// Number of input dims classified [`DimClass::Polymorphic`].
    pub fn polymorphic_dims(&self) -> usize {
        self.count(|c| matches!(c, DimClass::Polymorphic))
    }

    /// Number of input dims classified [`DimClass::Specialized`].
    pub fn specialized_dims(&self) -> usize {
        self.count(|c| matches!(c, DimClass::Specialized(_)))
    }

    /// Number of input dims classified [`DimClass::DataDependent`].
    pub fn data_dependent_input_dims(&self) -> usize {
        self.count(|c| matches!(c, DimClass::DataDependent))
    }

    fn count(&self, pred: impl Fn(&DimClass) -> bool) -> usize {
        self.inputs
            .iter()
            .flatten()
            .flat_map(|dims| dims.iter())
            .filter(|c| pred(c))
            .count()
    }

    /// Number of *output* dims that are ⊥ (data-dependent) — the quantity
    /// the CI shape-certification gate requires to be zero, and the count
    /// that decides whether a plan can be bucketed by shape class at all.
    pub fn data_dependent_output_dims(&self) -> usize {
        self.outputs
            .iter()
            .flatten()
            .flat_map(|dims| dims.iter())
            .filter(|d| matches!(d, SymDim::Unknown(_)))
            .count()
    }

    /// Whether input dim `(input, dim)` is polymorphic.
    pub fn is_polymorphic(&self, input: usize, dim: usize) -> bool {
        matches!(
            self.inputs
                .get(input)
                .and_then(|i| i.as_ref())
                .and_then(|dims| dims.get(dim)),
            Some(DimClass::Polymorphic)
        )
    }

    /// Parse one rendered constraint back into `(is_ge, lhs, rhs)`.
    fn parse_constraint(c: &str) -> Option<(bool, SymExpr, SymExpr)> {
        if let Some((a, b)) = c.split_once(" >= ") {
            Some((true, SymExpr::parse(a)?, SymExpr::parse(b)?))
        } else if let Some((a, b)) = c.split_once(" = ") {
            Some((false, SymExpr::parse(a)?, SymExpr::parse(b)?))
        } else {
            None
        }
    }

    /// The variable-to-variable equalities among the constraints
    /// (`inA.dB = inC.dD`): the dims a shape class must keep coupled when
    /// admitting concrete shapes.
    pub fn dim_couplings(&self) -> Vec<(DimVar, DimVar)> {
        self.constraints
            .iter()
            .filter_map(|c| {
                let (is_ge, a, b) = Self::parse_constraint(c)?;
                if is_ge {
                    return None;
                }
                Some((a.as_var()?, b.as_var()?))
            })
            .collect()
    }

    /// Whether concrete input shapes satisfy every constraint the signature
    /// relies on. `shapes` has one entry per graph input (`None` for
    /// non-tensor inputs). Mirroring [`SymDim::admits`], a constraint that
    /// cannot be parsed or evaluated (missing variable) admits vacuously:
    /// `false` is a guarantee of violation, `true` is "could not rule it
    /// out".
    pub fn constraints_admit(&self, shapes: &[Option<Vec<usize>>]) -> bool {
        self.constraints
            .iter()
            .all(|c| Self::constraint_admits(c, shapes))
    }

    /// Whether one rendered constraint holds on concrete input shapes, with
    /// the same vacuous-admission rule as
    /// [`ShapeSignature::constraints_admit`]. Exposed separately so callers
    /// can evaluate constraints individually — e.g. to drop constraints a
    /// known-good example violates (over-approximation artifacts such as
    /// unmodeled broadcasting) while keeping the rest enforced.
    pub fn constraint_admits(constraint: &str, shapes: &[Option<Vec<usize>>]) -> bool {
        let env = |v: DimVar| -> Option<i64> {
            shapes
                .get(v.input as usize)?
                .as_ref()?
                .get(v.dim as usize)
                .map(|&n| n as i64)
        };
        let Some((is_ge, a, b)) = Self::parse_constraint(constraint) else {
            return true;
        };
        match (a.eval(&env), b.eval(&env)) {
            (Some(x), Some(y)) => {
                if is_ge {
                    x >= y
                } else {
                    x == y
                }
            }
            _ => true,
        }
    }

    /// Stable human-readable rendering (one line per input/output), used by
    /// the `tssa-lint shapes` subcommand and pinned by the golden test.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, classes) in self.inputs.iter().enumerate() {
            match classes {
                None => out.push_str(&format!("  in{i}: -\n")),
                Some(dims) => {
                    let body: Vec<String> = dims.iter().map(|c| c.to_string()).collect();
                    out.push_str(&format!("  in{i}: [{}]\n", body.join(", ")));
                }
            }
        }
        for (i, shape) in self.outputs.iter().enumerate() {
            match shape {
                None => out.push_str(&format!("  out{i}: ?\n")),
                Some(dims) => {
                    let body: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
                    out.push_str(&format!("  out{i}: [{}]\n", body.join(", ")));
                }
            }
        }
        if !self.constraints.is_empty() {
            out.push_str(&format!("  assume: {}\n", self.constraints.join("; ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32, d: u32) -> DimVar {
        DimVar { input: i, dim: d }
    }

    #[test]
    fn affine_normalization_cancels_terms() {
        let a = SymExpr::var(v(0, 0)).add(&SymExpr::constant(2));
        let b = a.sub(&SymExpr::var(v(0, 0)));
        assert_eq!(b.as_const(), Some(2));
        let c = a.mul_const(3);
        assert_eq!(c.to_string(), "3*in0.d0+6");
        assert_eq!(c.div_exact(3).unwrap(), a);
        assert!(c.div_exact(2).is_none());
    }

    #[test]
    fn display_is_stable() {
        let e = SymExpr::var(v(1, 2))
            .mul_const(2)
            .add(&SymExpr::var(v(0, 0)))
            .sub(&SymExpr::constant(3));
        assert_eq!(e.to_string(), "in0.d0+2*in1.d2-3");
        assert_eq!(SymExpr::constant(-4).to_string(), "-4");
        assert_eq!(SymDim::unknown().to_string(), "?");
    }

    #[test]
    fn eval_and_admits() {
        let e = SymExpr::var(v(0, 1))
            .mul_const(2)
            .add(&SymExpr::constant(1));
        let env = |var: DimVar| (var == v(0, 1)).then_some(3i64);
        assert_eq!(e.eval(&env), Some(7));
        assert!(SymDim::Known(e.clone()).admits(7, &env));
        assert!(!SymDim::Known(e).admits(8, &env));
        assert!(SymDim::unknown().admits(123, &env));
    }

    #[test]
    fn can_equal_parity_and_sign() {
        // 2v can never be 1 (parity), nor can 2v+4 be 2 (sign + parity ok but
        // negative assignment needed).
        let even = SymExpr::var(v(0, 0)).mul_const(2);
        assert!(!even.can_equal(1));
        assert!(even.can_equal(4));
        let shifted = even.add(&SymExpr::constant(4));
        assert!(!shifted.can_equal(2));
        assert!(shifted.can_equal(6));
        // v - w can always be 0.
        let diff = SymExpr::var(v(0, 0)).sub(&SymExpr::var(v(1, 0)));
        assert!(diff.can_equal(0));
    }

    #[test]
    fn join_widens_with_taint() {
        let a = SymDim::var(0, 0);
        let b = SymDim::var(1, 1);
        assert_eq!(a.join(&a), a);
        match a.join(&b) {
            SymDim::Unknown(t) => {
                assert_eq!(t, BTreeSet::from([v(0, 0), v(1, 1)]));
            }
            other => panic!("expected widening, got {other:?}"),
        }
    }

    #[test]
    fn signature_counts_and_render() {
        let sig = ShapeSignature {
            inputs: vec![
                Some(vec![DimClass::Polymorphic, DimClass::Specialized(16)]),
                None,
                Some(vec![DimClass::DataDependent]),
            ],
            outputs: vec![Some(vec![SymDim::var(0, 0), SymDim::unknown()]), None],
            constraints: vec!["in0.d1 = 16".into()],
        };
        assert_eq!(sig.polymorphic_dims(), 1);
        assert_eq!(sig.specialized_dims(), 1);
        assert_eq!(sig.data_dependent_input_dims(), 1);
        assert_eq!(sig.data_dependent_output_dims(), 1);
        assert!(sig.is_polymorphic(0, 0));
        assert!(!sig.is_polymorphic(0, 1));
        let r = sig.render();
        assert!(r.contains("in0: [poly, spec(16)]"), "{r}");
        assert!(r.contains("in1: -"), "{r}");
        assert!(r.contains("out0: [in0.d0, ?]"), "{r}");
        assert!(r.contains("assume: in0.d1 = 16"), "{r}");
    }

    #[test]
    fn parse_round_trips_display() {
        let exprs = [
            SymExpr::var(v(1, 2))
                .mul_const(2)
                .add(&SymExpr::var(v(0, 0)))
                .sub(&SymExpr::constant(3)),
            SymExpr::constant(-4),
            SymExpr::var(v(0, 2)),
            SymExpr::var(v(3, 1)).mul_const(4),
            SymExpr::var(v(0, 1)).sub(&SymExpr::constant(2)),
            SymExpr::var(v(0, 0)).mul_const(-1),
        ];
        for e in exprs {
            let back = SymExpr::parse(&e.to_string());
            assert_eq!(back.as_ref(), Some(&e), "round-trip of {e}");
        }
        assert_eq!(DimVar::parse("in12.d3"), Some(v(12, 3)));
        assert!(DimVar::parse("x0.d3").is_none());
        assert!(SymExpr::parse("in0.d0 * in1.d1").is_none());
        assert!(SymExpr::parse("").is_none());
    }

    #[test]
    fn constraints_admit_checks_eq_and_ge() {
        let sig = ShapeSignature {
            inputs: vec![Some(vec![DimClass::Polymorphic; 2]); 2],
            outputs: vec![],
            constraints: vec![
                "in0.d1 = in1.d0".into(),
                "in0.d0 >= 2".into(),
                "in1.d1 >= 2*in0.d0".into(),
            ],
        };
        let ok = vec![Some(vec![3, 5]), Some(vec![5, 6])];
        assert!(sig.constraints_admit(&ok));
        // Coupling broken: in0.d1 != in1.d0.
        let uncoupled = vec![Some(vec![3, 5]), Some(vec![4, 6])];
        assert!(!sig.constraints_admit(&uncoupled));
        // Lower bound broken: in0.d0 < 2.
        let small = vec![Some(vec![1, 5]), Some(vec![5, 6])];
        assert!(!sig.constraints_admit(&small));
        // Affine bound broken: in1.d1 < 2*in0.d0.
        let affine = vec![Some(vec![3, 5]), Some(vec![5, 5])];
        assert!(!sig.constraints_admit(&affine));
        // A constraint over a missing input admits vacuously.
        let partial = vec![Some(vec![3, 5]), None];
        assert!(sig.constraints_admit(&partial));
        assert_eq!(sig.dim_couplings(), vec![(v(0, 1), v(1, 0))]);
    }
}
