//! Graphviz (DOT) export for visual inspection of graphs.

use std::fmt::Write as _;

use crate::graph::{BlockId, Graph};

/// Render the graph as a Graphviz `digraph`, one cluster per block.
///
/// Data edges run from defining node (or block parameter) to user; control
/// structure is shown by cluster nesting. Paste the output into any DOT
/// viewer.
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str("digraph ir {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    let top = g.top();
    for (i, &p) in g.block(top).params.iter().enumerate() {
        let _ = writeln!(
            out,
            "  param{} [label=\"{} : {}\", shape=ellipse];",
            i,
            g.value_name(p),
            g.value(p).ty
        );
    }
    emit_block(g, top, 1, &mut out);
    // Data edges.
    for n in g.nodes_recursive(top) {
        for &inp in &g.node(n).inputs {
            match g.def_node(inp) {
                Some(def) => {
                    let _ = writeln!(out, "  n{} -> n{};", def.index(), n.index());
                }
                None => {
                    // A block parameter; link graph inputs explicitly.
                    if let Some(pos) = g.block(top).params.iter().position(|&p| p == inp) {
                        let _ = writeln!(out, "  param{} -> n{};", pos, n.index());
                    }
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

fn emit_block(g: &Graph, block: BlockId, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for &n in &g.block(block).nodes {
        let node = g.node(n);
        let label = node.op.name().replace('"', "'");
        let _ = writeln!(out, "{pad}n{} [label=\"{label}\"];", n.index());
        for (bi, &b) in node.blocks.iter().enumerate() {
            let _ = writeln!(
                out,
                "{pad}subgraph cluster_{}_{bi} {{ label=\"{label} block{bi}\";",
                n.index()
            );
            emit_block(g, b, depth + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// `true` when the graph contains any node of the given operator name —
/// a convenience for tooling that annotates DOT output.
pub fn contains_op(g: &Graph, name: &str) -> bool {
    g.nodes_recursive(g.top())
        .into_iter()
        .any(|n| g.node(n).op.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_graph;

    #[test]
    fn dot_contains_nodes_edges_and_clusters() {
        let g = parse_graph(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %u : Tensor = aten::relu(%c)
                   -> (%t, %u)
               return (%o)",
        )
        .unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph ir {"));
        assert!(dot.contains("prim::Loop"), "{dot}");
        assert!(dot.contains("subgraph cluster_"), "{dot}");
        assert!(dot.contains("aten::relu"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
    }

    #[test]
    fn contains_op_finds_names() {
        let g = parse_graph(
            "graph(%x : Tensor):
               %y : Tensor = aten::sigmoid(%x)
               return (%y)",
        )
        .unwrap();
        assert!(contains_op(&g, "aten::sigmoid"));
        assert!(!contains_op(&g, "aten::matmul"));
    }

    #[test]
    fn graph_inputs_become_ellipse_nodes() {
        let g = parse_graph(
            "graph(%x : Tensor):
               %y : Tensor = aten::relu(%x)
               return (%y)",
        )
        .unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("shape=ellipse"), "{dot}");
        assert!(dot.contains("param0 -> "), "{dot}");
    }
}
