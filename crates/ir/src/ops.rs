//! The operator set.

use crate::types::{ConstValue, ScalarType};

/// The abstract view rule `[·]` of Definition 3.1, shared by aliasing views
/// ([`Op::View`]) and their immutable counterparts ([`Op::Access`] /
/// [`Op::Assign`], Definitions 3.3–3.4).
///
/// Structural parameters (dimension numbers, permutations, target shapes)
/// live in the kind; *data-dependent* parameters (indices, slice bounds) are
/// node inputs so they can reference loop induction variables.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewKind {
    /// `select(dim)`; extra inputs: `(index: Int)`. Removes `dim`.
    Select {
        /// Dimension selected over.
        dim: i64,
    },
    /// `slice(dim)`; extra inputs: `(start: Int, end: Int, step: Int)`.
    SliceView {
        /// Dimension sliced over.
        dim: i64,
    },
    /// `permute(perm)`; no extra inputs.
    Permute {
        /// The dimension permutation.
        perm: Vec<i64>,
    },
    /// `transpose(dim0, dim1)`; no extra inputs.
    Transpose {
        /// First swapped dimension.
        dim0: i64,
        /// Second swapped dimension.
        dim1: i64,
    },
    /// `unsqueeze(dim)`; no extra inputs.
    Unsqueeze {
        /// Where the size-1 dimension is inserted.
        dim: i64,
    },
    /// `squeeze(dim)`; no extra inputs.
    Squeeze {
        /// The size-1 dimension removed.
        dim: i64,
    },
    /// `expand(shape)` (stride-0 broadcast); no extra inputs. `-1` keeps a
    /// dimension's size.
    Expand {
        /// Target shape.
        shape: Vec<i64>,
    },
    /// `view(shape)` (contiguous reinterpretation); no extra inputs. One
    /// entry may be `-1`.
    ViewShape {
        /// Target shape.
        shape: Vec<i64>,
    },
}

impl ViewKind {
    /// Number of *extra* data inputs beyond the base tensor.
    pub fn extra_inputs(&self) -> usize {
        match self {
            ViewKind::Select { .. } => 1,
            ViewKind::SliceView { .. } => 3,
            _ => 0,
        }
    }

    /// Whether in-place writes through this view are well-defined (expand
    /// creates overlapping elements, so mutation through it is rejected —
    /// PyTorch does the same).
    pub fn supports_mutation(&self) -> bool {
        !matches!(self, ViewKind::Expand { .. })
    }

    /// Short name used in printing, e.g. `select`.
    pub fn name(&self) -> &'static str {
        match self {
            ViewKind::Select { .. } => "select",
            ViewKind::SliceView { .. } => "slice",
            ViewKind::Permute { .. } => "permute",
            ViewKind::Transpose { .. } => "transpose",
            ViewKind::Unsqueeze { .. } => "unsqueeze",
            ViewKind::Squeeze { .. } => "squeeze",
            ViewKind::Expand { .. } => "expand",
            ViewKind::ViewShape { .. } => "view",
        }
    }
}

/// In-place mutation operators (`Mutate(v, w)`, Definition 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutateKind {
    /// `copy_(self, src)` — replace data with broadcast `src`.
    Copy,
    /// `fill_(self, value: Float)`.
    Fill,
    /// `add_(self, src)`.
    Add,
    /// `sub_(self, src)`.
    Sub,
    /// `mul_(self, src)`.
    Mul,
    /// `div_(self, src)`.
    Div,
    /// `add_(self, value: Float)`.
    AddScalar,
    /// `mul_(self, value: Float)`.
    MulScalar,
    /// `relu_(self)`.
    Relu,
    /// `sigmoid_(self)`.
    Sigmoid,
    /// `tanh_(self)`.
    Tanh,
    /// `exp_(self)`.
    Exp,
    /// `neg_(self)`.
    Neg,
    /// `clamp_(self, lo: Float, hi: Float)`.
    Clamp,
}

impl MutateKind {
    /// Number of inputs including the mutated tensor itself.
    pub fn arity(self) -> usize {
        match self {
            MutateKind::Copy
            | MutateKind::Add
            | MutateKind::Sub
            | MutateKind::Mul
            | MutateKind::Div
            | MutateKind::Fill
            | MutateKind::AddScalar
            | MutateKind::MulScalar => 2,
            MutateKind::Relu
            | MutateKind::Sigmoid
            | MutateKind::Tanh
            | MutateKind::Exp
            | MutateKind::Neg => 1,
            MutateKind::Clamp => 3,
        }
    }

    /// Printed name, e.g. `copy_`.
    pub fn name(self) -> &'static str {
        match self {
            MutateKind::Copy => "copy_",
            MutateKind::Fill => "fill_",
            MutateKind::Add => "add_",
            MutateKind::Sub => "sub_",
            MutateKind::Mul => "mul_",
            MutateKind::Div => "div_",
            MutateKind::AddScalar => "add_scalar_",
            MutateKind::MulScalar => "mul_scalar_",
            MutateKind::Relu => "relu_",
            MutateKind::Sigmoid => "sigmoid_",
            MutateKind::Tanh => "tanh_",
            MutateKind::Exp => "exp_",
            MutateKind::Neg => "neg_",
            MutateKind::Clamp => "clamp_",
        }
    }

    /// The pure operator computing the mutated view's new value from
    /// `(old_view_value, extra inputs…)` — used by the TensorSSA conversion
    /// (`w` in §4.1.1).
    pub fn functional_op(self) -> Op {
        match self {
            MutateKind::Copy => Op::BroadcastLike,
            MutateKind::Fill => Op::FullLike,
            MutateKind::Add => Op::Add,
            MutateKind::Sub => Op::Sub,
            MutateKind::Mul => Op::Mul,
            MutateKind::Div => Op::Div,
            MutateKind::AddScalar => Op::AddScalar,
            MutateKind::MulScalar => Op::MulScalar,
            MutateKind::Relu => Op::Relu,
            MutateKind::Sigmoid => Op::Sigmoid,
            MutateKind::Tanh => Op::Tanh,
            MutateKind::Exp => Op::Exp,
            MutateKind::Neg => Op::Neg,
            MutateKind::Clamp => Op::Clamp,
        }
    }
}

/// Operator of a [`crate::Node`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    // ----------------------------------------------------------- structure
    /// `prim::Constant` with an embedded payload; no inputs, one output.
    Constant(ConstValue),
    /// `prim::ListConstruct`: n inputs, one list output (container alias
    /// dependency).
    ListConstruct,
    /// `prim::ListUnpack`: one list input, n outputs.
    ListUnpack,
    /// `prim::If`: input `(cond: Bool)`, two blocks (then/else) whose returns
    /// match the node outputs.
    If,
    /// `prim::Loop` with TorchScript conventions: inputs
    /// `(trip_count: Int, init_cond: Bool, carried…)`; one block with params
    /// `(iter: Int, carried…)` and returns `(cond: Bool, carried…)`; node
    /// outputs are the final carried values.
    Loop,

    // ---------------------------------------------------------- scalar ops
    /// Integer addition.
    IntAdd,
    /// Integer subtraction.
    IntSub,
    /// Integer multiplication.
    IntMul,
    /// Integer (truncating) division.
    IntDiv,
    /// Integer remainder.
    IntMod,
    /// Integer negation.
    IntNeg,
    /// Integer `<`.
    IntLt,
    /// Integer `<=`.
    IntLe,
    /// Integer `>`.
    IntGt,
    /// Integer `>=`.
    IntGe,
    /// Integer `==`.
    IntEq,
    /// Integer `!=`.
    IntNe,
    /// Boolean and.
    BoolAnd,
    /// Boolean or.
    BoolOr,
    /// Boolean not.
    BoolNot,
    /// Float addition.
    FloatAdd,
    /// Float subtraction.
    FloatSub,
    /// Float multiplication.
    FloatMul,
    /// Float division.
    FloatDiv,
    /// Float negation.
    FloatNeg,
    /// Float `<`.
    FloatLt,
    /// Float `>`.
    FloatGt,
    /// Int → Float conversion.
    IntToFloat,

    // ------------------------------------------------------ tensor queries
    /// `aten::size(t, dim)` → Int.
    Size {
        /// Queried dimension.
        dim: i64,
    },
    /// `aten::item` on a one-element tensor → Float.
    ItemFloat,
    /// `aten::item` on a one-element tensor → Int.
    ItemInt,
    /// `aten::item` on a one-element bool tensor → Bool.
    ItemBool,

    // ----------------------------------------------------- tensor creation
    /// `aten::zeros(shape)`.
    Zeros {
        /// Static shape.
        shape: Vec<i64>,
    },
    /// `aten::ones(shape)`.
    Ones {
        /// Static shape.
        shape: Vec<i64>,
    },
    /// `aten::full(shape, value: Float input)`.
    Full {
        /// Static shape.
        shape: Vec<i64>,
    },
    /// `aten::arange(n: Int input)` → 1-D f32.
    Arange,
    /// `aten::zeros_like(t)`.
    ZerosLike,
    /// `aten::ones_like(t)`.
    OnesLike,
    /// `aten::full_like(t, value: Float input)`.
    FullLike,
    /// Broadcast `src` to the shape of `like`: inputs `(src, like)`.
    BroadcastLike,

    // ------------------------------------------------------ aliasing views
    /// A view operator (aliases its base tensor).
    View(ViewKind),

    // ---------------------------------------------------------- mutations
    /// An in-place mutation (tensor-level side effect). Output aliases the
    /// mutated input, mirroring `aten::copy_` returning `self`.
    Mutate(MutateKind),

    // ----------------------------------------------- functional elementwise
    /// Elementwise `+` with broadcasting.
    Add,
    /// Elementwise `-` with broadcasting.
    Sub,
    /// Elementwise `*` with broadcasting.
    Mul,
    /// Elementwise `/` with broadcasting.
    Div,
    /// Elementwise maximum.
    Maximum,
    /// Elementwise minimum.
    Minimum,
    /// Elementwise power.
    Pow,
    /// Tensor + scalar float input.
    AddScalar,
    /// Tensor − scalar float input.
    SubScalar,
    /// Tensor × scalar float input.
    MulScalar,
    /// Tensor ÷ scalar float input.
    DivScalar,
    /// Tensor ^ scalar float input.
    PowScalar,
    /// Elementwise `>` → bool tensor.
    Gt,
    /// Elementwise `<` → bool tensor.
    Lt,
    /// Elementwise `>=` → bool tensor.
    Ge,
    /// Elementwise `<=` → bool tensor.
    Le,
    /// Elementwise `==` → bool tensor.
    EqElem,
    /// Elementwise logical and.
    LogicalAnd,
    /// Elementwise logical or.
    LogicalOr,
    /// Elementwise logical not.
    LogicalNot,
    /// Elementwise negation.
    Neg,
    /// Elementwise ReLU.
    Relu,
    /// Elementwise sigmoid.
    Sigmoid,
    /// Elementwise tanh.
    Tanh,
    /// Elementwise exp.
    Exp,
    /// Elementwise natural log.
    Log,
    /// Elementwise square root.
    Sqrt,
    /// Elementwise absolute value.
    Abs,
    /// Elementwise clamp; inputs `(t, lo: Float, hi: Float)`.
    Clamp,

    // ------------------------------------------------ reductions & algebra
    /// Softmax along a dimension.
    Softmax {
        /// Reduced dimension.
        dim: i64,
    },
    /// Sum along a dimension.
    SumDim {
        /// Reduced dimension.
        dim: i64,
        /// Keep the reduced dimension as size 1.
        keepdim: bool,
    },
    /// Mean along a dimension.
    MeanDim {
        /// Reduced dimension.
        dim: i64,
        /// Keep the reduced dimension as size 1.
        keepdim: bool,
    },
    /// Max along a dimension (values).
    MaxDim {
        /// Reduced dimension.
        dim: i64,
        /// Keep the reduced dimension as size 1.
        keepdim: bool,
    },
    /// Min along a dimension (values).
    MinDim {
        /// Reduced dimension.
        dim: i64,
        /// Keep the reduced dimension as size 1.
        keepdim: bool,
    },
    /// Argmax along a dimension → i64 tensor.
    ArgmaxDim {
        /// Reduced dimension.
        dim: i64,
        /// Keep the reduced dimension as size 1.
        keepdim: bool,
    },
    /// Cumulative sum along a dimension.
    Cumsum {
        /// Scanned dimension.
        dim: i64,
    },
    /// 2-D matrix multiply.
    Matmul,
    /// Batched matrix multiply.
    Bmm,
    /// Concatenate varargs tensors along `dim`.
    Concat {
        /// Concatenated dimension.
        dim: i64,
    },
    /// Stack varargs tensors along a new `dim`.
    Stack {
        /// Inserted dimension.
        dim: i64,
    },
    /// `where(cond, a, b)`.
    WhereSelect,
    /// `gather(t, index)` along `dim`.
    Gather {
        /// Indexed dimension.
        dim: i64,
    },
    /// `index_select(t, index)` along `dim`.
    IndexSelect {
        /// Indexed dimension.
        dim: i64,
    },
    /// Element type cast (always copies).
    Cast {
        /// Target element type.
        dtype: ScalarType,
    },
    /// `aten::clone` — functional copy breaking aliasing.
    CloneOp,
    /// `aten::contiguous` — copy to dense layout (modelled as always
    /// copying, hence functional).
    Contiguous,
    /// Functional reshape (modelled as always copying, hence non-aliasing);
    /// one entry of `shape` may be `-1`.
    Reshape {
        /// Target shape.
        shape: Vec<i64>,
    },

    // --------------------------------------------------- TensorSSA (§3.2)
    /// `immut::access(base, rule)` — the immutable version of a view
    /// (Definition 3.3): copies the viewed region into fresh storage.
    Access(ViewKind),
    /// `immut::assign(base, src, rule)` — the immutable version of a
    /// mutation (Definition 3.4): a fresh tensor equal to `base` with the
    /// region addressed by the rule replaced by (broadcast) `src`.
    Assign(ViewKind),
    /// `tssa::update(new, old)` — a zero-semantics annotation guiding block
    /// propagation and renaming (Definition 3.5). Removed before execution.
    Update,

    // -------------------------------------------------------------- fusion
    /// A fused kernel: carries one block whose params map 1:1 to the node
    /// inputs and whose returns map 1:1 to the node outputs. Executed as a
    /// single kernel launch by the backend.
    FusionGroup,
    /// A horizontally-parallelized loop (§4.2.2): inputs
    /// `(trip_count: Int, carried…)`; one block with params
    /// `(iter: Int, carried…)`; all iterations are independent and execute
    /// as one batched kernel.
    ParallelMap {
        /// Dimension of the carried tensor written by each iteration.
        dim: i64,
    },
}

impl Op {
    /// Whether this node produces a tensor aliasing one of its inputs.
    pub fn is_view(&self) -> bool {
        matches!(self, Op::View(_))
    }

    /// Whether this node mutates tensor storage in place.
    pub fn is_mutation(&self) -> bool {
        matches!(self, Op::Mutate(_))
    }

    /// Whether this node carries nested blocks.
    pub fn has_blocks(&self) -> bool {
        matches!(
            self,
            Op::If | Op::Loop | Op::FusionGroup | Op::ParallelMap { .. }
        )
    }

    /// Whether the node is free of side effects (safe for DCE/CSE when its
    /// outputs are unused). Views are pure *as values*; their aliasing is
    /// accounted for separately by alias analysis.
    pub fn is_pure(&self) -> bool {
        !matches!(
            self,
            Op::Mutate(_) | Op::If | Op::Loop | Op::FusionGroup | Op::ParallelMap { .. }
        )
    }

    /// Whether this operator is elementwise over its tensor operands —
    /// the vertical-fusion eligibility test (§4.2.1).
    pub fn is_elementwise(&self) -> bool {
        matches!(
            self,
            Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Div
                | Op::Maximum
                | Op::Minimum
                | Op::Pow
                | Op::AddScalar
                | Op::SubScalar
                | Op::MulScalar
                | Op::DivScalar
                | Op::PowScalar
                | Op::Gt
                | Op::Lt
                | Op::Ge
                | Op::Le
                | Op::EqElem
                | Op::LogicalAnd
                | Op::LogicalOr
                | Op::LogicalNot
                | Op::Neg
                | Op::Relu
                | Op::Sigmoid
                | Op::Tanh
                | Op::Exp
                | Op::Log
                | Op::Sqrt
                | Op::Abs
                | Op::Clamp
                | Op::WhereSelect
                | Op::Cast { .. }
        )
    }

    /// Display name in the TorchScript-flavoured namespace used by the
    /// printer, e.g. `aten::add`, `prim::Loop`, `immut::assign`.
    pub fn name(&self) -> String {
        match self {
            Op::Constant(_) => "prim::Constant".into(),
            Op::ListConstruct => "prim::ListConstruct".into(),
            Op::ListUnpack => "prim::ListUnpack".into(),
            Op::If => "prim::If".into(),
            Op::Loop => "prim::Loop".into(),
            Op::IntAdd => "aten::int_add".into(),
            Op::IntSub => "aten::int_sub".into(),
            Op::IntMul => "aten::int_mul".into(),
            Op::IntDiv => "aten::int_div".into(),
            Op::IntMod => "aten::int_mod".into(),
            Op::IntNeg => "aten::int_neg".into(),
            Op::IntLt => "aten::int_lt".into(),
            Op::IntLe => "aten::int_le".into(),
            Op::IntGt => "aten::int_gt".into(),
            Op::IntGe => "aten::int_ge".into(),
            Op::IntEq => "aten::int_eq".into(),
            Op::IntNe => "aten::int_ne".into(),
            Op::BoolAnd => "aten::bool_and".into(),
            Op::BoolOr => "aten::bool_or".into(),
            Op::BoolNot => "aten::bool_not".into(),
            Op::FloatAdd => "aten::float_add".into(),
            Op::FloatSub => "aten::float_sub".into(),
            Op::FloatMul => "aten::float_mul".into(),
            Op::FloatDiv => "aten::float_div".into(),
            Op::FloatNeg => "aten::float_neg".into(),
            Op::FloatLt => "aten::float_lt".into(),
            Op::FloatGt => "aten::float_gt".into(),
            Op::IntToFloat => "aten::int_to_float".into(),
            Op::Size { .. } => "aten::size".into(),
            Op::ItemFloat => "aten::item_float".into(),
            Op::ItemInt => "aten::item_int".into(),
            Op::ItemBool => "aten::item_bool".into(),
            Op::Zeros { .. } => "aten::zeros".into(),
            Op::Ones { .. } => "aten::ones".into(),
            Op::Full { .. } => "aten::full".into(),
            Op::Arange => "aten::arange".into(),
            Op::ZerosLike => "aten::zeros_like".into(),
            Op::OnesLike => "aten::ones_like".into(),
            Op::FullLike => "aten::full_like".into(),
            Op::BroadcastLike => "aten::broadcast_like".into(),
            Op::View(k) => format!("aten::{}", k.name()),
            Op::Mutate(k) => format!("aten::{}", k.name()),
            Op::Add => "aten::add".into(),
            Op::Sub => "aten::sub".into(),
            Op::Mul => "aten::mul".into(),
            Op::Div => "aten::div".into(),
            Op::Maximum => "aten::maximum".into(),
            Op::Minimum => "aten::minimum".into(),
            Op::Pow => "aten::pow".into(),
            Op::AddScalar => "aten::add_scalar".into(),
            Op::SubScalar => "aten::sub_scalar".into(),
            Op::MulScalar => "aten::mul_scalar".into(),
            Op::DivScalar => "aten::div_scalar".into(),
            Op::PowScalar => "aten::pow_scalar".into(),
            Op::Gt => "aten::gt".into(),
            Op::Lt => "aten::lt".into(),
            Op::Ge => "aten::ge".into(),
            Op::Le => "aten::le".into(),
            Op::EqElem => "aten::eq".into(),
            Op::LogicalAnd => "aten::logical_and".into(),
            Op::LogicalOr => "aten::logical_or".into(),
            Op::LogicalNot => "aten::logical_not".into(),
            Op::Neg => "aten::neg".into(),
            Op::Relu => "aten::relu".into(),
            Op::Sigmoid => "aten::sigmoid".into(),
            Op::Tanh => "aten::tanh".into(),
            Op::Exp => "aten::exp".into(),
            Op::Log => "aten::log".into(),
            Op::Sqrt => "aten::sqrt".into(),
            Op::Abs => "aten::abs".into(),
            Op::Clamp => "aten::clamp".into(),
            Op::Softmax { .. } => "aten::softmax".into(),
            Op::SumDim { .. } => "aten::sum".into(),
            Op::MeanDim { .. } => "aten::mean".into(),
            Op::MaxDim { .. } => "aten::max".into(),
            Op::MinDim { .. } => "aten::min".into(),
            Op::ArgmaxDim { .. } => "aten::argmax".into(),
            Op::Cumsum { .. } => "aten::cumsum".into(),
            Op::Matmul => "aten::matmul".into(),
            Op::Bmm => "aten::bmm".into(),
            Op::Concat { .. } => "aten::cat".into(),
            Op::Stack { .. } => "aten::stack".into(),
            Op::WhereSelect => "aten::where".into(),
            Op::Gather { .. } => "aten::gather".into(),
            Op::IndexSelect { .. } => "aten::index_select".into(),
            Op::Cast { .. } => "aten::to".into(),
            Op::CloneOp => "aten::clone".into(),
            Op::Contiguous => "aten::contiguous".into(),
            Op::Reshape { .. } => "aten::reshape".into(),
            Op::Access(k) => format!("immut::{}", k.name()),
            Op::Assign(k) => format!("immut::assign_{}", k.name()),
            Op::Update => "tssa::update".into(),
            Op::FusionGroup => "prim::FusionGroup".into(),
            Op::ParallelMap { .. } => "prim::ParallelMap".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Op::View(ViewKind::Select { dim: 0 }).is_view());
        assert!(Op::Mutate(MutateKind::Copy).is_mutation());
        assert!(!Op::Mutate(MutateKind::Copy).is_pure());
        assert!(Op::Add.is_pure());
        assert!(Op::Add.is_elementwise());
        assert!(!Op::Matmul.is_elementwise());
        assert!(Op::If.has_blocks());
        assert!(Op::Loop.has_blocks());
        assert!(!Op::Relu.has_blocks());
    }

    #[test]
    fn functional_counterparts() {
        assert_eq!(MutateKind::Add.functional_op(), Op::Add);
        assert_eq!(MutateKind::Copy.functional_op(), Op::BroadcastLike);
        assert_eq!(MutateKind::Fill.functional_op(), Op::FullLike);
        assert_eq!(MutateKind::Sigmoid.functional_op(), Op::Sigmoid);
    }

    #[test]
    fn arities() {
        assert_eq!(MutateKind::Copy.arity(), 2);
        assert_eq!(MutateKind::Relu.arity(), 1);
        assert_eq!(MutateKind::Clamp.arity(), 3);
        assert_eq!(ViewKind::Select { dim: 0 }.extra_inputs(), 1);
        assert_eq!(ViewKind::SliceView { dim: 0 }.extra_inputs(), 3);
        assert_eq!(ViewKind::Transpose { dim0: 0, dim1: 1 }.extra_inputs(), 0);
    }

    #[test]
    fn expand_rejects_mutation() {
        assert!(!ViewKind::Expand { shape: vec![2] }.supports_mutation());
        assert!(ViewKind::Select { dim: 0 }.supports_mutation());
    }

    #[test]
    fn names_are_namespaced() {
        assert_eq!(Op::View(ViewKind::Select { dim: 0 }).name(), "aten::select");
        assert_eq!(Op::Mutate(MutateKind::Copy).name(), "aten::copy_");
        assert_eq!(
            Op::Access(ViewKind::Select { dim: 0 }).name(),
            "immut::select"
        );
        assert_eq!(
            Op::Assign(ViewKind::Select { dim: 0 }).name(),
            "immut::assign_select"
        );
        assert_eq!(Op::Update.name(), "tssa::update");
        assert_eq!(Op::Loop.name(), "prim::Loop");
    }
}
