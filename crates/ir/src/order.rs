//! Program order and dominance for structured control flow.
//!
//! Because control flow is structured (blocks nest inside `prim::If` /
//! `prim::Loop` nodes, no arbitrary jumps), dominance reduces to lexical
//! facts: node `A` dominates node `B` iff `A`'s block is an ancestor of (or
//! the same as) `B`'s block and `A` precedes `B`'s enclosing node chain
//! within that block.

use crate::graph::{BlockId, Graph, NodeId, ValueDef, ValueId};

impl Graph {
    /// Whether `ancestor` is `block` or one of its transitive parents.
    pub fn block_is_ancestor(&self, ancestor: BlockId, block: BlockId) -> bool {
        let mut cur = block;
        loop {
            if cur == ancestor {
                return true;
            }
            match self.block(cur).owner {
                Some(node) => cur = self.node(node).owner,
                None => return false,
            }
        }
    }

    /// The chain of blocks from the top block down to `block` (inclusive).
    pub fn block_ancestry(&self, block: BlockId) -> Vec<BlockId> {
        let mut chain = vec![block];
        let mut cur = block;
        while let Some(node) = self.block(cur).owner {
            cur = self.node(node).owner;
            chain.push(cur);
        }
        chain.reverse();
        chain
    }

    /// The node in `ancestor_block` whose nested blocks (transitively)
    /// contain `node`; `node` itself if it lives directly in the block.
    ///
    /// Returns `None` when `node` is not inside `ancestor_block` at all.
    pub fn enclosing_node_in(&self, ancestor_block: BlockId, node: NodeId) -> Option<NodeId> {
        let mut cur = node;
        loop {
            let b = self.node(cur).owner;
            if b == ancestor_block {
                return Some(cur);
            }
            match self.block(b).owner {
                Some(owner) => cur = owner,
                None => return None,
            }
        }
    }

    /// Strict dominance: every execution reaching `b` has executed `a` first
    /// and `a`'s outputs are in scope at `b`.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let block_a = self.node(a).owner;
        let Some(anchor) = self.enclosing_node_in(block_a, b) else {
            return false;
        };
        if anchor == a {
            // b is nested inside a; a has not finished executing.
            return false;
        }
        self.node_index(a) < self.node_index(anchor)
    }

    /// Whether `value` is in scope at `user` (defined by a dominating node or
    /// a parameter of an enclosing block).
    pub fn value_available_at(&self, value: ValueId, user: NodeId) -> bool {
        match self.value(value).def {
            ValueDef::NodeOut { node, .. } => self.dominates(node, user),
            ValueDef::BlockParam { block, .. } => {
                self.block_is_ancestor(block, self.node(user).owner)
            }
        }
    }

    /// Lexicographic program position of a node: the path of block-local
    /// indices from the top block. Ordering positions orders nodes in
    /// pre-order program order.
    pub fn position(&self, node: NodeId) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = node;
        loop {
            path.push(self.node_index(cur));
            let b = self.node(cur).owner;
            match self.block(b).owner {
                Some(owner) => cur = owner,
                None => break,
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use crate::types::Type;

    /// graph: n0; if { n_then } ; n1
    fn fixture() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let n0 = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let c = g.constant_bool(true);
        let iff = g.append(g.top(), Op::If, &[c], &[Type::Tensor]);
        let then_b = g.add_node_block(iff);
        let else_b = g.add_node_block(iff);
        let v0 = g.out(n0);
        let nt = g.append(then_b, Op::Sigmoid, &[v0], &[Type::Tensor]);
        let ntv = g.out(nt);
        g.set_returns(then_b, &[ntv]);
        g.set_returns(else_b, &[v0]);
        let iv = g.out(iff);
        let n1 = g.append(g.top(), Op::Tanh, &[iv], &[Type::Tensor]);
        (g, n0, iff, nt, n1)
    }

    #[test]
    fn same_block_dominance_is_order() {
        let (g, n0, iff, _nt, n1) = fixture();
        assert!(g.dominates(n0, iff));
        assert!(g.dominates(iff, n1));
        assert!(!g.dominates(n1, n0));
        assert!(!g.dominates(n0, n0));
    }

    #[test]
    fn outer_dominates_inner_but_not_vice_versa() {
        let (g, n0, iff, nt, n1) = fixture();
        assert!(g.dominates(n0, nt));
        assert!(!g.dominates(nt, n1)); // inner does not dominate outer
        assert!(!g.dominates(iff, nt)); // owner doesn't dominate its body
    }

    #[test]
    fn ancestry_and_enclosing() {
        let (g, _n0, iff, nt, _n1) = fixture();
        let then_b = g.node(iff).blocks[0];
        assert!(g.block_is_ancestor(g.top(), then_b));
        assert!(!g.block_is_ancestor(then_b, g.top()));
        assert_eq!(g.enclosing_node_in(g.top(), nt), Some(iff));
        assert_eq!(g.enclosing_node_in(then_b, nt), Some(nt));
        assert_eq!(g.block_ancestry(then_b), vec![g.top(), then_b]);
    }

    #[test]
    fn availability_includes_block_params() {
        let mut g = Graph::new();
        let n = g.add_input("n", Type::Int);
        let t0 = g.constant_bool(true);
        let x = g.add_input("x", Type::Tensor);
        let lp = g.append(g.top(), Op::Loop, &[n, t0, x], &[Type::Tensor]);
        let body = g.add_node_block(lp);
        let i = g.add_block_param(body, Type::Int);
        let carried = g.add_block_param(body, Type::Tensor);
        let inner = g.append(body, Op::Relu, &[carried], &[Type::Tensor]);
        let iv = g.out(inner);
        let cond = g.constant_in(body, crate::types::ConstValue::Bool(true));
        g.set_returns(body, &[cond, iv]);
        assert!(g.value_available_at(carried, inner));
        assert!(g.value_available_at(i, inner));
        assert!(g.value_available_at(x, inner));
        // loop output is not available inside the body
        let lo = g.out(lp);
        assert!(!g.value_available_at(lo, inner));
    }

    #[test]
    fn positions_order_preorder() {
        let (g, n0, iff, nt, n1) = fixture();
        assert!(g.position(n0) < g.position(iff));
        assert!(g.position(iff) < g.position(nt));
        assert!(g.position(nt) < g.position(n1));
    }
}
