//! Block-structured graph-level IR for imperative tensor programs.
//!
//! This crate mirrors the shape of TorchScript's graph IR, which the
//! TensorSSA paper (DAC'24) builds on: a [`Graph`] owns a tree of
//! [`Block`]s; each block holds an ordered list of [`Node`]s plus block
//! *parameters* and *returns*; control flow is expressed by `prim::If` and
//! `prim::Loop` nodes carrying nested blocks (the "functional SSA" form where
//! dependent values are passed as block arguments — §2.2 of the paper).
//!
//! The operator set ([`Op`]) covers four families:
//!
//! * **aliasing view operators** ([`Op::View`]) — `select`, `slice`, … which
//!   produce tensors sharing storage with their base;
//! * **in-place mutation operators** ([`Op::Mutate`]) — `copy_`, `add_`, …
//!   with tensor-level side effects;
//! * **pure functional operators** — elementwise math, reductions, matmul…;
//! * **TensorSSA operators** — `immut::access`, `immut::assign` and
//!   `tssa::update` (§3.2), the immutable replacements installed by the
//!   conversion pass in `tssa-core`.
//!
//! # Examples
//!
//! Build `y = relu(x + 1)` and print it:
//!
//! ```
//! use tssa_ir::{Graph, Op, Type};
//!
//! let mut g = Graph::new();
//! let x = g.add_input("x", Type::Tensor);
//! let one = g.constant_float(1.0);
//! let add = g.append(g.top(), Op::AddScalar, &[x, one], &[Type::Tensor]);
//! let sum = g.node(add).outputs[0];
//! let relu = g.append(g.top(), Op::Relu, &[sum], &[Type::Tensor]);
//! let y = g.node(relu).outputs[0];
//! g.set_returns(g.top(), &[y]);
//! assert!(g.verify().is_ok());
//! assert!(g.to_string().contains("aten::relu"));
//! ```

mod dot;
mod graph;
mod ops;
mod order;
mod parser;
mod printer;
mod shapes;
mod symdim;
mod types;
mod verify;

pub use dot::{contains_op, to_dot};
pub use graph::{Block, BlockId, Graph, Node, NodeId, SrcSpan, Use, Value, ValueDef, ValueId};
pub use ops::{MutateKind, Op, ViewKind};
pub use parser::{parse_graph, ParseIrError};
pub use shapes::{infer_shapes, infer_shapes_seeded, infer_shapes_symbolic, Shape, ShapeInfo};
pub use symdim::{Constraint, DimClass, DimVar, ShapeSignature, SymDim, SymExpr};
pub use types::{ConstValue, ScalarType, Type};
pub use verify::{VerifyError, VerifyErrorKind};
