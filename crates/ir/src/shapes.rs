//! Static shape inference over the graph IR.
//!
//! Given (possibly partial) shapes for the graph inputs, propagates
//! dimension information through the program: broadcast rules for
//! elementwise operators, view/access rules for layout operators,
//! fixed-point iteration for loop-carried tensors, and branch merging for
//! `prim::If`. Data-dependent quantities (a `slice` bound coming from a
//! runtime int, for example) degrade gracefully to unknown dimensions.
//!
//! The analysis is used by tests and tooling (shape sanity checks before
//! execution); the executor itself computes exact shapes dynamically.

use std::collections::HashMap;

use crate::graph::{BlockId, Graph, ValueId};
use crate::ops::{Op, ViewKind};
use crate::types::{ConstValue, Type};

/// A tensor shape where each dimension is either known or data-dependent.
pub type Shape = Vec<Option<usize>>;

/// The result of [`infer_shapes`]: per-value shapes (tensor values only).
#[derive(Debug, Clone, Default)]
pub struct ShapeInfo {
    shapes: HashMap<ValueId, Shape>,
}

impl ShapeInfo {
    /// Shape of `value`, if it is a tensor whose rank could be determined.
    pub fn shape(&self, value: ValueId) -> Option<&Shape> {
        self.shapes.get(&value)
    }

    /// Whether every dimension of `value` is statically known.
    pub fn fully_known(&self, value: ValueId) -> bool {
        self.shapes
            .get(&value)
            .map(|s| s.iter().all(Option::is_some))
            .unwrap_or(false)
    }

    fn set(&mut self, value: ValueId, shape: Shape) {
        self.shapes.insert(value, shape);
    }

    fn get(&self, value: ValueId) -> Option<Shape> {
        self.shapes.get(&value).cloned()
    }
}

fn const_int(g: &Graph, v: ValueId) -> Option<i64> {
    match &g.node(g.def_node(v)?).op {
        Op::Constant(ConstValue::Int(x)) => Some(*x),
        _ => None,
    }
}

/// Broadcast two partially-known shapes; `None` dims stay unknown, and a
/// known-vs-unknown pair resolves to unknown unless the known dim is 1
/// (where the other side wins only if known).
fn broadcast(a: &Shape, b: &Shape) -> Option<Shape> {
    let rank = a.len().max(b.len());
    let mut out = vec![None; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            Some(1)
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            Some(1)
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = match (da, db) {
            (Some(1), d) => d,
            (d, Some(1)) => d,
            (Some(x), Some(y)) if x == y => Some(x),
            (Some(_), Some(_)) => return None, // statically incompatible
            _ => None,
        };
    }
    Some(out)
}

/// Merge shapes coming from two branches: dims agreeing stay, others unknown.
fn merge(a: &Shape, b: &Shape) -> Shape {
    if a.len() != b.len() {
        // Rank disagreement: fall back to the shorter-rank unknown form.
        return vec![None; a.len().min(b.len())];
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| if x == y { *x } else { None })
        .collect()
}

fn norm_dim(dim: i64, rank: usize) -> Option<usize> {
    let r = rank as i64;
    let d = if dim < 0 { dim + r } else { dim };
    (0..r.max(1)).contains(&d).then_some(d as usize)
}

fn view_shape(g: &Graph, kind: &ViewKind, base: &Shape, extras: &[ValueId]) -> Option<Shape> {
    match kind {
        ViewKind::Select { dim } => {
            let d = norm_dim(*dim, base.len())?;
            let mut s = base.clone();
            s.remove(d);
            Some(s)
        }
        ViewKind::SliceView { dim } => {
            let d = norm_dim(*dim, base.len())?;
            let mut s = base.clone();
            s[d] = (|| {
                let size = base[d]? as i64;
                let clamp = |v: i64| {
                    let v = if v < 0 { v + size } else { v };
                    v.clamp(0, size)
                };
                let start = clamp(const_int(g, extras[0])?);
                let end = clamp(const_int(g, extras[1])?).max(start);
                let step = const_int(g, extras[2])?;
                if step <= 0 {
                    return None;
                }
                Some(((end - start + step - 1) / step) as usize)
            })();
            Some(s)
        }
        ViewKind::Permute { perm } => {
            if perm.len() != base.len() {
                return None;
            }
            perm.iter()
                .map(|&p| base.get(p as usize).copied())
                .collect::<Option<Shape>>()
                .map(Some)?
        }
        ViewKind::Transpose { dim0, dim1 } => {
            let d0 = norm_dim(*dim0, base.len())?;
            let d1 = norm_dim(*dim1, base.len())?;
            let mut s = base.clone();
            s.swap(d0, d1);
            Some(s)
        }
        ViewKind::Unsqueeze { dim } => {
            let d = norm_dim(*dim, base.len() + 1)?;
            let mut s = base.clone();
            s.insert(d, Some(1));
            Some(s)
        }
        ViewKind::Squeeze { dim } => {
            let d = norm_dim(*dim, base.len())?;
            let mut s = base.clone();
            s.remove(d);
            Some(s)
        }
        ViewKind::Expand { shape } => {
            let pad = shape.len().checked_sub(base.len())?;
            Some(
                shape
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| {
                        if d == -1 {
                            if i >= pad {
                                base[i - pad]
                            } else {
                                None
                            }
                        } else {
                            Some(d as usize)
                        }
                    })
                    .collect(),
            )
        }
        ViewKind::ViewShape { shape } => {
            let total: Option<usize> = base.iter().copied().product::<Option<usize>>();
            Some(resolve_reshape(shape, total))
        }
    }
}

fn resolve_reshape(shape: &[i64], total: Option<usize>) -> Shape {
    let known: usize = shape
        .iter()
        .filter(|&&d| d >= 0)
        .map(|&d| d as usize)
        .product();
    shape
        .iter()
        .map(|&d| {
            if d == -1 {
                total.and_then(|t| (known > 0 && t % known == 0).then(|| t / known))
            } else {
                Some(d as usize)
            }
        })
        .collect()
}

/// Infer shapes for all tensor values of `g`, given shapes for its inputs
/// (one entry per graph input; `None` for non-tensor or unknown inputs).
pub fn infer_shapes(g: &Graph, input_shapes: &[Option<Vec<usize>>]) -> ShapeInfo {
    let mut info = ShapeInfo::default();
    let params = g.block(g.top()).params.clone();
    for (i, p) in params.iter().enumerate() {
        if let Some(Some(s)) = input_shapes.get(i) {
            info.set(*p, s.iter().map(|&d| Some(d)).collect());
        }
    }
    let top = g.top();
    infer_block(g, top, &mut info);
    info
}

fn unknown_like(info: &ShapeInfo, v: ValueId) -> Shape {
    info.get(v).map(|s| vec![None; s.len()]).unwrap_or_default()
}

#[allow(clippy::too_many_lines)]
fn infer_block(g: &Graph, block: BlockId, info: &mut ShapeInfo) {
    for &n in &g.block(block).nodes {
        let node = g.node(n);
        let in_shape = |info: &ShapeInfo, i: usize| -> Option<Shape> {
            node.inputs.get(i).and_then(|&v| info.get(v))
        };
        match &node.op {
            Op::If => {
                let (then_b, else_b) = (node.blocks[0], node.blocks[1]);
                infer_block(g, then_b, info);
                infer_block(g, else_b, info);
                for (i, &out) in node.outputs.iter().enumerate() {
                    if g.value(out).ty != Type::Tensor {
                        continue;
                    }
                    let t = info.get(g.block(then_b).returns[i]);
                    let e = info.get(g.block(else_b).returns[i]);
                    if let (Some(t), Some(e)) = (t, e) {
                        info.set(out, merge(&t, &e));
                    }
                }
            }
            Op::Loop => {
                let body = node.blocks[0];
                let params = &g.block(body).params;
                // Seed carried params with the initial shapes, run the body,
                // and merge with what it returns (two rounds reach the fixed
                // point for this lattice).
                for (k, &p) in params.iter().enumerate().skip(1) {
                    if let Some(s) = info.get(node.inputs[1 + k]) {
                        info.set(p, s);
                    }
                }
                for _ in 0..2 {
                    infer_block(g, body, info);
                    for (k, &p) in params.iter().enumerate().skip(1) {
                        let ret = g.block(body).returns[k];
                        if let (Some(a), Some(b)) = (info.get(p), info.get(ret)) {
                            info.set(p, merge(&a, &b));
                        }
                    }
                }
                for (k, &out) in node.outputs.iter().enumerate() {
                    if let Some(s) = info.get(g.block(body).returns[1 + k]) {
                        info.set(out, s);
                    }
                }
            }
            Op::FusionGroup => {
                let body = node.blocks[0];
                for (k, &p) in g.block(body).params.iter().enumerate() {
                    if let Some(s) = info.get(node.inputs[k]) {
                        info.set(p, s);
                    }
                }
                infer_block(g, body, info);
                for (k, &out) in node.outputs.iter().enumerate() {
                    if let Some(s) = info.get(g.block(body).returns[k]) {
                        info.set(out, s);
                    }
                }
            }
            Op::ParallelMap { .. } => {
                infer_block(g, node.blocks[0], info);
                if let Some(s) = in_shape(info, 1) {
                    info.set(node.outputs[0], s);
                }
            }
            Op::View(kind) | Op::Access(kind) => {
                if let Some(base) = in_shape(info, 0) {
                    if let Some(s) = view_shape(g, kind, &base, &node.inputs[1..]) {
                        info.set(node.outputs[0], s);
                    } else {
                        info.set(node.outputs[0], unknown_like(info, node.inputs[0]));
                    }
                }
            }
            Op::Assign(_) | Op::Mutate(_) | Op::CloneOp | Op::Contiguous => {
                if let Some(s) = in_shape(info, 0) {
                    if let Some(&out) = node.outputs.first() {
                        info.set(out, s);
                    }
                }
            }
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Maximum
            | Op::Minimum
            | Op::Pow
            | Op::Gt
            | Op::Lt
            | Op::Ge
            | Op::Le
            | Op::EqElem
            | Op::LogicalAnd
            | Op::LogicalOr => {
                if let (Some(a), Some(b)) = (in_shape(info, 0), in_shape(info, 1)) {
                    if let Some(s) = broadcast(&a, &b) {
                        info.set(node.outputs[0], s);
                    }
                }
            }
            Op::WhereSelect => {
                if let (Some(c), Some(a), Some(b)) =
                    (in_shape(info, 0), in_shape(info, 1), in_shape(info, 2))
                {
                    if let Some(s) = broadcast(&a, &b).and_then(|ab| broadcast(&c, &ab)) {
                        info.set(node.outputs[0], s);
                    }
                }
            }
            Op::Neg
            | Op::Relu
            | Op::Sigmoid
            | Op::Tanh
            | Op::Exp
            | Op::Log
            | Op::Sqrt
            | Op::Abs
            | Op::LogicalNot
            | Op::Clamp
            | Op::Cast { .. }
            | Op::Softmax { .. }
            | Op::Cumsum { .. }
            | Op::ZerosLike
            | Op::OnesLike
            | Op::FullLike => {
                if let Some(s) = in_shape(info, 0) {
                    info.set(node.outputs[0], s);
                }
            }
            Op::BroadcastLike => {
                if let Some(s) = in_shape(info, 1) {
                    info.set(node.outputs[0], s);
                }
            }
            Op::SumDim { dim, keepdim }
            | Op::MeanDim { dim, keepdim }
            | Op::MaxDim { dim, keepdim }
            | Op::MinDim { dim, keepdim }
            | Op::ArgmaxDim { dim, keepdim } => {
                if let Some(mut s) = in_shape(info, 0) {
                    if let Some(d) = norm_dim(*dim, s.len()) {
                        if *keepdim {
                            s[d] = Some(1);
                        } else {
                            s.remove(d);
                        }
                        info.set(node.outputs[0], s);
                    }
                }
            }
            Op::Matmul => {
                if let (Some(a), Some(b)) = (in_shape(info, 0), in_shape(info, 1)) {
                    if a.len() == 2 && b.len() == 2 {
                        info.set(node.outputs[0], vec![a[0], b[1]]);
                    }
                }
            }
            Op::Bmm => {
                if let (Some(a), Some(b)) = (in_shape(info, 0), in_shape(info, 1)) {
                    if a.len() == 3 && b.len() == 3 {
                        info.set(node.outputs[0], vec![a[0], a[1], b[2]]);
                    }
                }
            }
            Op::Concat { dim } => {
                let shapes: Option<Vec<Shape>> = node.inputs.iter().map(|&v| info.get(v)).collect();
                if let Some(shapes) = shapes {
                    if let Some(first) = shapes.first() {
                        if let Some(d) = norm_dim(*dim, first.len()) {
                            let mut out = first.clone();
                            out[d] = shapes
                                .iter()
                                .map(|s| s[d])
                                .try_fold(0usize, |acc, x| x.map(|v| acc + v));
                            // Merge other dims across operands.
                            for s in &shapes[1..] {
                                for (i, slot) in out.iter_mut().enumerate() {
                                    if i != d && *slot != s[i] {
                                        *slot = None;
                                    }
                                }
                            }
                            info.set(node.outputs[0], out);
                        }
                    }
                }
            }
            Op::Stack { dim } => {
                if let Some(first) = in_shape(info, 0) {
                    if let Some(d) = norm_dim(*dim, first.len() + 1) {
                        let mut out = first.clone();
                        out.insert(d, Some(node.inputs.len()));
                        info.set(node.outputs[0], out);
                    }
                }
            }
            Op::Gather { .. } => {
                if let Some(idx) = in_shape(info, 1) {
                    info.set(node.outputs[0], idx);
                }
            }
            Op::IndexSelect { dim } => {
                if let (Some(mut base), Some(idx)) = (in_shape(info, 0), in_shape(info, 1)) {
                    if let Some(d) = norm_dim(*dim, base.len()) {
                        base[d] = idx.first().copied().flatten();
                        info.set(node.outputs[0], base);
                    }
                }
            }
            Op::Reshape { shape } => {
                let total =
                    in_shape(info, 0).and_then(|s| s.iter().copied().product::<Option<usize>>());
                info.set(node.outputs[0], resolve_reshape(shape, total));
            }
            Op::Zeros { shape } | Op::Ones { shape } | Op::Full { shape } => {
                info.set(
                    node.outputs[0],
                    shape.iter().map(|&d| Some(d.max(0) as usize)).collect(),
                );
            }
            Op::Arange => {
                let n = const_int(g, node.inputs[0]).map(|v| v.max(0) as usize);
                info.set(node.outputs[0], vec![n]);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_graph;

    fn shapes_of(src: &str, inputs: &[Option<Vec<usize>>]) -> (Graph, ShapeInfo) {
        let g = parse_graph(src).unwrap();
        let info = infer_shapes(&g, inputs);
        (g, info)
    }

    fn ret_shape(g: &Graph, info: &ShapeInfo, i: usize) -> Shape {
        info.shape(g.block(g.top()).returns[i]).cloned().unwrap()
    }

    #[test]
    fn elementwise_broadcast_shapes() {
        let (g, info) = shapes_of(
            "graph(%a : Tensor, %b : Tensor):
               %c : Tensor = aten::add(%a, %b)
               return (%c)",
            &[Some(vec![4, 1, 3]), Some(vec![5, 1])],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(4), Some(5), Some(3)]);
    }

    #[test]
    fn views_and_reductions() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor):
               %i : int = prim::Constant[value=1]()
               %v : Tensor = aten::select[dim=0](%x, %i)
               %u : Tensor = aten::unsqueeze[dim=0](%v)
               %s : Tensor = aten::sum[dim=1, keepdim=true](%x)
               return (%u, %s)",
            &[Some(vec![3, 7])],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(1), Some(7)]);
        assert_eq!(ret_shape(&g, &info, 1), vec![Some(3), Some(1)]);
    }

    #[test]
    fn constant_slice_known_runtime_slice_unknown() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor, %e : int):
               %a : int = prim::Constant[value=1]()
               %b : int = prim::Constant[value=5]()
               %s : int = prim::Constant[value=2]()
               %v : Tensor = aten::slice[dim=0](%x, %a, %b, %s)
               %w : Tensor = aten::slice[dim=0](%x, %a, %e, %s)
               return (%v, %w)",
            &[Some(vec![8, 2]), None],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(2), Some(2)]);
        assert_eq!(ret_shape(&g, &info, 1), vec![None, Some(2)]);
    }

    #[test]
    fn matmul_concat_stack() {
        let (g, info) = shapes_of(
            "graph(%a : Tensor, %b : Tensor):
               %m : Tensor = aten::matmul(%a, %b)
               %c : Tensor = aten::cat[dim=0](%a, %a)
               %s : Tensor = aten::stack[dim=0](%a, %a)
               return (%m, %c, %s)",
            &[Some(vec![2, 3]), Some(vec![3, 5])],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(2), Some(5)]);
        assert_eq!(ret_shape(&g, &info, 1), vec![Some(4), Some(3)]);
        assert_eq!(ret_shape(&g, &info, 2), vec![Some(2), Some(2), Some(3)]);
    }

    #[test]
    fn loop_carried_shapes_reach_fixed_point() {
        // The carried tensor keeps its shape through the body.
        let (g, info) = shapes_of(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %u : Tensor = aten::relu(%c)
                   -> (%t, %u)
               return (%o)",
            &[Some(vec![4, 4]), None],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(4), Some(4)]);
    }

    #[test]
    fn branch_merge_keeps_agreeing_dims() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor, %c : bool):
               %o : Tensor = prim::If(%c)
                 block0():
                   %a : Tensor = aten::relu(%x)
                   -> (%a)
                 block1():
                   %b : Tensor = aten::reshape[shape=[2, -1]](%x)
                   -> (%b)
               return (%o)",
            &[Some(vec![2, 6]), None],
        );
        // then: [2, 6]; else: [2, 6] → merged fully known.
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(2), Some(6)]);
    }

    #[test]
    fn reshape_with_inferred_dim() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor):
               %r : Tensor = aten::reshape[shape=[3, -1]](%x)
               return (%r)",
            &[Some(vec![6, 2])],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(3), Some(4)]);
    }

    #[test]
    fn incompatible_broadcast_yields_no_shape() {
        let (g, info) = shapes_of(
            "graph(%a : Tensor, %b : Tensor):
               %c : Tensor = aten::add(%a, %b)
               return (%c)",
            &[Some(vec![2]), Some(vec![3])],
        );
        assert!(info.shape(g.block(g.top()).returns[0]).is_none());
    }

    #[test]
    fn unknown_inputs_flow_as_unknown() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor):
               %y : Tensor = aten::sigmoid(%x)
               return (%y)",
            &[None],
        );
        assert!(info.shape(g.block(g.top()).returns[0]).is_none());
        assert!(!info.fully_known(g.block(g.top()).returns[0]));
    }
}
