//! Static shape inference over the graph IR, on the symbolic dim domain.
//!
//! Given (possibly partial, possibly *symbolic*) shapes for the graph
//! inputs, propagates dimension information through the program: broadcast
//! rules for elementwise operators, view/access rules for layout operators,
//! fixed-point iteration for loop-carried tensors, and branch merging for
//! `prim::If`. Each dimension is a [`SymDim`]: a normalized affine
//! expression over named input-dim variables (constants included) or ⊥ for
//! data-dependent extents, so the analysis can prove facts like "output dim
//! 0 is exactly `in0.d0`" instead of collapsing every non-constant to
//! unknown.
//!
//! Runtime integers are tracked alongside (`aten::size` yields the operand
//! dim's symbolic value; `+`/`-`/`*`-by-constant keep the affine form), so
//! slice bounds computed from shapes — `x[h-2:]`, `z[:, hs:hs*2]` — stay
//! symbolic instead of degrading to ⊥.
//!
//! Where propagation must *assume* something to stay precise (two non-unit
//! symbolic dims broadcast together, a constant slice bound on a symbolic
//! dim), the assumption is recorded as a [`Constraint`] rather than
//! silently trusted; the shape certifier in `tssa-lint` surfaces them in
//! the plan's `ShapeSignature`.
//!
//! The analysis is used by tests, tooling and the shape certifier; the
//! executor itself computes exact shapes dynamically.

use std::collections::{BTreeSet, HashMap};

use crate::graph::{BlockId, Graph, ValueId};
use crate::ops::{Op, ViewKind};
use crate::symdim::{Constraint, DimVar, SymDim, SymExpr};
use crate::types::{ConstValue, Type};

/// A tensor shape: one [`SymDim`] per dimension.
pub type Shape = Vec<SymDim>;

/// The result of [`infer_shapes`]: per-value symbolic shapes (tensor values
/// only), symbolic runtime integers, and the assumptions made en route.
#[derive(Debug, Clone, Default)]
pub struct ShapeInfo {
    shapes: HashMap<ValueId, Shape>,
    ints: HashMap<ValueId, SymExpr>,
    constraints: Vec<Constraint>,
}

impl ShapeInfo {
    /// Shape of `value`, if it is a tensor whose rank could be determined.
    pub fn shape(&self, value: ValueId) -> Option<&Shape> {
        self.shapes.get(&value)
    }

    /// Shape of `value` with each dim collapsed to `Some(constant)` /
    /// `None` — the pre-symbolic view of the world, for callers that only
    /// care about static constants.
    pub fn concrete(&self, value: ValueId) -> Option<Vec<Option<usize>>> {
        self.shapes
            .get(&value)
            .map(|s| s.iter().map(SymDim::as_const).collect())
    }

    /// Whether every dimension of `value` is a statically known constant.
    pub fn fully_known(&self, value: ValueId) -> bool {
        self.shapes
            .get(&value)
            .map(|s| s.iter().all(|d| d.as_const().is_some()))
            .unwrap_or(false)
    }

    /// Symbolic value of the runtime integer `value`, when tracked.
    pub fn int_of(&self, value: ValueId) -> Option<&SymExpr> {
        self.ints.get(&value)
    }

    /// The assumptions propagation made (deduplicated, in discovery order).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    fn set(&mut self, value: ValueId, shape: Shape) {
        self.shapes.insert(value, shape);
    }

    fn get(&self, value: ValueId) -> Option<Shape> {
        self.shapes.get(&value).cloned()
    }
}

fn norm_dim(dim: i64, rank: usize) -> Option<usize> {
    let r = rank as i64;
    let d = if dim < 0 { dim + r } else { dim };
    (0..r.max(1)).contains(&d).then_some(d as usize)
}

/// Infer shapes for all tensor values of `g`, given *constant* shapes for
/// its inputs (one entry per graph input; `None` for non-tensor or unknown
/// inputs).
pub fn infer_shapes(g: &Graph, input_shapes: &[Option<Vec<usize>>]) -> ShapeInfo {
    let seeds: Vec<Option<Shape>> = input_shapes
        .iter()
        .map(|s| {
            s.as_ref()
                .map(|dims| dims.iter().map(|&d| SymDim::konst(d)).collect())
        })
        .collect();
    infer_shapes_seeded(g, &seeds)
}

/// Infer shapes with each tensor input seeded *symbolically*: input `i` of
/// rank `r` gets the shape `[in{i}.d0, …, in{i}.d{r-1}]`. Pass `None` for
/// non-tensor inputs or unknown ranks. This is the seeding the shape
/// certifier uses to discover which input dims a program is generic over.
pub fn infer_shapes_symbolic(g: &Graph, input_ranks: &[Option<usize>]) -> ShapeInfo {
    let seeds: Vec<Option<Shape>> = input_ranks
        .iter()
        .enumerate()
        .map(|(i, r)| r.map(|rank| (0..rank).map(|d| SymDim::var(i as u32, d as u32)).collect()))
        .collect();
    infer_shapes_seeded(g, &seeds)
}

/// Infer shapes from arbitrary symbolic seeds (one per graph input).
pub fn infer_shapes_seeded(g: &Graph, seeds: &[Option<Shape>]) -> ShapeInfo {
    let mut inf = Infer {
        g,
        info: ShapeInfo::default(),
    };
    let params = g.block(g.top()).params.clone();
    for (i, p) in params.iter().enumerate() {
        if let Some(Some(s)) = seeds.get(i) {
            inf.info.set(*p, s.clone());
        }
    }
    inf.block(g.top());
    inf.info.constraints.dedup();
    inf.info
}

struct Infer<'g> {
    g: &'g Graph,
    info: ShapeInfo,
}

impl Infer<'_> {
    // ------------------------------------------------------------ plumbing

    fn assume(&mut self, c: Constraint) {
        if !self.info.constraints.contains(&c) {
            self.info.constraints.push(c);
        }
    }

    /// Record `a = b` unless trivially true or statically refuted elsewhere.
    fn assume_eq(&mut self, a: &SymExpr, b: &SymExpr) {
        if a == b {
            return;
        }
        self.assume(Constraint::Eq(a.clone(), b.clone()));
    }

    /// Record `a >= b` unless trivially true.
    fn assume_ge(&mut self, a: &SymExpr, b: &SymExpr) {
        if let Some(c) = a.sub(b).as_const() {
            if c >= 0 {
                return;
            }
        }
        self.assume(Constraint::Ge(a.clone(), b.clone()));
    }

    /// Symbolic value of a runtime int, when derivable: a tracked `ints`
    /// entry or a literal `prim::Constant`.
    fn sym_int(&self, v: ValueId) -> Option<SymExpr> {
        if let Some(e) = self.info.ints.get(&v) {
            return Some(e.clone());
        }
        match &self.g.node(self.g.def_node(v)?).op {
            Op::Constant(ConstValue::Int(x)) => Some(SymExpr::constant(*x)),
            _ => None,
        }
    }

    // ------------------------------------------------------- dim operators

    /// Join two dims required to be *equal* at runtime (concat off-dims,
    /// matmul contraction): equal stays, const-vs-symbolic refines to the
    /// constant under a recorded assumption, symbolic-vs-symbolic keeps one
    /// side under an equality assumption, contradictions widen to ⊥.
    fn unify(&mut self, a: &SymDim, b: &SymDim) -> SymDim {
        if a == b {
            return a.clone();
        }
        match (a, b) {
            (SymDim::Known(x), SymDim::Known(y)) => {
                if x.as_const().is_some() && y.as_const().is_some() {
                    // Two different constants: statically impossible.
                    return SymDim::Unknown(BTreeSet::new());
                }
                self.assume_eq(x, y);
                if x.as_const().is_some() {
                    a.clone()
                } else if y.as_const().is_some() {
                    b.clone()
                } else {
                    a.clone()
                }
            }
            _ => {
                let mut t = a.vars();
                t.extend(b.vars());
                SymDim::Unknown(t)
            }
        }
    }

    /// Broadcast one dim pair; `None` means statically incompatible.
    fn broadcast_dim(&mut self, da: &SymDim, db: &SymDim) -> Option<SymDim> {
        if da == db {
            return Some(da.clone());
        }
        match (da, db) {
            (SymDim::Known(a), SymDim::Known(b)) => match (a.as_const(), b.as_const()) {
                (Some(1), _) => Some(db.clone()),
                (_, Some(1)) => Some(da.clone()),
                (Some(_), Some(_)) => None, // two different non-unit constants
                // A non-unit constant wins: the other side must be 1 or
                // equal to it at runtime, and the result is the constant
                // either way.
                (Some(_), None) => Some(da.clone()),
                (None, Some(_)) => Some(db.clone()),
                // Two distinct symbolic dims: assume equal (recorded) so the
                // result stays affine instead of widening to ⊥.
                (None, None) => {
                    self.assume_eq(a, b);
                    Some(da.clone())
                }
            },
            (SymDim::Unknown(t), SymDim::Known(e)) | (SymDim::Known(e), SymDim::Unknown(t)) => {
                match e.as_const() {
                    Some(1) => Some(SymDim::Unknown(t.clone())),
                    Some(n) => Some(SymDim::konst(n as usize)),
                    None => {
                        let mut taint = t.clone();
                        taint.extend(e.vars());
                        Some(SymDim::Unknown(taint))
                    }
                }
            }
            (SymDim::Unknown(ta), SymDim::Unknown(tb)) => {
                let mut t = ta.clone();
                t.extend(tb.iter().copied());
                Some(SymDim::Unknown(t))
            }
        }
    }

    /// Broadcast two shapes; `None` means statically incompatible.
    fn broadcast(&mut self, a: &Shape, b: &Shape) -> Option<Shape> {
        let rank = a.len().max(b.len());
        let one = SymDim::konst(1);
        let mut out = Vec::with_capacity(rank);
        for i in 0..rank {
            let da = if i < rank - a.len() {
                &one
            } else {
                &a[i - (rank - a.len())]
            };
            let db = if i < rank - b.len() {
                &one
            } else {
                &b[i - (rank - b.len())]
            };
            out.push(self.broadcast_dim(da, db)?);
        }
        Some(out)
    }

    /// Merge shapes from two control-flow paths: agreeing dims stay, others
    /// widen to ⊥ carrying both sides' variables as taint.
    fn merge(a: &Shape, b: &Shape) -> Shape {
        if a.len() != b.len() {
            // Rank disagreement: fall back to the shorter-rank unknown form.
            let mut taint = BTreeSet::new();
            for d in a.iter().chain(b) {
                taint.extend(d.vars());
            }
            return vec![SymDim::Unknown(taint); a.len().min(b.len())];
        }
        a.iter().zip(b).map(|(x, y)| x.join(y)).collect()
    }

    /// `a` and `b` denote the same extent under the equality assumptions
    /// recorded so far: identical, or equal once every variable is rewritten
    /// to its `Eq`-class representative. Only variable-to-variable
    /// equalities build classes (constant refinements are already folded in
    /// by [`Infer::unify`]).
    fn assumed_equal(&self, a: &SymExpr, b: &SymExpr) -> bool {
        if a == b {
            return true;
        }
        let mut parent: HashMap<DimVar, DimVar> = HashMap::new();
        fn leader(parent: &HashMap<DimVar, DimVar>, mut v: DimVar) -> DimVar {
            while let Some(&p) = parent.get(&v) {
                v = p;
            }
            v
        }
        for c in &self.info.constraints {
            if let Constraint::Eq(x, y) = c {
                if let (Some(vx), Some(vy)) = (x.as_var(), y.as_var()) {
                    let (rx, ry) = (leader(&parent, vx), leader(&parent, vy));
                    if rx != ry {
                        parent.insert(rx, ry);
                    }
                }
            }
        }
        let canon = |e: &SymExpr| -> SymExpr {
            let mut out = SymExpr::constant(e.constant_term());
            for &(v, c) in e.terms() {
                out = out.add(&SymExpr::var(leader(&parent, v)).mul_const(c));
            }
            out
        };
        canon(a) == canon(b)
    }

    /// Loop-head join: like [`Infer::merge`], except a carried dim whose
    /// body result differs only by an *already-assumed* equality keeps the
    /// carried expression instead of widening to ⊥. The body's broadcast /
    /// contraction steps record those `Eq` assumptions before the first
    /// join runs, so a shape-invariant recurrence (`h = f(h)` with `h`
    /// flowing through matmuls against carried-in weights) stays `Known`;
    /// a genuinely growing dim (`h = cat(h, x)`) shares no assumed
    /// equality and still widens with taint.
    fn join_assumed(&self, a: &Shape, b: &Shape) -> Shape {
        if a.len() != b.len() {
            return Self::merge(a, b);
        }
        a.iter()
            .zip(b)
            .map(|(x, y)| match (x.expr(), y.expr()) {
                (Some(ea), Some(eb)) if self.assumed_equal(ea, eb) => x.clone(),
                _ => x.join(y),
            })
            .collect()
    }

    /// Total element count as an affine expression, when at most one dim is
    /// non-constant (a product of two variables is not affine).
    fn numel(shape: &Shape) -> Option<SymExpr> {
        let mut acc = SymExpr::constant(1);
        for d in shape {
            let e = d.expr()?;
            acc = match (acc.as_const(), e.as_const()) {
                (_, Some(k)) => acc.mul_const(k),
                (Some(k), None) => e.mul_const(k),
                (None, None) => return None,
            };
        }
        Some(acc)
    }

    fn all_vars(shape: &Shape) -> BTreeSet<DimVar> {
        let mut t = BTreeSet::new();
        for d in shape {
            t.extend(d.vars());
        }
        t
    }

    // ----------------------------------------------------------- the views

    /// Resolve a slice bound against the (known) dim size `size`, recording
    /// the in-range assumptions the symbolic form relies on.
    fn resolve_bound(&mut self, bound: &SymExpr, size: &SymExpr) -> SymExpr {
        if bound == size {
            return size.clone();
        }
        if let Some(v) = bound.as_const() {
            if v == i64::MAX {
                // The frontend lowers an open-ended slice (`x[4:]`) with an
                // i64::MAX end; clamping to the size is exact.
                return size.clone();
            }
            if v < 0 {
                self.assume_ge(size, &SymExpr::constant(-v));
                return size.add(&SymExpr::constant(v));
            }
            self.assume_ge(size, bound);
            return bound.clone();
        }
        // Symbolic bound (e.g. `h-2`, `hs*2`): assume it lies in [0, size].
        self.assume_ge(bound, &SymExpr::constant(0));
        self.assume_ge(size, bound);
        bound.clone()
    }

    /// The length of `slice(start, end, step)` over a dim of extent `size`.
    fn slice_len(&mut self, size: &SymDim, extras: &[ValueId]) -> SymDim {
        let mut taint = size.vars();
        for &v in &extras[..2] {
            if let Some(e) = self.sym_int(v) {
                taint.extend(e.vars());
            }
        }
        let Some(step) = self.sym_int(extras[2]).and_then(|e| e.as_const()) else {
            return SymDim::Unknown(taint);
        };
        if step <= 0 {
            return SymDim::Unknown(taint);
        }
        let (Some(start), Some(end)) = (self.sym_int(extras[0]), self.sym_int(extras[1])) else {
            return SymDim::Unknown(taint);
        };
        let SymDim::Known(sz) = size else {
            return SymDim::Unknown(taint);
        };
        if let (Some(s0), Some(e0), Some(szc)) = (start.as_const(), end.as_const(), sz.as_const()) {
            // Fully constant: exact clamped arithmetic, no assumptions.
            let clamp = |v: i64| {
                let v = if v < 0 { v + szc } else { v };
                v.clamp(0, szc)
            };
            let a = clamp(s0);
            let b = clamp(e0).max(a);
            return SymDim::konst(((b - a + step - 1) / step) as usize);
        }
        let a = self.resolve_bound(&start, sz);
        let b = self.resolve_bound(&end, sz);
        let diff = b.sub(&a);
        if let Some(c) = diff.as_const() {
            let c = c.max(0);
            return SymDim::konst(((c + step - 1) / step) as usize);
        }
        if step == 1 {
            self.assume_ge(&b, &a);
            SymDim::Known(diff)
        } else {
            // Ceil-division of a symbolic length is not affine.
            SymDim::Unknown(diff.vars().collect())
        }
    }

    fn resolve_reshape(
        &self,
        shape: &[i64],
        total: Option<SymExpr>,
        taint: &BTreeSet<DimVar>,
    ) -> Shape {
        let known: i64 = shape.iter().filter(|&&d| d >= 0).product();
        shape
            .iter()
            .map(|&d| {
                if d == -1 {
                    let inferred =
                        total.as_ref().and_then(
                            |t| {
                                if known > 0 {
                                    t.div_exact(known)
                                } else {
                                    None
                                }
                            },
                        );
                    match inferred {
                        Some(e) => SymDim::Known(e),
                        None => SymDim::Unknown(
                            total
                                .as_ref()
                                .map(|t| t.vars().collect())
                                .unwrap_or_else(|| taint.clone()),
                        ),
                    }
                } else {
                    SymDim::konst(d.max(0) as usize)
                }
            })
            .collect()
    }

    fn view_shape(&mut self, kind: &ViewKind, base: &Shape, extras: &[ValueId]) -> Option<Shape> {
        match kind {
            ViewKind::Select { dim } => {
                let d = norm_dim(*dim, base.len())?;
                let mut s = base.clone();
                s.remove(d);
                Some(s)
            }
            ViewKind::SliceView { dim } => {
                let d = norm_dim(*dim, base.len())?;
                let mut s = base.clone();
                s[d] = self.slice_len(&base[d], extras);
                Some(s)
            }
            ViewKind::Permute { perm } => {
                if perm.len() != base.len() {
                    return None;
                }
                perm.iter()
                    .map(|&p| base.get(p as usize).cloned())
                    .collect()
            }
            ViewKind::Transpose { dim0, dim1 } => {
                let d0 = norm_dim(*dim0, base.len())?;
                let d1 = norm_dim(*dim1, base.len())?;
                let mut s = base.clone();
                s.swap(d0, d1);
                Some(s)
            }
            ViewKind::Unsqueeze { dim } => {
                let d = norm_dim(*dim, base.len() + 1)?;
                let mut s = base.clone();
                s.insert(d, SymDim::konst(1));
                Some(s)
            }
            ViewKind::Squeeze { dim } => {
                let d = norm_dim(*dim, base.len())?;
                let mut s = base.clone();
                s.remove(d);
                Some(s)
            }
            ViewKind::Expand { shape } => {
                let pad = shape.len().checked_sub(base.len())?;
                Some(
                    shape
                        .iter()
                        .enumerate()
                        .map(|(i, &d)| {
                            if d == -1 {
                                if i >= pad {
                                    base[i - pad].clone()
                                } else {
                                    SymDim::unknown()
                                }
                            } else {
                                SymDim::konst(d.max(0) as usize)
                            }
                        })
                        .collect(),
                )
            }
            ViewKind::ViewShape { shape } => {
                let total = Self::numel(base);
                let taint = Self::all_vars(base);
                Some(self.resolve_reshape(shape, total, &taint))
            }
        }
    }

    fn unknown_like(&self, v: ValueId) -> Shape {
        self.info
            .get(v)
            .map(|s| {
                let taint = Self::all_vars(&s);
                vec![SymDim::Unknown(taint); s.len()]
            })
            .unwrap_or_default()
    }

    // ----------------------------------------------------------- the walk

    #[allow(clippy::too_many_lines)]
    fn block(&mut self, block: BlockId) {
        let g = self.g;
        for &n in &g.block(block).nodes {
            let node = g.node(n);
            let in_shape = |inf: &Self, i: usize| -> Option<Shape> {
                node.inputs.get(i).and_then(|&v| inf.info.get(v))
            };
            match &node.op {
                Op::If => {
                    let (then_b, else_b) = (node.blocks[0], node.blocks[1]);
                    self.block(then_b);
                    self.block(else_b);
                    for (i, &out) in node.outputs.iter().enumerate() {
                        match g.value(out).ty {
                            Type::Tensor => {
                                let t = self.info.get(g.block(then_b).returns[i]);
                                let e = self.info.get(g.block(else_b).returns[i]);
                                if let (Some(t), Some(e)) = (t, e) {
                                    self.info.set(out, Self::merge(&t, &e));
                                }
                            }
                            Type::Int => {
                                let t = self.sym_int(g.block(then_b).returns[i]);
                                let e = self.sym_int(g.block(else_b).returns[i]);
                                if let (Some(t), Some(e)) = (t, e) {
                                    if t == e {
                                        self.info.ints.insert(out, t);
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
                Op::Loop => {
                    let body = node.blocks[0];
                    let params = g.block(body).params.clone();
                    // Seed carried params with the initial shapes, then run
                    // the body and widen (join) until the carried shapes
                    // stabilize. The join only moves dims down the lattice
                    // (Known -> ⊥ with growing taint), so the iteration
                    // terminates; the cap is belt and braces.
                    for (k, &p) in params.iter().enumerate().skip(1) {
                        if let Some(s) = self.info.get(node.inputs[1 + k]) {
                            self.info.set(p, s);
                        }
                    }
                    for _ in 0..8 {
                        self.block(body);
                        let mut changed = false;
                        for (k, &p) in params.iter().enumerate().skip(1) {
                            let ret = g.block(body).returns[k];
                            if let (Some(a), Some(b)) = (self.info.get(p), self.info.get(ret)) {
                                let joined = self.join_assumed(&a, &b);
                                if joined != a {
                                    self.info.set(p, joined);
                                    changed = true;
                                }
                            }
                        }
                        if !changed {
                            break;
                        }
                    }
                    for (k, &out) in node.outputs.iter().enumerate() {
                        if let Some(s) = self.info.get(g.block(body).returns[1 + k]) {
                            self.info.set(out, s);
                        }
                    }
                }
                Op::FusionGroup => {
                    let body = node.blocks[0];
                    for (k, &p) in g.block(body).params.iter().enumerate() {
                        if let Some(s) = self.info.get(node.inputs[k]) {
                            self.info.set(p, s);
                        } else if let Some(e) = self.sym_int(node.inputs[k]) {
                            self.info.ints.insert(p, e);
                        }
                    }
                    self.block(body);
                    for (k, &out) in node.outputs.iter().enumerate() {
                        if let Some(s) = self.info.get(g.block(body).returns[k]) {
                            self.info.set(out, s);
                        }
                    }
                }
                Op::ParallelMap { .. } => {
                    self.block(node.blocks[0]);
                    if let Some(s) = in_shape(self, 1) {
                        self.info.set(node.outputs[0], s);
                    }
                }
                Op::View(kind) | Op::Access(kind) => {
                    if let Some(base) = in_shape(self, 0) {
                        let kind = kind.clone();
                        if let Some(s) = self.view_shape(&kind, &base, &node.inputs[1..]) {
                            self.info.set(node.outputs[0], s);
                        } else {
                            let u = self.unknown_like(node.inputs[0]);
                            self.info.set(node.outputs[0], u);
                        }
                    }
                }
                Op::Assign(_) | Op::Mutate(_) | Op::CloneOp | Op::Contiguous => {
                    if let Some(s) = in_shape(self, 0) {
                        if let Some(&out) = node.outputs.first() {
                            self.info.set(out, s);
                        }
                    }
                }
                Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Div
                | Op::Maximum
                | Op::Minimum
                | Op::Pow
                | Op::Gt
                | Op::Lt
                | Op::Ge
                | Op::Le
                | Op::EqElem
                | Op::LogicalAnd
                | Op::LogicalOr => {
                    if let (Some(a), Some(b)) = (in_shape(self, 0), in_shape(self, 1)) {
                        if let Some(s) = self.broadcast(&a, &b) {
                            self.info.set(node.outputs[0], s);
                        }
                    }
                }
                Op::WhereSelect => {
                    if let (Some(c), Some(a), Some(b)) =
                        (in_shape(self, 0), in_shape(self, 1), in_shape(self, 2))
                    {
                        if let Some(s) = self
                            .broadcast(&a, &b)
                            .and_then(|ab| self.broadcast(&c, &ab))
                        {
                            self.info.set(node.outputs[0], s);
                        }
                    }
                }
                Op::Neg
                | Op::Relu
                | Op::Sigmoid
                | Op::Tanh
                | Op::Exp
                | Op::Log
                | Op::Sqrt
                | Op::Abs
                | Op::LogicalNot
                | Op::Clamp
                | Op::Cast { .. }
                | Op::Softmax { .. }
                | Op::Cumsum { .. }
                | Op::AddScalar
                | Op::SubScalar
                | Op::MulScalar
                | Op::DivScalar
                | Op::PowScalar
                | Op::ZerosLike
                | Op::OnesLike
                | Op::FullLike => {
                    if let Some(s) = in_shape(self, 0) {
                        self.info.set(node.outputs[0], s);
                    }
                }
                Op::BroadcastLike => {
                    if let Some(s) = in_shape(self, 1) {
                        self.info.set(node.outputs[0], s);
                    }
                }
                Op::SumDim { dim, keepdim }
                | Op::MeanDim { dim, keepdim }
                | Op::MaxDim { dim, keepdim }
                | Op::MinDim { dim, keepdim }
                | Op::ArgmaxDim { dim, keepdim } => {
                    if let Some(mut s) = in_shape(self, 0) {
                        if let Some(d) = norm_dim(*dim, s.len()) {
                            if *keepdim {
                                s[d] = SymDim::konst(1);
                            } else {
                                s.remove(d);
                            }
                            self.info.set(node.outputs[0], s);
                        }
                    }
                }
                Op::Matmul => {
                    if let (Some(a), Some(b)) = (in_shape(self, 0), in_shape(self, 1)) {
                        if a.len() == 2 && b.len() == 2 {
                            self.unify(&a[1], &b[0]); // contraction dims agree
                            self.info
                                .set(node.outputs[0], vec![a[0].clone(), b[1].clone()]);
                        }
                    }
                }
                Op::Bmm => {
                    if let (Some(a), Some(b)) = (in_shape(self, 0), in_shape(self, 1)) {
                        if a.len() == 3 && b.len() == 3 {
                            self.unify(&a[0], &b[0]);
                            self.unify(&a[2], &b[1]);
                            self.info.set(
                                node.outputs[0],
                                vec![a[0].clone(), a[1].clone(), b[2].clone()],
                            );
                        }
                    }
                }
                Op::Concat { dim } => {
                    let shapes: Option<Vec<Shape>> =
                        node.inputs.iter().map(|&v| self.info.get(v)).collect();
                    if let Some(shapes) = shapes {
                        if let Some(first) = shapes.first() {
                            if let Some(d) = norm_dim(*dim, first.len()) {
                                let mut out = first.clone();
                                // The concat dim is the affine sum; any ⊥
                                // operand widens it.
                                let mut acc = Some(SymExpr::constant(0));
                                let mut taint = BTreeSet::new();
                                for s in &shapes {
                                    taint.extend(s[d].vars());
                                    acc = match (&acc, s[d].expr()) {
                                        (Some(a), Some(e)) => Some(a.add(e)),
                                        _ => None,
                                    };
                                }
                                out[d] = match acc {
                                    Some(e) => SymDim::Known(e),
                                    None => SymDim::Unknown(taint),
                                };
                                // Off-dims must agree across operands.
                                for s in &shapes[1..] {
                                    for i in 0..out.len() {
                                        if i != d {
                                            out[i] = self.unify(&out[i], &s[i]);
                                        }
                                    }
                                }
                                self.info.set(node.outputs[0], out);
                            }
                        }
                    }
                }
                Op::Stack { dim } => {
                    if let Some(first) = in_shape(self, 0) {
                        if let Some(d) = norm_dim(*dim, first.len() + 1) {
                            let mut out = first.clone();
                            out.insert(d, SymDim::konst(node.inputs.len()));
                            self.info.set(node.outputs[0], out);
                        }
                    }
                }
                Op::Gather { .. } => {
                    if let Some(idx) = in_shape(self, 1) {
                        self.info.set(node.outputs[0], idx);
                    }
                }
                Op::IndexSelect { dim } => {
                    if let (Some(mut base), Some(idx)) = (in_shape(self, 0), in_shape(self, 1)) {
                        if let Some(d) = norm_dim(*dim, base.len()) {
                            base[d] = idx.first().cloned().unwrap_or_else(SymDim::unknown);
                            self.info.set(node.outputs[0], base);
                        }
                    }
                }
                Op::Reshape { shape } => {
                    let (total, taint) = in_shape(self, 0)
                        .map(|s| (Self::numel(&s), Self::all_vars(&s)))
                        .unwrap_or((None, BTreeSet::new()));
                    let s = self.resolve_reshape(shape, total, &taint);
                    self.info.set(node.outputs[0], s);
                }
                Op::Zeros { shape } | Op::Ones { shape } | Op::Full { shape } => {
                    self.info.set(
                        node.outputs[0],
                        shape
                            .iter()
                            .map(|&d| SymDim::konst(d.max(0) as usize))
                            .collect(),
                    );
                }
                Op::Arange => {
                    let dim = match self.sym_int(node.inputs[0]) {
                        Some(e) => match e.as_const() {
                            Some(v) => SymDim::konst(v.max(0) as usize),
                            None => {
                                self.assume_ge(&e, &SymExpr::constant(0));
                                SymDim::Known(e)
                            }
                        },
                        None => SymDim::unknown(),
                    };
                    self.info.set(node.outputs[0], vec![dim]);
                }
                // ------------------------------------------ runtime ints
                Op::Constant(ConstValue::Int(x)) => {
                    self.info
                        .ints
                        .insert(node.outputs[0], SymExpr::constant(*x));
                }
                Op::Size { dim } => {
                    if let Some(s) = in_shape(self, 0) {
                        if let Some(d) = norm_dim(*dim, s.len()) {
                            if let SymDim::Known(e) = &s[d] {
                                self.info.ints.insert(node.outputs[0], e.clone());
                            }
                        }
                    }
                }
                Op::IntAdd | Op::IntSub => {
                    if let (Some(a), Some(b)) =
                        (self.sym_int(node.inputs[0]), self.sym_int(node.inputs[1]))
                    {
                        let e = if matches!(node.op, Op::IntAdd) {
                            a.add(&b)
                        } else {
                            a.sub(&b)
                        };
                        self.info.ints.insert(node.outputs[0], e);
                    }
                }
                Op::IntMul => {
                    if let (Some(a), Some(b)) =
                        (self.sym_int(node.inputs[0]), self.sym_int(node.inputs[1]))
                    {
                        let e = match (a.as_const(), b.as_const()) {
                            (_, Some(k)) => Some(a.mul_const(k)),
                            (Some(k), None) => Some(b.mul_const(k)),
                            (None, None) => None, // product of two symbols: not affine
                        };
                        if let Some(e) = e {
                            self.info.ints.insert(node.outputs[0], e);
                        }
                    }
                }
                Op::IntNeg => {
                    if let Some(a) = self.sym_int(node.inputs[0]) {
                        self.info.ints.insert(node.outputs[0], a.mul_const(-1));
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_graph;

    fn shapes_of(src: &str, inputs: &[Option<Vec<usize>>]) -> (Graph, ShapeInfo) {
        let g = parse_graph(src).unwrap();
        let info = infer_shapes(&g, inputs);
        (g, info)
    }

    fn ret_shape(g: &Graph, info: &ShapeInfo, i: usize) -> Vec<Option<usize>> {
        info.concrete(g.block(g.top()).returns[i]).unwrap()
    }

    fn ret_sym(g: &Graph, info: &ShapeInfo, i: usize) -> Vec<String> {
        info.shape(g.block(g.top()).returns[i])
            .unwrap()
            .iter()
            .map(|d| d.to_string())
            .collect()
    }

    #[test]
    fn elementwise_broadcast_shapes() {
        let (g, info) = shapes_of(
            "graph(%a : Tensor, %b : Tensor):
               %c : Tensor = aten::add(%a, %b)
               return (%c)",
            &[Some(vec![4, 1, 3]), Some(vec![5, 1])],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(4), Some(5), Some(3)]);
    }

    #[test]
    fn views_and_reductions() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor):
               %i : int = prim::Constant[value=1]()
               %v : Tensor = aten::select[dim=0](%x, %i)
               %u : Tensor = aten::unsqueeze[dim=0](%v)
               %s : Tensor = aten::sum[dim=1, keepdim=true](%x)
               return (%u, %s)",
            &[Some(vec![3, 7])],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(1), Some(7)]);
        assert_eq!(ret_shape(&g, &info, 1), vec![Some(3), Some(1)]);
    }

    #[test]
    fn constant_slice_known_runtime_slice_unknown() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor, %e : int):
               %a : int = prim::Constant[value=1]()
               %b : int = prim::Constant[value=5]()
               %s : int = prim::Constant[value=2]()
               %v : Tensor = aten::slice[dim=0](%x, %a, %b, %s)
               %w : Tensor = aten::slice[dim=0](%x, %a, %e, %s)
               return (%v, %w)",
            &[Some(vec![8, 2]), None],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(2), Some(2)]);
        assert_eq!(ret_shape(&g, &info, 1), vec![None, Some(2)]);
    }

    #[test]
    fn matmul_concat_stack() {
        let (g, info) = shapes_of(
            "graph(%a : Tensor, %b : Tensor):
               %m : Tensor = aten::matmul(%a, %b)
               %c : Tensor = aten::cat[dim=0](%a, %a)
               %s : Tensor = aten::stack[dim=0](%a, %a)
               return (%m, %c, %s)",
            &[Some(vec![2, 3]), Some(vec![3, 5])],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(2), Some(5)]);
        assert_eq!(ret_shape(&g, &info, 1), vec![Some(4), Some(3)]);
        assert_eq!(ret_shape(&g, &info, 2), vec![Some(2), Some(2), Some(3)]);
    }

    #[test]
    fn loop_carried_shapes_reach_fixed_point() {
        // The carried tensor keeps its shape through the body.
        let (g, info) = shapes_of(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %u : Tensor = aten::relu(%c)
                   -> (%t, %u)
               return (%o)",
            &[Some(vec![4, 4]), None],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(4), Some(4)]);
    }

    #[test]
    fn branch_merge_keeps_agreeing_dims() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor, %c : bool):
               %o : Tensor = prim::If(%c)
                 block0():
                   %a : Tensor = aten::relu(%x)
                   -> (%a)
                 block1():
                   %b : Tensor = aten::reshape[shape=[2, -1]](%x)
                   -> (%b)
               return (%o)",
            &[Some(vec![2, 6]), None],
        );
        // then: [2, 6]; else: [2, 6] → merged fully known.
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(2), Some(6)]);
    }

    #[test]
    fn reshape_with_inferred_dim() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor):
               %r : Tensor = aten::reshape[shape=[3, -1]](%x)
               return (%r)",
            &[Some(vec![6, 2])],
        );
        assert_eq!(ret_shape(&g, &info, 0), vec![Some(3), Some(4)]);
    }

    #[test]
    fn incompatible_broadcast_yields_no_shape() {
        let (g, info) = shapes_of(
            "graph(%a : Tensor, %b : Tensor):
               %c : Tensor = aten::add(%a, %b)
               return (%c)",
            &[Some(vec![2]), Some(vec![3])],
        );
        assert!(info.shape(g.block(g.top()).returns[0]).is_none());
    }

    #[test]
    fn unknown_inputs_flow_as_unknown() {
        let (g, info) = shapes_of(
            "graph(%x : Tensor):
               %y : Tensor = aten::sigmoid(%x)
               return (%y)",
            &[None],
        );
        assert!(info.shape(g.block(g.top()).returns[0]).is_none());
        assert!(!info.fully_known(g.block(g.top()).returns[0]));
    }

    // ------------------------------------------------------ symbolic seeds

    #[test]
    fn symbolic_inputs_stay_affine_through_views() {
        let g = parse_graph(
            "graph(%x : Tensor):
               %t : Tensor = aten::transpose[dim0=0, dim1=1](%x)
               %c : Tensor = aten::cat[dim=0](%x, %x)
               return (%t, %c)",
        )
        .unwrap();
        let info = infer_shapes_symbolic(&g, &[Some(2)]);
        assert_eq!(ret_sym(&g, &info, 0), vec!["in0.d1", "in0.d0"]);
        assert_eq!(ret_sym(&g, &info, 1), vec!["2*in0.d0", "in0.d1"]);
    }

    #[test]
    fn size_arithmetic_keeps_slices_symbolic() {
        // x[(h-2):] where h = x.size(0): length = h - (h-2) = 2, and the
        // open-ended remainder x[1:] has length h - 1.
        let g = parse_graph(
            "graph(%x : Tensor):
               %h : int = aten::size[dim=0](%x)
               %two : int = prim::Constant[value=2]()
               %hm2 : int = aten::int_sub(%h, %two)
               %one : int = prim::Constant[value=1]()
               %max : int = prim::Constant[value=9223372036854775807]()
               %v : Tensor = aten::slice[dim=0](%x, %hm2, %max, %one)
               %w : Tensor = aten::slice[dim=0](%x, %one, %max, %one)
               return (%v, %w)",
        )
        .unwrap();
        let info = infer_shapes_symbolic(&g, &[Some(2)]);
        assert_eq!(ret_sym(&g, &info, 0), vec!["2", "in0.d1"]);
        assert_eq!(ret_sym(&g, &info, 1), vec!["in0.d0-1", "in0.d1"]);
        // The h-2 start recorded its in-range assumption.
        assert!(
            info.constraints()
                .iter()
                .any(|c| c.to_string() == "in0.d0-2 >= 0"),
            "{:?}",
            info.constraints()
        );
    }

    #[test]
    fn symbolic_broadcast_assumes_equality() {
        let g = parse_graph(
            "graph(%a : Tensor, %b : Tensor):
               %c : Tensor = aten::add(%a, %b)
               return (%c)",
        )
        .unwrap();
        let info = infer_shapes_symbolic(&g, &[Some(2), Some(2)]);
        assert_eq!(ret_sym(&g, &info, 0), vec!["in0.d0", "in0.d1"]);
        assert!(info
            .constraints()
            .iter()
            .any(|c| c.to_string() == "in0.d0 = in1.d0"));
    }

    #[test]
    fn loop_disagreement_widens_with_taint() {
        // The carried tensor is replaced by a same-rank reshape each
        // iteration, so its dims widen to ⊥ tainted by the input vars.
        let g = parse_graph(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %u : Tensor = aten::cat[dim=0](%c, %c)
                   -> (%t, %u)
               return (%o)",
        )
        .unwrap();
        let info = infer_shapes_symbolic(&g, &[Some(2), None]);
        let out = info.shape(g.block(g.top()).returns[0]).unwrap();
        match &out[0] {
            SymDim::Unknown(t) => assert!(
                t.contains(&DimVar { input: 0, dim: 0 }),
                "taint should blame in0.d0: {t:?}"
            ),
            other => panic!("dim 0 should have widened, got {other}"),
        }
        assert_eq!(out[1].to_string(), "in0.d1");
    }

    #[test]
    fn assumed_equal_recurrence_stays_known_through_the_loop() {
        // An RNN-style recurrence: the carried hidden state is rebuilt each
        // iteration as `matmul(h, w) + h`. The matmul result's dims differ
        // *syntactically* from the carried-in ones, but the broadcast with
        // `h` records the equalities as assumptions before the loop-head
        // join runs — so the carried shape must stay Known instead of
        // widening to ⊥ (the over-approximation that previously marked
        // every recurrent workload data-dependent).
        let g = parse_graph(
            "graph(%h0 : Tensor, %w : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %h : Tensor = prim::Loop(%n, %t, %h0)
                 block0(%i : int, %c : Tensor):
                   %m : Tensor = aten::matmul(%c, %w)
                   %u : Tensor = aten::add(%m, %c)
                   -> (%t, %u)
               return (%h)",
        )
        .unwrap();
        let info = infer_shapes_symbolic(&g, &[Some(2), Some(2), None]);
        let out = info.shape(g.block(g.top()).returns[0]).unwrap();
        assert_eq!(out[0].to_string(), "in0.d0");
        // Dim 1 surfaces as the body's expression (`in1.d1`), assumed equal
        // to the carried-in `in0.d1` — Known either way, never ⊥.
        assert!(
            out.iter().all(|d| d.expr().is_some()),
            "recurrence must stay Known, got {out:?}"
        );
        let rendered: Vec<String> = info.constraints().iter().map(|c| c.to_string()).collect();
        assert!(
            rendered.iter().any(|c| c == "in1.d1 = in0.d1"),
            "the recurrence's shape-invariance assumption is recorded: {rendered:?}"
        );
    }

    #[test]
    fn concrete_seeding_matches_symbolic_concretization() {
        // γ-compatibility: running the analysis with constants must agree
        // with evaluating the symbolic result under those constants.
        let src = "graph(%x : Tensor):
               %c : Tensor = aten::cat[dim=1](%x, %x)
               %m : Tensor = aten::matmul(%x, %c)
               return (%m)";
        let g = parse_graph(src).unwrap();
        let conc = infer_shapes(&g, &[Some(vec![3, 3])]);
        let sym = infer_shapes_symbolic(&g, &[Some(2)]);
        let r = g.block(g.top()).returns[0];
        let env = |_v: DimVar| Some(3i64);
        let sym_shape = sym.shape(r).unwrap();
        let conc_shape = conc.concrete(r).unwrap();
        for (sd, cd) in sym_shape.iter().zip(&conc_shape) {
            assert!(sd.admits(cd.unwrap(), &env), "{sd} should admit {cd:?}");
        }
    }
}
