//! Structural and scoping verification of graphs.

use std::error::Error;
use std::fmt;

use crate::graph::{BlockId, Graph, NodeId, ValueId};
use crate::ops::Op;
use crate::types::Type;

/// The class of invariant a [`VerifyError`] reports, so tooling (the lint
/// crate, the pass sanitizer) can pattern-match on failures instead of
/// parsing the rendered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VerifyErrorKind {
    /// An operand or return references a value id the graph never created.
    DanglingValue,
    /// An operand is defined after (or lexically outside) its use.
    OperandOutOfScope,
    /// `prim::Constant` with inputs or the wrong output count.
    BadConstant,
    /// `prim::If` arity/typing/block-shape violation.
    BadIf,
    /// `prim::Loop` deviates from the TorchScript convention.
    BadLoop,
    /// Mutation arity, receiver type, or output count violation.
    BadMutation,
    /// `immut::access` / view arity mismatch.
    BadView,
    /// `immut::assign` arity mismatch.
    BadAssign,
    /// `tssa::update` is not 2-in 0-out.
    BadUpdate,
    /// `prim::FusionGroup` block shape violation.
    BadFusionGroup,
    /// `prim::ParallelMap` block/trip-count violation.
    BadParallelMap,
    /// A block return references a value defined in a non-enclosing block.
    ReturnOutOfScope,
}

/// Error produced by [`Graph::verify`].
///
/// Structured: `kind` names the violated invariant and `node`/`value`/
/// `block` locate it, so passes and lints can match on failures; `message`
/// keeps the human-readable rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// The violated invariant.
    pub kind: VerifyErrorKind,
    /// Offending node, when the violation is attached to one.
    pub node: Option<NodeId>,
    /// Offending value (out-of-scope operand, dangling return, …).
    pub value: Option<ValueId>,
    /// Offending block, for return-scoping violations.
    pub block: Option<BlockId>,
    /// Human-readable description including the offending node.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir verification failed: {}", self.message)
    }
}

impl Error for VerifyError {}

impl Graph {
    fn err(&self, node: NodeId, kind: VerifyErrorKind, what: &str) -> VerifyError {
        VerifyError {
            kind,
            node: Some(node),
            value: None,
            block: None,
            message: format!(
                "node {} ({}): {what}",
                node.index(),
                self.node(node).op.name()
            ),
        }
    }

    fn check_value_in_scope(&self, v: ValueId, user: NodeId) -> Result<(), VerifyError> {
        if v.index() >= self.value_count() {
            let mut e = self.err(user, VerifyErrorKind::DanglingValue, "dangling value id");
            e.value = Some(v);
            return Err(e);
        }
        if !self.value_available_at(v, user) {
            let mut e = self.err(
                user,
                VerifyErrorKind::OperandOutOfScope,
                &format!("operand {} not in scope", self.value_name(v)),
            );
            e.value = Some(v);
            return Err(e);
        }
        Ok(())
    }

    /// Verify structural invariants:
    ///
    /// * every operand is defined before (and in scope at) its use;
    /// * `prim::If` has one bool input, two blocks, and block returns match
    ///   the node outputs in arity;
    /// * `prim::Loop` follows the TorchScript convention
    ///   (`inputs = (n, cond, carried…)`, `params = (i, carried…)`,
    ///   `returns = (cond, carried…)`, `outputs = carried…`);
    /// * mutation nodes have the documented arity and tensor receiver;
    /// * block returns reference in-scope values.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        for n in self.nodes_recursive(self.top()) {
            let node = self.node(n);
            for &inp in &node.inputs {
                self.check_value_in_scope(inp, n)?;
            }
            match &node.op {
                Op::Constant(_) if (!node.inputs.is_empty() || node.outputs.len() != 1) => {
                    return Err(self.err(
                        n,
                        VerifyErrorKind::BadConstant,
                        "constant must be 0-in 1-out",
                    ));
                }
                Op::If => {
                    if node.inputs.len() != 1 {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadIf,
                            "if takes exactly one condition",
                        ));
                    }
                    if self.value(node.inputs[0]).ty != Type::Bool {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadIf,
                            "if condition must be bool",
                        ));
                    }
                    if node.blocks.len() != 2 {
                        return Err(self.err(n, VerifyErrorKind::BadIf, "if must have two blocks"));
                    }
                    for &b in &node.blocks {
                        if !self.block(b).params.is_empty() {
                            return Err(self.err(
                                n,
                                VerifyErrorKind::BadIf,
                                "if blocks take no params",
                            ));
                        }
                        if self.block(b).returns.len() != node.outputs.len() {
                            return Err(self.err(
                                n,
                                VerifyErrorKind::BadIf,
                                "if block returns must match outputs",
                            ));
                        }
                    }
                }
                Op::Loop => {
                    if node.inputs.len() < 2 {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadLoop,
                            "loop needs (trip_count, cond, carried...)",
                        ));
                    }
                    if self.value(node.inputs[0]).ty != Type::Int {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadLoop,
                            "loop trip count must be int",
                        ));
                    }
                    if self.value(node.inputs[1]).ty != Type::Bool {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadLoop,
                            "loop initial condition must be bool",
                        ));
                    }
                    if node.blocks.len() != 1 {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadLoop,
                            "loop must have one body block",
                        ));
                    }
                    let carried = node.inputs.len() - 2;
                    let b = self.block(node.blocks[0]);
                    if b.params.len() != carried + 1 {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadLoop,
                            "loop body params must be (iter, carried...)",
                        ));
                    }
                    if b.params
                        .first()
                        .map(|&p| self.value(p).ty != Type::Int)
                        .unwrap_or(true)
                    {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadLoop,
                            "loop iteration param must be int",
                        ));
                    }
                    if b.returns.len() != carried + 1 {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadLoop,
                            "loop body returns must be (cond, carried...)",
                        ));
                    }
                    if node.outputs.len() != carried {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadLoop,
                            "loop outputs must match carried values",
                        ));
                    }
                }
                Op::Mutate(k) => {
                    if node.inputs.len() != k.arity() {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadMutation,
                            "mutation arity mismatch",
                        ));
                    }
                    if self.value(node.inputs[0]).ty != Type::Tensor {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadMutation,
                            "mutation receiver must be tensor",
                        ));
                    }
                    if node.outputs.len() > 1 {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadMutation,
                            "mutation has at most one (alias) output",
                        ));
                    }
                }
                Op::View(k) | Op::Access(k) if node.inputs.len() != 1 + k.extra_inputs() => {
                    return Err(self.err(
                        n,
                        VerifyErrorKind::BadView,
                        "view/access arity mismatch",
                    ));
                }
                Op::Assign(k) if node.inputs.len() != 2 + k.extra_inputs() => {
                    return Err(self.err(n, VerifyErrorKind::BadAssign, "assign arity mismatch"));
                }
                Op::Update if (node.inputs.len() != 2 || !node.outputs.is_empty()) => {
                    return Err(self.err(
                        n,
                        VerifyErrorKind::BadUpdate,
                        "update must be 2-in 0-out",
                    ));
                }
                Op::FusionGroup => {
                    if node.blocks.len() != 1 {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadFusionGroup,
                            "fusion group must have one block",
                        ));
                    }
                    let b = self.block(node.blocks[0]);
                    if b.params.len() != node.inputs.len() {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadFusionGroup,
                            "fusion group params must match inputs",
                        ));
                    }
                    if b.returns.len() != node.outputs.len() {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadFusionGroup,
                            "fusion group returns must match outputs",
                        ));
                    }
                }
                Op::ParallelMap { .. } => {
                    if node.blocks.len() != 1 {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadParallelMap,
                            "parallel map must have one block",
                        ));
                    }
                    if node.inputs.is_empty() || self.value(node.inputs[0]).ty != Type::Int {
                        return Err(self.err(
                            n,
                            VerifyErrorKind::BadParallelMap,
                            "parallel map needs int trip count first",
                        ));
                    }
                }
                _ => {}
            }
        }
        // Block returns must reference values in scope at the end of their
        // block; model this as availability at a virtual trailing position by
        // checking the def block is the block itself or an ancestor.
        for b in self.block_ids() {
            let blk = self.block(b);
            for &r in &blk.returns {
                if r.index() >= self.value_count() {
                    return Err(VerifyError {
                        kind: VerifyErrorKind::DanglingValue,
                        node: None,
                        value: Some(r),
                        block: Some(b),
                        message: format!("block {} returns dangling value", b.index()),
                    });
                }
                let db = self.def_block(r);
                if !self.block_is_ancestor(db, b) {
                    return Err(VerifyError {
                        kind: VerifyErrorKind::ReturnOutOfScope,
                        node: None,
                        value: Some(r),
                        block: Some(b),
                        message: format!(
                            "block {} return {} defined in non-enclosing block",
                            b.index(),
                            self.value_name(r)
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::VerifyErrorKind;
    use crate::graph::Graph;
    use crate::ops::{MutateKind, Op};
    use crate::types::{ConstValue, Type};

    #[test]
    fn errors_carry_kind_and_location() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let m = g.append(g.top(), Op::Mutate(MutateKind::Copy), &[x], &[Type::Tensor]);
        let err = g.verify().unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::BadMutation);
        assert_eq!(err.node, Some(m));
        // Display rendering is unchanged by the structured representation.
        assert_eq!(
            err.to_string(),
            format!(
                "ir verification failed: node {} (aten::copy_): mutation arity mismatch",
                m.index()
            )
        );
    }

    #[test]
    fn valid_graph_passes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let n = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let y = g.out(n);
        g.set_returns(g.top(), &[y]);
        assert!(g.verify().is_ok());
    }

    #[test]
    fn use_before_def_fails() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let a = g.append(g.top(), Op::Relu, &[x], &[Type::Tensor]);
        let b = g.append(g.top(), Op::Sigmoid, &[x], &[Type::Tensor]);
        let bv = g.out(b);
        // Rewrite a's operand to b's output: use before def.
        let av = g.out(a);
        g.replace_all_uses(x, bv);
        let _ = av;
        assert!(g.verify().is_err());
    }

    #[test]
    fn if_requires_bool_condition() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let iff = g.append(g.top(), Op::If, &[x], &[]);
        let tb = g.add_node_block(iff);
        let eb = g.add_node_block(iff);
        g.set_returns(tb, &[]);
        g.set_returns(eb, &[]);
        assert!(g.verify().is_err());
    }

    #[test]
    fn loop_conventions_enforced() {
        let mut g = Graph::new();
        let n = g.add_input("n", Type::Int);
        let t = g.constant_bool(true);
        let x = g.add_input("x", Type::Tensor);
        let lp = g.append(g.top(), Op::Loop, &[n, t, x], &[Type::Tensor]);
        let body = g.add_node_block(lp);
        let _i = g.add_block_param(body, Type::Int);
        let c = g.add_block_param(body, Type::Tensor);
        let cond = g.constant_in(body, ConstValue::Bool(true));
        g.set_returns(body, &[cond, c]);
        assert!(g.verify().is_ok());
        // Drop the carried return: arity violation.
        g.set_returns(body, &[cond]);
        assert!(g.verify().is_err());
    }

    #[test]
    fn mutation_arity_checked() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        g.append(g.top(), Op::Mutate(MutateKind::Copy), &[x], &[Type::Tensor]);
        assert!(g.verify().is_err());
    }

    #[test]
    fn inner_value_cannot_escape_via_returns() {
        let mut g = Graph::new();
        let c = g.constant_bool(true);
        let iff = g.append(g.top(), Op::If, &[c], &[Type::Tensor]);
        let tb = g.add_node_block(iff);
        let eb = g.add_node_block(iff);
        let z = g.append(tb, Op::Zeros { shape: vec![1] }, &[], &[Type::Tensor]);
        let zv = g.out(z);
        g.set_returns(tb, &[zv]);
        g.set_returns(eb, &[zv]); // defined in sibling block: out of scope
        assert!(g.verify().is_err());
    }
}
