//! Printer/parser round-trip over (nearly) the whole operator surface.

use tssa_ir::{parse_graph, ConstValue, Graph, MutateKind, Op, ScalarType, Type, ViewKind};

fn roundtrip(g: &Graph) {
    let printed = g.to_string();
    let reparsed = parse_graph(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
    assert_eq!(printed, reparsed.to_string(), "round-trip must be stable");
    assert!(reparsed.verify().is_ok(), "{printed}");
}

#[test]
fn kitchen_sink_ops_round_trip() {
    let mut g = Graph::new();
    let x = g.add_input("x", Type::Tensor);
    let y = g.add_input("y", Type::Tensor);
    let t = g.top();
    let mut last = x;
    let unary_ops = [
        Op::Neg,
        Op::Relu,
        Op::Sigmoid,
        Op::Tanh,
        Op::Exp,
        Op::Log,
        Op::Sqrt,
        Op::Abs,
        Op::LogicalNot,
        Op::CloneOp,
        Op::Contiguous,
        Op::ZerosLike,
        Op::OnesLike,
        Op::Softmax { dim: 1 },
        Op::Cumsum { dim: 0 },
        Op::Reshape { shape: vec![-1] },
        Op::Cast {
            dtype: ScalarType::I64,
        },
        Op::Cast {
            dtype: ScalarType::Bool,
        },
        Op::Cast {
            dtype: ScalarType::F32,
        },
        Op::SumDim {
            dim: 0,
            keepdim: true,
        },
        Op::MeanDim {
            dim: 1,
            keepdim: false,
        },
        Op::MaxDim {
            dim: 0,
            keepdim: false,
        },
        Op::MinDim {
            dim: 0,
            keepdim: true,
        },
        Op::ArgmaxDim {
            dim: 0,
            keepdim: false,
        },
    ];
    for op in unary_ops {
        let n = g.append(t, op, &[x], &[Type::Tensor]);
        last = g.out(n);
    }
    let binary_ops = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Maximum,
        Op::Minimum,
        Op::Pow,
        Op::Gt,
        Op::Lt,
        Op::Ge,
        Op::Le,
        Op::EqElem,
        Op::LogicalAnd,
        Op::LogicalOr,
        Op::Matmul,
        Op::Bmm,
        Op::Concat { dim: 0 },
        Op::Stack { dim: 1 },
        Op::Gather { dim: 0 },
        Op::IndexSelect { dim: 1 },
        Op::BroadcastLike,
    ];
    for op in binary_ops {
        let n = g.append(t, op, &[x, y], &[Type::Tensor]);
        last = g.out(n);
    }
    // Views and their immutable twins.
    let i = g.constant_int(0);
    let f = g.constant_float(0.5);
    for kind in [
        ViewKind::Permute { perm: vec![1, 0] },
        ViewKind::Transpose { dim0: 0, dim1: 1 },
        ViewKind::Unsqueeze { dim: 0 },
        ViewKind::Squeeze { dim: 0 },
        ViewKind::Expand { shape: vec![2, -1] },
        ViewKind::ViewShape { shape: vec![-1] },
    ] {
        g.append(t, Op::View(kind.clone()), &[x], &[Type::Tensor]);
        g.append(t, Op::Access(kind.clone()), &[x], &[Type::Tensor]);
        g.append(t, Op::Assign(kind), &[x, y], &[Type::Tensor]);
    }
    g.append(
        t,
        Op::View(ViewKind::Select { dim: 0 }),
        &[x, i],
        &[Type::Tensor],
    );
    g.append(
        t,
        Op::Access(ViewKind::SliceView { dim: 1 }),
        &[x, i, i, i],
        &[Type::Tensor],
    );
    // Mutations (each returns its alias).
    for kind in [
        MutateKind::Relu,
        MutateKind::Sigmoid,
        MutateKind::Tanh,
        MutateKind::Exp,
        MutateKind::Neg,
    ] {
        g.append(t, Op::Mutate(kind), &[x], &[Type::Tensor]);
    }
    for kind in [
        MutateKind::Copy,
        MutateKind::Add,
        MutateKind::Sub,
        MutateKind::Mul,
        MutateKind::Div,
    ] {
        g.append(t, Op::Mutate(kind), &[x, y], &[Type::Tensor]);
    }
    g.append(t, Op::Mutate(MutateKind::Fill), &[x, f], &[Type::Tensor]);
    g.append(
        t,
        Op::Mutate(MutateKind::Clamp),
        &[x, f, f],
        &[Type::Tensor],
    );
    // Creation + scalar ops.
    g.append(t, Op::Zeros { shape: vec![2, 2] }, &[], &[Type::Tensor]);
    g.append(t, Op::Ones { shape: vec![3] }, &[], &[Type::Tensor]);
    g.append(t, Op::Full { shape: vec![4] }, &[f], &[Type::Tensor]);
    let n5 = g.constant_int(5);
    g.append(t, Op::Arange, &[n5], &[Type::Tensor]);
    g.append(t, Op::FullLike, &[x, f], &[Type::Tensor]);
    g.append(t, Op::Size { dim: 0 }, &[x], &[Type::Int]);
    g.append(t, Op::ItemFloat, &[x], &[Type::Float]);
    g.append(t, Op::ItemInt, &[x], &[Type::Int]);
    g.append(t, Op::ItemBool, &[x], &[Type::Bool]);
    let c = g.constant(ConstValue::IntList(vec![1, -2, 3]));
    let lst = g.append(
        t,
        Op::ListConstruct,
        &[x, y],
        &[Type::List(Box::new(Type::Tensor))],
    );
    let lv = g.out(lst);
    g.append(t, Op::ListUnpack, &[lv], &[Type::Tensor, Type::Tensor]);
    let _ = c;
    g.set_returns(t, &[last]);
    assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
    roundtrip(&g);
}

#[test]
fn scalar_ops_round_trip() {
    let mut g = Graph::new();
    let a = g.add_input("a", Type::Int);
    let b = g.add_input("b", Type::Int);
    let t = g.top();
    let int_ops = [Op::IntAdd, Op::IntSub, Op::IntMul, Op::IntDiv, Op::IntMod];
    for op in int_ops {
        g.append(t, op, &[a, b], &[Type::Int]);
    }
    let cmp_ops = [
        Op::IntLt,
        Op::IntLe,
        Op::IntGt,
        Op::IntGe,
        Op::IntEq,
        Op::IntNe,
    ];
    let mut bools = Vec::new();
    for op in cmp_ops {
        let n = g.append(t, op, &[a, b], &[Type::Bool]);
        bools.push(g.out(n));
    }
    g.append(t, Op::BoolAnd, &[bools[0], bools[1]], &[Type::Bool]);
    g.append(t, Op::BoolOr, &[bools[2], bools[3]], &[Type::Bool]);
    g.append(t, Op::BoolNot, &[bools[4]], &[Type::Bool]);
    let fa = g.append(t, Op::IntToFloat, &[a], &[Type::Float]);
    let fav = g.out(fa);
    for op in [Op::FloatAdd, Op::FloatSub, Op::FloatMul, Op::FloatDiv] {
        g.append(t, op, &[fav, fav], &[Type::Float]);
    }
    g.append(t, Op::FloatNeg, &[fav], &[Type::Float]);
    g.append(t, Op::FloatLt, &[fav, fav], &[Type::Bool]);
    g.append(t, Op::FloatGt, &[fav, fav], &[Type::Bool]);
    g.append(t, Op::IntNeg, &[a], &[Type::Int]);
    g.set_returns(t, &[bools[5]]);
    assert!(g.verify().is_ok());
    roundtrip(&g);
}

#[test]
fn fusion_and_parallel_map_round_trip() {
    let mut g = Graph::new();
    let x = g.add_input("x", Type::Tensor);
    let n = g.add_input("n", Type::Int);
    let t = g.top();
    let group = g.append(t, Op::FusionGroup, &[x], &[Type::Tensor]);
    let body = g.add_node_block(group);
    let p = g.add_block_param(body, Type::Tensor);
    let inner = g.append(body, Op::Relu, &[p], &[Type::Tensor]);
    let iv = g.out(inner);
    g.set_returns(body, &[iv]);
    let gv = g.out(group);

    let pm = g.append(t, Op::ParallelMap { dim: 0 }, &[n, gv], &[Type::Tensor]);
    let pb = g.add_node_block(pm);
    let i = g.add_block_param(pb, Type::Int);
    let sel = g.append(
        pb,
        Op::Access(ViewKind::Select { dim: 0 }),
        &[gv, i],
        &[Type::Tensor],
    );
    let sv = g.out(sel);
    g.set_returns(pb, &[sv]);
    let out = g.out(pm);
    g.set_returns(t, &[out]);
    assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
    roundtrip(&g);
}
