//! Fusion edge cases: legality boundaries, group input/output plumbing, and
//! interaction between vertical fusion and parallelization.

use tssa_fusion::{fuse_vertical, parallelize_loops, FusionConfig};
use tssa_ir::{parse_graph, Op};

#[test]
fn update_nodes_block_fusion() {
    // Mid-conversion graphs contain tssa::update annotations; they are not
    // fusable and must not be swallowed into groups.
    let mut g = parse_graph(
        "graph(%x : Tensor):
           %a : Tensor = aten::relu(%x)
           tssa::update(%a, %x)
           %b : Tensor = aten::sigmoid(%a)
           %c : Tensor = aten::tanh(%b)
           return (%c)",
    )
    .unwrap();
    fuse_vertical(&mut g, &FusionConfig::default());
    assert!(g.to_string().contains("tssa::update"), "{g}");
}

#[test]
fn group_with_only_external_consumers_keeps_all_outputs() {
    let mut g = parse_graph(
        "graph(%x : Tensor, %y : Tensor):
           %a : Tensor = aten::relu(%x)
           %b : Tensor = aten::sigmoid(%x)
           %c : Tensor = aten::tanh(%x)
           %m1 : Tensor = aten::matmul(%a, %y)
           %m2 : Tensor = aten::matmul(%b, %y)
           %m3 : Tensor = aten::matmul(%c, %y)
           return (%m1, %m2, %m3)",
    )
    .unwrap();
    assert_eq!(fuse_vertical(&mut g, &FusionConfig::default()), 1);
    let group = g
        .nodes_recursive(g.top())
        .into_iter()
        .find(|&n| g.node(n).op == Op::FusionGroup)
        .unwrap();
    assert_eq!(g.node(group).outputs.len(), 3);
    assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
}

#[test]
fn duplicate_inputs_are_deduplicated() {
    let mut g = parse_graph(
        "graph(%x : Tensor):
           %a : Tensor = aten::mul(%x, %x)
           %b : Tensor = aten::add(%a, %x)
           return (%b)",
    )
    .unwrap();
    assert_eq!(fuse_vertical(&mut g, &FusionConfig::default()), 1);
    let group = g
        .nodes_recursive(g.top())
        .into_iter()
        .find(|&n| g.node(n).op == Op::FusionGroup)
        .unwrap();
    assert_eq!(g.node(group).inputs.len(), 1, "{g}");
}

#[test]
fn min_group_size_respected() {
    let mut g = parse_graph(
        "graph(%x : Tensor, %y : Tensor):
           %a : Tensor = aten::relu(%x)
           %b : Tensor = aten::sigmoid(%a)
           %m : Tensor = aten::matmul(%b, %y)
           return (%m)",
    )
    .unwrap();
    let strict = FusionConfig {
        min_group_size: 3,
        fuse_access_assign: true,
    };
    assert_eq!(fuse_vertical(&mut g, &strict), 0);
}

#[test]
fn parallelized_body_fuses_afterwards() {
    let mut g = parse_graph(
        "graph(%b0 : Tensor, %n : int):
           %t : bool = prim::Constant[value=true]()
           %one : float = prim::Constant[value=1.0]()
           %out : Tensor = prim::Loop(%n, %t, %b0)
             block0(%i : int, %c : Tensor):
               %bi : Tensor = immut::select[dim=0](%c, %i)
               %w1 : Tensor = aten::sigmoid(%bi)
               %w2 : Tensor = aten::add_scalar(%w1, %one)
               %c2 : Tensor = immut::assign_select[dim=0](%c, %w2, %i)
               -> (%t, %c2)
           return (%out)",
    )
    .unwrap();
    assert_eq!(parallelize_loops(&mut g), 1);
    let groups = fuse_vertical(&mut g, &FusionConfig::default());
    assert!(groups >= 1);
    assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
    // The access + two elementwise ops live inside one group inside the map.
    let text = g.to_string();
    assert!(text.contains("prim::ParallelMap"), "{text}");
    assert!(text.contains("prim::FusionGroup"), "{text}");
}

#[test]
fn multiple_carried_tensors_stay_sequential() {
    let mut g = parse_graph(
        "graph(%a0 : Tensor, %b0 : Tensor, %n : int):
           %t : bool = prim::Constant[value=true]()
           %oa : Tensor, %ob : Tensor = prim::Loop(%n, %t, %a0, %b0)
             block0(%i : int, %a : Tensor, %b : Tensor):
               %ai : Tensor = immut::select[dim=0](%a, %i)
               %w : Tensor = aten::sigmoid(%ai)
               %a2 : Tensor = immut::assign_select[dim=0](%a, %w, %i)
               %bi : Tensor = immut::select[dim=0](%b, %i)
               %w2 : Tensor = aten::tanh(%bi)
               %b2 : Tensor = immut::assign_select[dim=0](%b, %w2, %i)
               -> (%t, %a2, %b2)
           return (%oa, %ob)",
    )
    .unwrap();
    // Conservatively sequential: the pattern matcher requires exactly one
    // carried tensor (each is independent here, but proving that is future
    // work the paper does not claim either).
    assert_eq!(parallelize_loops(&mut g), 0);
}

#[test]
fn assign_with_wrong_return_position_not_parallelized() {
    // The assign result is computed but the loop carries the *old* version:
    // the pattern must not fire.
    let mut g = parse_graph(
        "graph(%b0 : Tensor, %n : int):
           %t : bool = prim::Constant[value=true]()
           %one : float = prim::Constant[value=1.0]()
           %out : Tensor = prim::Loop(%n, %t, %b0)
             block0(%i : int, %c : Tensor):
               %bi : Tensor = immut::select[dim=0](%c, %i)
               %w : Tensor = aten::add_scalar(%bi, %one)
               %c2 : Tensor = immut::assign_select[dim=0](%c, %w, %i)
               -> (%t, %c)
           return (%out)",
    )
    .unwrap();
    assert_eq!(parallelize_loops(&mut g), 0);
}

#[test]
fn body_reading_the_new_version_is_not_parallelized() {
    // Regression (found by property testing): the assign's result is read
    // again inside the body (a re-access left over after carry pruning).
    // Batched execution would make that read see the initial tensor, so the
    // pattern must bail.
    let mut g = parse_graph(
        "graph(%b0 : Tensor, %n : int, %j : int):
           %t : bool = prim::Constant[value=true]()
           %out : Tensor = prim::Loop(%n, %t, %b0)
             block0(%i : int, %c : Tensor):
               %bi : Tensor = immut::select[dim=0](%c, %i)
               %w : Tensor = aten::sigmoid(%bi)
               %c2 : Tensor = immut::assign_select[dim=0](%c, %w, %i)
               %reread : Tensor = immut::select[dim=0](%c2, %j)
               -> (%t, %c2)
           return (%out)",
    )
    .unwrap();
    assert_eq!(parallelize_loops(&mut g), 0, "{g}");
}
