//! Horizontal parallelization (§4.2.2): rewrite loops whose iterations only
//! touch their own induction-indexed slice into a single batched kernel.

use std::collections::HashMap;

use tssa_ir::{ConstValue, Graph, NodeId, Op, Type, Use, ValueId, ViewKind};

use crate::transplant::{remove_subtree, transplant};

/// Rewrite every eligible `prim::Loop` into a `prim::ParallelMap`.
/// Returns the number of loops parallelized.
///
/// A loop is eligible when:
///
/// * it is a plain `for` loop (initial and carried conditions are the
///   constant `true`);
/// * it carries exactly one tensor;
/// * inside the body, the carried tensor is used only as
///   `immut::select(c, dim, i)` reads and exactly one
///   `immut::assign_select(c, src, dim, i)` whose result is the carried
///   return — i.e. iteration `i` reads and writes slice `i` only.
///
/// Those conditions make iterations independent, so all of them can execute
/// as one kernel: the paper's horizontal optimization, only legal after
/// functionalization has removed the loop-carried mutation.
pub fn parallelize_loops(g: &mut Graph) -> usize {
    let mut count = 0;
    // Repeatedly scan: transforming a loop invalidates the node snapshot.
    loop {
        let target = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| !g.is_removed(n) && g.node(n).op == Op::Loop && eligible(g, n));
        match target {
            Some(n) => {
                rewrite(g, n);
                count += 1;
            }
            None => return count,
        }
    }
}

fn const_bool_true(g: &Graph, v: ValueId) -> bool {
    match g.def_node(v) {
        Some(n) => g.node(n).op == Op::Constant(ConstValue::Bool(true)),
        None => false,
    }
}

/// The (reads, write) pattern of the carried tensor, if eligible.
struct Pattern {
    dim: i64,
    assign: NodeId,
}

fn match_pattern(g: &Graph, lp: NodeId) -> Option<Pattern> {
    let node = g.node(lp);
    let body = node.blocks[0];
    let params = &g.block(body).params;
    let i = params[0];
    let c = params[1];
    let carried_ret = g.block(body).returns[1];

    let mut dim: Option<i64> = None;
    let mut assign: Option<NodeId> = None;
    for site in g.uses(c) {
        let Use::Operand {
            node: user,
            operand,
        } = site
        else {
            return None; // carried tensor escapes via returns directly
        };
        // Users must be direct children of the body block.
        if g.node(user).owner != body {
            return None;
        }
        match (g.node(user).op.clone(), operand) {
            (Op::Access(ViewKind::Select { dim: d }), 0) => {
                if g.node(user).inputs[1] != i {
                    return None;
                }
                if *dim.get_or_insert(d) != d {
                    return None;
                }
            }
            (Op::Assign(ViewKind::Select { dim: d }), 0) => {
                if assign.is_some() || g.node(user).inputs[2] != i {
                    return None;
                }
                let out = g.node(user).outputs[0];
                if out != carried_ret {
                    return None;
                }
                // The new version must not be read inside the body: its only
                // use is the carried return (iteration i's write is invisible
                // to iteration i once the loop becomes a batched kernel).
                let only_return = g
                    .uses(out)
                    .iter()
                    .all(|u| matches!(u, Use::Return { block: b2, index: 1 } if *b2 == body));
                if !only_return {
                    return None;
                }
                if *dim.get_or_insert(d) != d {
                    return None;
                }
                assign = Some(user);
            }
            _ => return None,
        }
    }
    let assign = assign?;
    Some(Pattern {
        dim: dim.expect("set alongside assign"),
        assign,
    })
}

fn eligible(g: &Graph, lp: NodeId) -> bool {
    let node = g.node(lp);
    // (trip, cond, one carried tensor) / one output
    if node.inputs.len() != 3 || node.outputs.len() != 1 {
        return false;
    }
    if g.value(node.inputs[2]).ty != Type::Tensor {
        return false;
    }
    if !const_bool_true(g, node.inputs[1]) {
        return false;
    }
    let body = node.blocks[0];
    if !const_bool_true(g, g.block(body).returns[0]) {
        return false;
    }
    match_pattern(g, lp).is_some()
}

fn rewrite(g: &mut Graph, lp: NodeId) {
    let pattern = match_pattern(g, lp).expect("checked by eligible");
    let node = g.node(lp).clone();
    let body = node.blocks[0];
    let trip = node.inputs[0];
    let init = node.inputs[2];
    let i_old = g.block(body).params[0];
    let c_old = g.block(body).params[1];
    let src = g.node(pattern.assign).inputs[1];

    let pm = g.insert_before(
        lp,
        Op::ParallelMap { dim: pattern.dim },
        &[trip, init],
        &[Type::Tensor],
    );
    let pm_body = g.add_node_block(pm);
    let i_new = g.add_block_param(pm_body, Type::Int);

    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    map.insert(i_old, i_new);
    // Iteration i's reads of slice i see the initial tensor: no other
    // iteration writes that slice, and the write happens after the reads.
    map.insert(c_old, init);

    let members: Vec<NodeId> = g
        .block(body)
        .nodes
        .iter()
        .copied()
        .filter(|&n| n != pattern.assign)
        .collect();
    transplant(g, &members, pm_body, &mut map);
    let ret = *map.get(&src).unwrap_or(&src);
    g.set_returns(pm_body, &[ret]);

    let pm_out = g.out(pm);
    g.replace_all_uses(node.outputs[0], pm_out);
    remove_subtree(g, lp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::parse_graph;

    /// The functionalized Figure 4 loop: b[i] = b[i] + 1 over rows.
    fn figure4_functionalized() -> Graph {
        parse_graph(
            "graph(%b0 : Tensor, %n : int):
               %b : Tensor = aten::clone(%b0)
               %t : bool = prim::Constant[value=true]()
               %one : float = prim::Constant[value=1.0]()
               %out : Tensor = prim::Loop(%n, %t, %b)
                 block0(%i : int, %c : Tensor):
                   %bi : Tensor = immut::select[dim=0](%c, %i)
                   %w : Tensor = aten::add_scalar(%bi, %one)
                   %c2 : Tensor = immut::assign_select[dim=0](%c, %w, %i)
                   -> (%t, %c2)
               return (%out)",
        )
        .unwrap()
    }

    #[test]
    fn parallelizes_independent_slice_loop() {
        let mut g = figure4_functionalized();
        assert_eq!(parallelize_loops(&mut g), 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        let text = g.to_string();
        assert!(text.contains("prim::ParallelMap[dim=0]"), "{text}");
        assert!(!text.contains("prim::Loop"), "{text}");
        // The body reads the initial tensor, not a carried param.
        let pm = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| matches!(g.node(n).op, Op::ParallelMap { .. }))
            .unwrap();
        let body = g.node(pm).blocks[0];
        assert_eq!(g.block(body).params.len(), 1);
        assert_eq!(g.block(body).returns.len(), 1);
    }

    #[test]
    fn sequential_dependency_is_not_parallelized() {
        // h = f(h) carried whole: no slice pattern.
        let mut g = parse_graph(
            "graph(%h0 : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %out : Tensor = prim::Loop(%n, %t, %h0)
                 block0(%i : int, %h : Tensor):
                   %h2 : Tensor = aten::tanh(%h)
                   -> (%t, %h2)
               return (%out)",
        )
        .unwrap();
        assert_eq!(parallelize_loops(&mut g), 0);
    }

    #[test]
    fn cross_slice_read_is_not_parallelized() {
        // Reads slice j (another loop-level value), not exactly i: bail.
        let mut g = parse_graph(
            "graph(%b0 : Tensor, %n : int, %j : int):
               %t : bool = prim::Constant[value=true]()
               %one : float = prim::Constant[value=1.0]()
               %out : Tensor = prim::Loop(%n, %t, %b0)
                 block0(%i : int, %c : Tensor):
                   %bj : Tensor = immut::select[dim=0](%c, %j)
                   %w : Tensor = aten::add_scalar(%bj, %one)
                   %c2 : Tensor = immut::assign_select[dim=0](%c, %w, %i)
                   -> (%t, %c2)
               return (%out)",
        )
        .unwrap();
        assert_eq!(parallelize_loops(&mut g), 0);
    }

    #[test]
    fn while_loops_are_not_parallelized() {
        let mut g = parse_graph(
            "graph(%b0 : Tensor, %n : int, %cond : bool):
               %one : float = prim::Constant[value=1.0]()
               %out : Tensor = prim::Loop(%n, %cond, %b0)
                 block0(%i : int, %c : Tensor):
                   %bi : Tensor = immut::select[dim=0](%c, %i)
                   %w : Tensor = aten::add_scalar(%bi, %one)
                   %c2 : Tensor = immut::assign_select[dim=0](%c, %w, %i)
                   -> (%cond, %c2)
               return (%out)",
        )
        .unwrap();
        assert_eq!(parallelize_loops(&mut g), 0);
    }

    #[test]
    fn composes_with_vertical_fusion() {
        let mut g = figure4_functionalized();
        assert_eq!(parallelize_loops(&mut g), 1);
        let groups = crate::fuse_vertical(&mut g, &crate::FusionConfig::default());
        assert!(groups >= 1, "{g}");
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        let text = g.to_string();
        // The fused kernel lives inside the parallel map body.
        let pm_pos = text.find("prim::ParallelMap").unwrap();
        let fg_pos = text.find("prim::FusionGroup").unwrap();
        assert!(fg_pos > pm_pos, "{text}");
    }
}
