//! Cloning nodes into another block with value remapping — the mechanism
//! behind outlining fusion groups and parallel-map bodies.

use std::collections::HashMap;

use tssa_ir::{BlockId, Graph, NodeId, Type, ValueId};

/// Clone `nodes` (in order) into `dest`, remapping operands through `map`.
/// Outputs of cloned nodes are added to `map` so later nodes and the caller
/// can reference them. Nested blocks are cloned recursively.
pub(crate) fn transplant(
    g: &mut Graph,
    nodes: &[NodeId],
    dest: BlockId,
    map: &mut HashMap<ValueId, ValueId>,
) {
    for &n in nodes {
        let node = g.node(n).clone();
        let inputs: Vec<ValueId> = node
            .inputs
            .iter()
            .map(|v| *map.get(v).unwrap_or(v))
            .collect();
        let out_types: Vec<Type> = node
            .outputs
            .iter()
            .map(|&o| g.value(o).ty.clone())
            .collect();
        let new = g.append(dest, node.op.clone(), &inputs, &out_types);
        for (i, &old_out) in node.outputs.iter().enumerate() {
            let new_out = g.node(new).outputs[i];
            map.insert(old_out, new_out);
        }
        for &b in &node.blocks {
            let nb = g.add_node_block(new);
            let params: Vec<ValueId> = g.block(b).params.clone();
            for &p in &params {
                let ty = g.value(p).ty.clone();
                let np = g.add_block_param(nb, ty);
                map.insert(p, np);
            }
            let inner: Vec<NodeId> = g.block(b).nodes.clone();
            transplant(g, &inner, nb, map);
            let rets: Vec<ValueId> = g
                .block(b)
                .returns
                .iter()
                .map(|v| *map.get(v).unwrap_or(v))
                .collect();
            g.set_returns(nb, &rets);
        }
    }
}

/// Remove `node` and everything nested inside it (clearing nested returns so
/// orphaned blocks do not pin values).
pub(crate) fn remove_subtree(g: &mut Graph, n: NodeId) {
    let blocks = g.node(n).blocks.clone();
    for b in blocks {
        g.set_returns(b, &[]);
        let nodes = g.block(b).nodes.clone();
        for inner in nodes {
            remove_subtree(g, inner);
        }
    }
    g.remove_node(n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::{parse_graph, Op};

    #[test]
    fn transplant_remaps_chains() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %a : Tensor = aten::relu(%x)
               %b : Tensor = aten::sigmoid(%a)
               return (%b)",
        )
        .unwrap();
        let nodes = g.block(g.top()).nodes.clone();
        // Clone the chain into a fusion group body.
        let x = g.block(g.top()).params[0];
        let group = g.append(g.top(), Op::FusionGroup, &[x], &[Type::Tensor]);
        let body = g.add_node_block(group);
        let p = g.add_block_param(body, Type::Tensor);
        let mut map = HashMap::new();
        map.insert(x, p);
        transplant(&mut g, &nodes, body, &mut map);
        assert_eq!(g.block(body).nodes.len(), 2);
        // Inner relu reads the param, not the outer input.
        let inner_relu = g.block(body).nodes[0];
        assert_eq!(g.node(inner_relu).inputs[0], p);
        // Inner sigmoid reads the inner relu.
        let inner_sig = g.block(body).nodes[1];
        assert_eq!(g.def_node(g.node(inner_sig).inputs[0]), Some(inner_relu));
    }
}
