//! The fusion transformations as [`Pass`] implementations, so pipelines
//! can schedule them through a [`tssa_core::PassManager`] and attribute
//! their time and graph deltas alongside the conversion and cleanup passes.

use tssa_core::Pass;
use tssa_ir::Graph;

use crate::vertical::{fuse_vertical, FusionConfig};

/// Vertical fusion ([`fuse_vertical`]) as a [`Pass`]. The rewrite count is
/// the number of `prim::FusionGroup` nodes formed.
#[derive(Debug, Clone, Default)]
pub struct VerticalFusion {
    /// Thresholds and access/assign handling for group formation.
    pub config: FusionConfig,
    groups: usize,
}

impl VerticalFusion {
    /// A vertical-fusion pass with the given configuration.
    pub fn new(config: FusionConfig) -> VerticalFusion {
        VerticalFusion { config, groups: 0 }
    }
}

impl Pass for VerticalFusion {
    fn name(&self) -> &'static str {
        "fuse-vertical"
    }

    fn run(&mut self, g: &mut Graph) -> usize {
        self.groups = fuse_vertical(g, &self.config);
        self.groups
    }

    fn counters(&self) -> Vec<(&'static str, i64)> {
        vec![("fusion_groups", self.groups as i64)]
    }
}

/// Horizontal loop parallelization ([`crate::parallelize_loops`]) as a
/// [`Pass`]. The rewrite count is the number of loops converted to
/// `prim::ParallelMap`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelizeLoops {
    loops: usize,
}

impl Pass for ParallelizeLoops {
    fn name(&self) -> &'static str {
        "parallelize-loops"
    }

    fn run(&mut self, g: &mut Graph) -> usize {
        self.loops = crate::parallelize_loops(g);
        self.loops
    }

    fn counters(&self) -> Vec<(&'static str, i64)> {
        vec![("parallel_loops", self.loops as i64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_core::PassManager;
    use tssa_ir::parse_graph;
    use tssa_obs::TraceScope;

    #[test]
    fn vertical_fusion_pass_matches_free_function() {
        let text = "graph(%x : Tensor):
               %a : Tensor = aten::sigmoid(%x)
               %b : Tensor = aten::mul(%a, %x)
               %c : Tensor = aten::relu(%b)
               return (%c)";
        let mut g1 = parse_graph(text).unwrap();
        let mut g2 = parse_graph(text).unwrap();
        let direct = fuse_vertical(&mut g1, &FusionConfig::default());
        let mut pm = PassManager::new().with(VerticalFusion::new(FusionConfig::default()));
        let runs = pm.run(&mut g2, &TraceScope::disabled());
        assert_eq!(runs[0].name, "fuse-vertical");
        assert_eq!(runs[0].rewrites, direct);
        assert_eq!(runs[0].counters, vec![("fusion_groups", direct as i64)]);
        assert_eq!(g1.to_string(), g2.to_string());
    }
}
