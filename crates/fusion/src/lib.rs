//! Kernel fusion on TensorSSA form (§4.2 of the paper).
//!
//! Two transformations exploit the pure data flow produced by the TensorSSA
//! conversion:
//!
//! * **Vertical optimization** ([`fuse_vertical`]) — maximal consecutive
//!   regions of elementwise / `immut::access` / `immut::assign` operators are
//!   collapsed into `prim::FusionGroup` nodes, each executed by the backend
//!   as a single kernel launch with no intermediate buffers.
//! * **Horizontal parallelization** ([`parallelize_loops`]) — a loop whose
//!   iterations only read and write their own induction-indexed slice of the
//!   carried tensor is rewritten into a `prim::ParallelMap`, a single batched
//!   kernel covering all iterations.
//!
//! Both are *illegal* on imperative form: a mutation or aliasing view inside
//! the region could leak writes. That is precisely the optimization space the
//! functionalization unlocks.
//!
//! # Examples
//!
//! ```
//! use tssa_fusion::{fuse_vertical, FusionConfig};
//! use tssa_ir::parse_graph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = parse_graph(
//!     "graph(%x : Tensor):
//!        %a : Tensor = aten::sigmoid(%x)
//!        %b : Tensor = aten::mul(%a, %x)
//!        %c : Tensor = aten::relu(%b)
//!        return (%c)",
//! )?;
//! let groups = fuse_vertical(&mut g, &FusionConfig::default());
//! assert_eq!(groups, 1);
//! assert!(g.to_string().contains("prim::FusionGroup"));
//! # Ok(())
//! # }
//! ```

mod parallelize;
mod pass;
mod transplant;
mod vertical;

pub use parallelize::parallelize_loops;
pub use pass::{ParallelizeLoops, VerticalFusion};
pub use vertical::{fuse_vertical, FusionConfig};
