//! Vertical fusion (§4.2.1): collapse consecutive pure elementwise /
//! access / assign regions into `prim::FusionGroup` kernels.

use std::collections::{HashMap, HashSet};

use tssa_ir::{BlockId, Graph, NodeId, Op, Type, ValueId};

use crate::transplant::transplant;

/// Controls which operators may enter a fusion group.
///
/// The TensorSSA pipeline fuses access/assign operators (its headline
/// ability); the NNC-like baseline pipeline models mainstream compilers by
/// treating them as fusion barriers.
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// Minimum number of fusable nodes to justify a group (default 2).
    pub min_group_size: usize,
    /// Whether `immut::access` / `immut::assign` may join groups.
    pub fuse_access_assign: bool,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            min_group_size: 2,
            fuse_access_assign: true,
        }
    }
}

fn fusable(op: &Op, cfg: &FusionConfig) -> bool {
    if op.is_elementwise() {
        return true;
    }
    match op {
        Op::FullLike | Op::BroadcastLike | Op::ZerosLike | Op::OnesLike => true,
        Op::Access(_) | Op::Assign(_) => cfg.fuse_access_assign,
        _ => false,
    }
}

/// Pure host-scalar producers that can be hoisted out of a fusion region
/// when their operands are defined before it.
fn transparent(op: &Op) -> bool {
    matches!(
        op,
        Op::Constant(_)
            | Op::IntAdd
            | Op::IntSub
            | Op::IntMul
            | Op::IntDiv
            | Op::IntMod
            | Op::IntNeg
            | Op::IntLt
            | Op::IntLe
            | Op::IntGt
            | Op::IntGe
            | Op::IntEq
            | Op::IntNe
            | Op::BoolAnd
            | Op::BoolOr
            | Op::BoolNot
            | Op::FloatAdd
            | Op::FloatSub
            | Op::FloatMul
            | Op::FloatDiv
            | Op::FloatNeg
            | Op::IntToFloat
            | Op::Size { .. }
    )
}

/// Fuse every block of the graph (recursively). Returns the number of
/// fusion groups created.
pub fn fuse_vertical(g: &mut Graph, cfg: &FusionConfig) -> usize {
    let top = g.top();
    fuse_block(g, top, cfg)
}

fn fuse_block(g: &mut Graph, block: BlockId, cfg: &FusionConfig) -> usize {
    let mut created = 0;
    // Recurse into nested blocks first so inner loop/if bodies get their own
    // groups before the outer scan.
    for n in g.block(block).nodes.clone() {
        for b in g.node(n).blocks.clone() {
            created += fuse_block(g, b, cfg);
        }
    }

    let mut run: Vec<NodeId> = Vec::new();
    let mut run_values: HashSet<ValueId> = HashSet::new();
    let mut hoists: Vec<NodeId> = Vec::new();
    let mut pending: Vec<(Vec<NodeId>, Vec<NodeId>)> = Vec::new();

    let flush = |run: &mut Vec<NodeId>,
                 run_values: &mut HashSet<ValueId>,
                 hoists: &mut Vec<NodeId>,
                 pending: &mut Vec<(Vec<NodeId>, Vec<NodeId>)>| {
        if run.len() >= cfg.min_group_size.max(1) && run.len() >= 2 {
            pending.push((std::mem::take(run), std::mem::take(hoists)));
        } else {
            run.clear();
            hoists.clear();
        }
        run_values.clear();
    };

    for n in g.block(block).nodes.clone() {
        if g.is_removed(n) {
            continue;
        }
        let node = g.node(n);
        if fusable(&node.op, cfg) {
            for &o in &node.outputs {
                run_values.insert(o);
            }
            run.push(n);
        } else if !run.is_empty()
            && transparent(&node.op)
            && node.inputs.iter().all(|v| !run_values.contains(v))
        {
            // Scalar helper independent of the run: hoist before the group.
            hoists.push(n);
        } else {
            flush(&mut run, &mut run_values, &mut hoists, &mut pending);
        }
    }
    flush(&mut run, &mut run_values, &mut hoists, &mut pending);

    for (members, hoists) in pending {
        build_group(g, &members, &hoists);
        created += 1;
    }
    created
}

fn build_group(g: &mut Graph, members: &[NodeId], hoists: &[NodeId]) {
    let anchor = members[0];
    for &h in hoists {
        g.move_node_before(h, anchor);
    }
    let member_set: HashSet<NodeId> = members.iter().copied().collect();
    let defined: HashSet<ValueId> = members
        .iter()
        .flat_map(|&m| g.node(m).outputs.clone())
        .collect();

    // External inputs, deduplicated in first-use order.
    let mut inputs: Vec<ValueId> = Vec::new();
    for &m in members {
        for &v in &g.node(m).inputs {
            if !defined.contains(&v) && !inputs.contains(&v) {
                inputs.push(v);
            }
        }
    }
    // Escaped outputs: used by a non-member node or any block returns.
    let mut escaped: Vec<ValueId> = Vec::new();
    for &v in &defined {
        let used_outside = g.uses(v).iter().any(|u| match u {
            tssa_ir::Use::Operand { node, .. } => !member_set.contains(node),
            tssa_ir::Use::Return { .. } => true,
        });
        if used_outside {
            escaped.push(v);
        }
    }
    escaped.sort();

    let out_types: Vec<Type> = escaped.iter().map(|&v| g.value(v).ty.clone()).collect();
    let group = g.insert_before(anchor, Op::FusionGroup, &inputs, &out_types);
    let body = g.add_node_block(group);
    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    for &inp in &inputs {
        let ty = g.value(inp).ty.clone();
        let p = g.add_block_param(body, ty);
        map.insert(inp, p);
    }
    transplant(g, members, body, &mut map);
    let rets: Vec<ValueId> = escaped.iter().map(|&v| map[&v]).collect();
    g.set_returns(body, &rets);

    for (i, &orig) in escaped.iter().enumerate() {
        let out = g.node(group).outputs[i];
        g.replace_all_uses(orig, out);
    }
    for &m in members {
        g.remove_node(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::parse_graph;

    #[test]
    fn fuses_elementwise_chain() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %y : Tensor):
               %a : Tensor = aten::add(%x, %y)
               %b : Tensor = aten::sigmoid(%a)
               %c : Tensor = aten::mul(%b, %x)
               return (%c)",
        )
        .unwrap();
        assert_eq!(fuse_vertical(&mut g, &FusionConfig::default()), 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        let groups: Vec<NodeId> = g
            .nodes_recursive(g.top())
            .into_iter()
            .filter(|&n| g.node(n).op == Op::FusionGroup)
            .collect();
        assert_eq!(groups.len(), 1);
        let body = g.node(groups[0]).blocks[0];
        assert_eq!(g.block(body).nodes.len(), 3);
        // Only the final value escapes.
        assert_eq!(g.node(groups[0]).outputs.len(), 1);
    }

    #[test]
    fn matmul_breaks_the_run() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %y : Tensor):
               %a : Tensor = aten::relu(%x)
               %b : Tensor = aten::sigmoid(%a)
               %m : Tensor = aten::matmul(%b, %y)
               %c : Tensor = aten::tanh(%m)
               %d : Tensor = aten::neg(%c)
               return (%d)",
        )
        .unwrap();
        assert_eq!(fuse_vertical(&mut g, &FusionConfig::default()), 2);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        assert!(g.to_string().contains("aten::matmul"));
    }

    #[test]
    fn access_assign_fused_only_when_enabled() {
        let src = "graph(%x : Tensor):
               %i : int = prim::Constant[value=0]()
               %v : Tensor = immut::select[dim=0](%x, %i)
               %w : Tensor = aten::add_scalar(%v, %f)
               %s : Tensor = immut::assign_select[dim=0](%x, %w, %i)
               return (%s)";
        let src = src.replace("%f", "%flt");
        let src = src.replace(
            "%i : int = prim::Constant[value=0]()",
            "%i : int = prim::Constant[value=0]()\n               %flt : float = prim::Constant[value=1.0]()",
        );
        let mut g = parse_graph(&src).unwrap();
        let mut g2 = g.clone();
        assert_eq!(fuse_vertical(&mut g, &FusionConfig::default()), 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        let nnc_like = FusionConfig {
            fuse_access_assign: false,
            ..FusionConfig::default()
        };
        assert_eq!(fuse_vertical(&mut g2, &nnc_like), 0);
    }

    #[test]
    fn scalar_constants_are_hoisted_through_runs() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %a : Tensor = aten::relu(%x)
               %f : float = prim::Constant[value=2.0]()
               %b : Tensor = aten::mul_scalar(%a, %f)
               return (%b)",
        )
        .unwrap();
        assert_eq!(fuse_vertical(&mut g, &FusionConfig::default()), 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        // The constant stays outside and feeds the group as an input.
        let group = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| g.node(n).op == Op::FusionGroup)
            .unwrap();
        assert_eq!(g.node(group).inputs.len(), 2);
    }

    #[test]
    fn fuses_inside_loop_bodies() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %a : Tensor = aten::relu(%c)
                   %b : Tensor = aten::sigmoid(%a)
                   -> (%t, %b)
               return (%o)",
        )
        .unwrap();
        assert_eq!(fuse_vertical(&mut g, &FusionConfig::default()), 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        let text = g.to_string();
        let loop_pos = text.find("prim::Loop").unwrap();
        let group_pos = text.find("prim::FusionGroup").unwrap();
        assert!(
            group_pos > loop_pos,
            "group must be inside the loop: {text}"
        );
    }

    #[test]
    fn single_node_runs_are_not_grouped() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %y : Tensor):
               %a : Tensor = aten::relu(%x)
               %m : Tensor = aten::matmul(%a, %y)
               %b : Tensor = aten::relu(%m)
               return (%b)",
        )
        .unwrap();
        assert_eq!(fuse_vertical(&mut g, &FusionConfig::default()), 0);
    }

    #[test]
    fn multiple_escaping_outputs() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %y : Tensor):
               %a : Tensor = aten::relu(%x)
               %b : Tensor = aten::sigmoid(%a)
               %m : Tensor = aten::matmul(%a, %b)
               return (%m)",
        )
        .unwrap();
        assert_eq!(fuse_vertical(&mut g, &FusionConfig::default()), 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        let group = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| g.node(n).op == Op::FusionGroup)
            .unwrap();
        assert_eq!(g.node(group).outputs.len(), 2);
    }
}
