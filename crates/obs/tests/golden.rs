//! Golden tests for the observability layer's two stable contracts:
//!
//! * **Sampler determinism** — head decisions are a pure function of
//!   `(seed, arrival order)`, so the kept-trace set is reproducible across
//!   runs *and* pinned against the exact hash in `sample.rs` (a silent
//!   change to the hash would invalidate every recorded trace corpus).
//! * **Prometheus exposition** — label escaping, cumulative histogram
//!   buckets, and `_sum`/`_count` consistency, the properties a scraper
//!   relies on.

use std::sync::Arc;

use tssa_obs::{MetricsRegistry, RingSink, Sampler, TraceSink, Tracer};

/// Replay a fixed traffic pattern (`roots` root spans named `req-<i>`, one
/// `exec` child each, span `3*i` marked slow via a fault) and return the
/// kept root names in sink order.
fn kept_roots(seed: u64, rate: f64, roots: u64) -> Vec<String> {
    let sink = Arc::new(RingSink::new(4096));
    let tracer = Tracer::sampled(
        Arc::clone(&sink) as Arc<dyn TraceSink>,
        Sampler::new(seed, rate),
    );
    for i in 0..roots {
        let root = tracer.root(format!("req-{i}"), "serve");
        root.child("exec", "exec").finish();
        root.finish();
    }
    sink.snapshot()
        .iter()
        .filter(|r| r.parent.is_none())
        .map(|r| r.name.clone())
        .collect()
}

#[test]
fn sampler_kept_set_is_reproducible_and_pinned() {
    // Same seed, same arrival order → byte-identical kept set.
    let first = kept_roots(42, 0.25, 32);
    let second = kept_roots(42, 0.25, 32);
    assert_eq!(first, second);
    // Golden: the exact kept set for seed 42 at rate 0.25. A change here
    // means the head-sampling hash changed — every recorded corpus and
    // every cross-run trace diff silently shifts. Change it deliberately
    // or not at all.
    let golden: Vec<String> = [1, 4, 5, 9, 16, 19, 21, 28]
        .iter()
        .map(|i| format!("req-{i}"))
        .collect();
    assert_eq!(first, golden);
    // And the public predictor agrees with what the tracer did.
    let sampler = Sampler::new(42, 0.25);
    let predicted: Vec<String> = (0..32)
        .filter(|&i| sampler.head_keep(i))
        .map(|i| format!("req-{i}"))
        .collect();
    assert_eq!(first, predicted);
}

#[test]
fn sampler_kept_set_shifts_with_seed_but_not_with_span_content() {
    let base = kept_roots(42, 0.25, 64);
    assert_ne!(
        base,
        kept_roots(43, 0.25, 64),
        "a different seed keeps a different set"
    );
    // Tail rules aside, the head decision must ignore everything about the
    // trace except its arrival index — replaying the same order with
    // different child fan-out keeps the same roots.
    let sink = Arc::new(RingSink::new(4096));
    let tracer = Tracer::sampled(
        Arc::clone(&sink) as Arc<dyn TraceSink>,
        Sampler::new(42, 0.25),
    );
    for i in 0..64u64 {
        let root = tracer.root(format!("req-{i}"), "serve");
        for c in 0..(i % 4) {
            root.child(format!("exec-{c}"), "exec").finish();
        }
        root.finish();
    }
    let kept: Vec<String> = sink
        .snapshot()
        .iter()
        .filter(|r| r.parent.is_none())
        .map(|r| r.name.clone())
        .collect();
    assert_eq!(kept, base);
}

#[test]
fn sampler_tail_keep_is_orthogonal_to_the_golden_head_set() {
    // Mark one head-dropped trace (index 0 is dropped by the golden set
    // above); it must join the kept set without disturbing the others.
    let sink = Arc::new(RingSink::new(4096));
    let tracer = Tracer::sampled(
        Arc::clone(&sink) as Arc<dyn TraceSink>,
        Sampler::new(42, 0.25),
    );
    for i in 0..32u64 {
        let mut root = tracer.root(format!("req-{i}"), "serve");
        if i == 0 {
            root.mark("timed_out");
        }
        root.finish();
    }
    let kept: Vec<String> = sink.snapshot().iter().map(|r| r.name.clone()).collect();
    let golden: Vec<String> = [0, 1, 4, 5, 9, 16, 19, 21, 28]
        .iter()
        .map(|i| format!("req-{i}"))
        .collect();
    assert_eq!(kept, golden);
    let stats = tracer.sampler_stats().unwrap();
    assert_eq!(stats.head_kept, 8);
    assert_eq!(stats.tail_kept, 1);
}

/// Pull the numeric value of the unique exposition line with this exact
/// series prefix (name plus rendered labels).
fn sample_value(text: &str, series: &str) -> f64 {
    let mut found = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(series) {
            if let Some(v) = rest.strip_prefix(' ') {
                assert!(found.is_none(), "duplicate series `{series}`");
                found =
                    Some(v.parse::<f64>().unwrap_or_else(|_| {
                        panic!("series `{series}` has non-numeric value `{v}`")
                    }));
            }
        }
    }
    found.unwrap_or_else(|| panic!("series `{series}` not found in:\n{text}"))
}

#[test]
fn prometheus_label_values_are_escaped() {
    let registry = MetricsRegistry::new();
    let awkward = "he said \"hi\\there\"\nand left";
    registry
        .counter("tssa_events_total", "Events.", &[("detail", awkward)])
        .add(3);
    let text = registry.prometheus_text();
    let expected = "tssa_events_total{detail=\"he said \\\"hi\\\\there\\\"\\nand left\"} 3";
    assert!(
        text.lines().any(|l| l == expected),
        "escaped line missing from:\n{text}"
    );
    assert!(
        !text.contains('\u{0}') && text.lines().count() == 3,
        "one HELP, one TYPE, one sample line"
    );
}

#[test]
fn prometheus_histogram_buckets_are_cumulative_and_consistent() {
    let registry = MetricsRegistry::new();
    let hist = registry.histogram("tssa_latency_us", "Latency.", &[("plan", "yolo")]);
    let observed = [1u64, 3, 3, 100, 5000, 70_000];
    for v in observed {
        hist.observe(v);
    }
    let text = registry.prometheus_text();

    // `_count` and `_sum` match the raw observations.
    let count = sample_value(&text, "tssa_latency_us_count{plan=\"yolo\"}");
    let sum = sample_value(&text, "tssa_latency_us_sum{plan=\"yolo\"}");
    assert_eq!(count, observed.len() as f64);
    assert_eq!(sum, observed.iter().sum::<u64>() as f64);

    // Every bucket line is cumulative: its value equals the number of
    // observations <= its upper bound, and the sequence never decreases.
    let mut last = 0.0;
    let mut bucket_lines = 0;
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("tssa_latency_us_bucket{plan=\"yolo\",le=\"") else {
            continue;
        };
        bucket_lines += 1;
        let (le, value) = rest.split_once("\"} ").expect("well-formed bucket line");
        let value: f64 = value.parse().unwrap();
        assert!(
            value >= last,
            "bucket counts must be non-decreasing:\n{text}"
        );
        last = value;
        if le == "+Inf" {
            assert_eq!(value, count, "+Inf bucket equals _count");
        } else {
            let le: f64 = le.parse().unwrap();
            let expect = observed.iter().filter(|&&v| v as f64 <= le).count();
            assert_eq!(value, expect as f64, "bucket le={le} in:\n{text}");
        }
    }
    assert!(bucket_lines > 2, "histogram renders its bucket series");
    assert!(
        text.contains("# TYPE tssa_latency_us histogram"),
        "histogram TYPE header"
    );
}

#[test]
fn prometheus_family_headers_appear_once_per_family() {
    let registry = MetricsRegistry::new();
    registry
        .counter("tssa_hits_total", "Cache hits.", &[("plan", "a")])
        .inc();
    registry
        .counter("tssa_hits_total", "Cache hits.", &[("plan", "b")])
        .inc();
    let text = registry.prometheus_text();
    assert_eq!(
        text.matches("# HELP tssa_hits_total").count(),
        1,
        "one HELP line for two series:\n{text}"
    );
    assert_eq!(text.matches("# TYPE tssa_hits_total").count(), 1);
    assert!(text.contains("tssa_hits_total{plan=\"a\"} 1"));
    assert!(text.contains("tssa_hits_total{plan=\"b\"} 1"));
}
