//! Hierarchical spans and the [`Tracer`] that mints them.
//!
//! A [`Span`] is an owned, `Send` handle to one timed region of work. It
//! records itself into the tracer's [`TraceSink`] when finished (explicitly
//! via [`Span::finish`] or implicitly on drop), carrying its parent link and
//! any counters attached along the way. Ownership — not thread-locals —
//! expresses the hierarchy, so a span can be created on one thread (a serve
//! request at admission) and finished on another (the worker that ran it).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::sample::{Sampler, SamplerCore, SamplerStats};
use crate::sink::{NullSink, RingSink, TraceSink};

/// One finished span as delivered to a [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the tracer.
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Id of this span's root ancestor — equal to `id` for roots. Lets
    /// sinks and samplers group a whole trace without walking parents.
    pub root: u64,
    /// Human-readable name (`"compile"`, `"pass:dce"`, `"batch[0]"`, …).
    pub name: String,
    /// Coarse category (`"compile"`, `"pass"`, `"exec"`, `"serve"`, …),
    /// mapped to the Chrome-trace `cat` field.
    pub category: &'static str,
    /// Start offset from the tracer's epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
    /// Counters attached while the span was live (graph deltas, batch
    /// occupancy, kernel launches, …).
    pub counters: Vec<(String, i64)>,
}

impl SpanRecord {
    /// End offset from the tracer's epoch, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<i64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Whether [`Span::mark`] flagged this span with `name` — the
    /// convention fault-injection and recovery paths use to annotate spans
    /// (`fault:worker_panic`, `requeued`, `timed_out`, `degraded`, …).
    pub fn is_marked(&self, name: &str) -> bool {
        self.counter(name).is_some_and(|v| v != 0)
    }
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    sampler: Option<SamplerCore>,
    epoch: Instant,
    next_id: AtomicU64,
    enabled: bool,
}

/// Mints spans and forwards finished records to a [`TraceSink`]. Cheap to
/// clone (an `Arc` internally); clones share the sink, epoch and id space.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer recording into `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                sink,
                sampler: None,
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                enabled: true,
            }),
        }
    }

    /// A tracer that routes every finished span through `sampler` before
    /// `sink`: whole traces (grouped by root) are either streamed (head
    /// decision), retained after the fact (tail-keep: slow, errored or
    /// fault-marked), or discarded — always-on tracing with bounded
    /// overhead. See [`Sampler`].
    pub fn sampled(sink: Arc<dyn TraceSink>, sampler: Sampler) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                sink,
                sampler: Some(SamplerCore::new(sampler)),
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                enabled: true,
            }),
        }
    }

    /// Convenience: a tracer backed by a fresh [`RingSink`] of `capacity`
    /// spans, returning both so the caller can drain the buffer later.
    pub fn ring(capacity: usize) -> (Tracer, Arc<RingSink>) {
        let sink = Arc::new(RingSink::new(capacity));
        (Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>), sink)
    }

    /// A tracer that drops everything; spans minted from it are free of
    /// allocation and record nothing. The default for untraced paths.
    pub fn disabled() -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                sink: Arc::new(NullSink),
                sampler: None,
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                enabled: false,
            }),
        }
    }

    /// Whether spans from this tracer record anything.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Sampling counters, when this tracer was built with
    /// [`Tracer::sampled`].
    pub fn sampler_stats(&self) -> Option<SamplerStats> {
        self.inner.sampler.as_ref().map(SamplerCore::stats)
    }

    /// Start a root span.
    pub fn root(&self, name: impl Into<String>, category: &'static str) -> Span {
        self.span(None, None, name, category)
    }

    /// A root scope for threading through APIs that accept a [`TraceScope`].
    pub fn scope(&self) -> TraceScope {
        TraceScope {
            tracer: self.clone(),
            parent: None,
            root: None,
        }
    }

    fn span(
        &self,
        parent: Option<u64>,
        root: Option<u64>,
        name: impl Into<String>,
        category: &'static str,
    ) -> Span {
        if !self.inner.enabled {
            return Span {
                tracer: self.clone(),
                id: 0,
                parent: None,
                root: 0,
                name: String::new(),
                category,
                start: Instant::now(),
                counters: Vec::new(),
                done: true, // nothing to record
            };
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let root = root.unwrap_or(id);
        if parent.is_none() {
            // A new trace begins: the sampler takes its head decision in
            // root-mint order, which is what makes the kept set a pure
            // function of (seed, arrival order).
            if let Some(sampler) = &self.inner.sampler {
                sampler.admit(root);
            }
        }
        Span {
            tracer: self.clone(),
            id,
            parent,
            root,
            name: name.into(),
            category,
            start: Instant::now(),
            counters: Vec::new(),
            done: false,
        }
    }
}

/// A (tracer, parent) pair: "record new spans here, under this parent".
/// The unit APIs accept so callers can nest foreign subsystems (a pass
/// manager, an exec session) under their own spans. A disabled scope makes
/// every tracing call a no-op.
#[derive(Debug, Clone)]
pub struct TraceScope {
    tracer: Tracer,
    parent: Option<u64>,
    root: Option<u64>,
}

impl TraceScope {
    /// A scope that records nothing.
    pub fn disabled() -> TraceScope {
        TraceScope {
            tracer: Tracer::disabled(),
            parent: None,
            root: None,
        }
    }

    /// Whether spans opened through this scope record anything.
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Open a span under this scope's parent.
    pub fn span(&self, name: impl Into<String>, category: &'static str) -> Span {
        self.tracer.span(self.parent, self.root, name, category)
    }

    /// The tracer backing this scope.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

impl Default for TraceScope {
    fn default() -> Self {
        TraceScope::disabled()
    }
}

/// A live span. Finishing (or dropping) records it into the tracer's sink
/// with its wall-clock duration; counters attached before that travel with
/// the record.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    root: u64,
    name: String,
    category: &'static str,
    start: Instant,
    counters: Vec<(String, i64)>,
    done: bool,
}

impl Span {
    /// This span's id (0 when tracing is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The root ancestor's id (this span's own id for roots).
    pub fn root_id(&self) -> u64 {
        self.root
    }

    /// Whether this span will record anything when finished.
    pub fn enabled(&self) -> bool {
        !self.done
    }

    /// Open a child span.
    pub fn child(&self, name: impl Into<String>, category: &'static str) -> Span {
        self.tracer
            .span(Some(self.id), Some(self.root), name, category)
    }

    /// A scope minting children of this span.
    pub fn scope(&self) -> TraceScope {
        if self.tracer.enabled() {
            TraceScope {
                tracer: self.tracer.clone(),
                parent: Some(self.id),
                root: Some(self.root),
            }
        } else {
            TraceScope {
                tracer: self.tracer.clone(),
                parent: None,
                root: None,
            }
        }
    }

    /// Attach a counter (kept in insertion order, duplicates allowed).
    pub fn counter(&mut self, name: impl Into<String>, value: i64) {
        if self.tracer.inner.enabled {
            self.counters.push((name.into(), value));
        }
    }

    /// Flag this span with a named event (a counter pinned to 1) — how the
    /// serving layer annotates spans with injected faults and recovery
    /// actions so trace-based assertions can find them via
    /// [`SpanRecord::is_marked`].
    pub fn mark(&mut self, name: impl Into<String>) {
        self.counter(name, 1);
    }

    /// Attach several counters at once.
    pub fn counters<I, S>(&mut self, iter: I)
    where
        I: IntoIterator<Item = (S, i64)>,
        S: Into<String>,
    {
        if self.tracer.inner.enabled {
            self.counters
                .extend(iter.into_iter().map(|(n, v)| (n.into(), v)));
        }
    }

    /// Record the span now instead of at drop.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let inner = &self.tracer.inner;
        let start_ns = self
            .start
            .saturating_duration_since(inner.epoch)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let dur_ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            root: self.root,
            name: std::mem::take(&mut self.name),
            category: self.category,
            start_ns,
            dur_ns,
            counters: std::mem::take(&mut self.counters),
        };
        match &inner.sampler {
            Some(sampler) => sampler.offer(record, &*inner.sink),
            None => inner.sink.record(record),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_hierarchy_and_counters() {
        let (tracer, sink) = Tracer::ring(16);
        let mut root = tracer.root("compile", "compile");
        root.counter("nodes", 7);
        let child = root.child("pass:dce", "pass");
        child.finish();
        root.finish();
        let records = sink.snapshot();
        assert_eq!(records.len(), 2);
        // snapshot() sorts by start time, so the parent leads.
        assert_eq!(records[0].name, "compile");
        assert_eq!(records[1].name, "pass:dce");
        assert_eq!(records[1].parent, Some(records[0].id));
        assert_eq!(records[0].counter("nodes"), Some(7));
        assert!(records[0].end_ns() >= records[1].end_ns());
    }

    #[test]
    fn dropped_span_still_records() {
        let (tracer, sink) = Tracer::ring(4);
        {
            let _span = tracer.root("exec", "exec");
        }
        assert_eq!(sink.snapshot().len(), 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        let mut span = tracer.root("compile", "compile");
        span.counter("n", 1);
        let child = span.child("x", "pass");
        drop(child);
        // Nothing observable: the null sink swallows everything, and the
        // span paths avoid allocation.
        assert_eq!(span.id(), 0);
        span.finish();
    }

    #[test]
    fn marks_round_trip_through_records() {
        let (tracer, sink) = Tracer::ring(4);
        let mut span = tracer.root("batch", "serve");
        span.mark("fault:worker_panic");
        span.finish();
        let records = sink.snapshot();
        assert!(records[0].is_marked("fault:worker_panic"));
        assert!(!records[0].is_marked("requeued"));
    }

    #[test]
    fn root_ids_group_whole_traces() {
        let (tracer, sink) = Tracer::ring(16);
        let root = tracer.root("request", "serve");
        let child = root.child("exec", "exec");
        let grandchild = child.child("batch[0]", "exec");
        let scope = root.scope();
        scope.span("late", "serve").finish();
        drop(grandchild);
        drop(child);
        let other = tracer.root("request2", "serve");
        drop(other);
        root.finish();
        let records = sink.snapshot();
        let find = |name: &str| records.iter().find(|r| r.name == name).unwrap();
        let root_id = find("request").id;
        for name in ["request", "exec", "batch[0]", "late"] {
            assert_eq!(find(name).root, root_id, "{name} rides the trace root");
        }
        let other = find("request2");
        assert_eq!(other.root, other.id, "a root is its own trace root");
    }

    #[test]
    fn scope_threads_parentage() {
        let (tracer, sink) = Tracer::ring(8);
        let root = tracer.root("request", "serve");
        let scope = root.scope();
        scope.span("queue", "serve").finish();
        root.finish();
        let records = sink.snapshot();
        assert_eq!(records[1].parent, Some(records[0].id));
    }
}
