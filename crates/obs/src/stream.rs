//! [`StreamSink`]: a [`TraceSink`] that writes spans as NDJSON — one JSON
//! object per line — to any `io::Write`. Unlike [`crate::RingSink`] it
//! never wraps, so it is the sink of choice for long chaos and load runs;
//! write failures are *counted* (`dropped`), never propagated into the
//! traced code, and the writer is flushed every `flush_every` records so
//! external log rotation always cuts at a line boundary.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::chrome::escape;
use crate::sink::TraceSink;
use crate::span::SpanRecord;

/// One span as a single-line JSON object (no trailing newline): ids, root,
/// timing, and counters as an array of `[name, value]` pairs (an array
/// because duplicate counter names are allowed).
pub fn span_ndjson(r: &SpanRecord) -> String {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(96);
    let _ = write!(line, "{{\"id\":{},\"root\":{}", r.id, r.root);
    if let Some(p) = r.parent {
        let _ = write!(line, ",\"parent\":{p}");
    }
    let _ = write!(
        line,
        ",\"name\":\"{}\",\"cat\":\"{}\",\"start_ns\":{},\"dur_ns\":{}",
        escape(&r.name),
        escape(r.category),
        r.start_ns,
        r.dur_ns
    );
    if !r.counters.is_empty() {
        line.push_str(",\"counters\":[");
        for (i, (name, value)) in r.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "[\"{}\",{}]", escape(name), value);
        }
        line.push(']');
    }
    line.push('}');
    line
}

struct StreamInner<W> {
    writer: W,
    since_flush: usize,
}

/// Streaming NDJSON trace sink over any writer. `Mutex`-serialized per
/// record; see the module docs for the drop/flush contract.
pub struct StreamSink<W: Write + Send> {
    inner: Mutex<StreamInner<W>>,
    flush_every: usize,
    written: AtomicU64,
    dropped: AtomicU64,
}

impl<W: Write + Send> StreamSink<W> {
    /// A sink flushing every 64 records.
    pub fn new(writer: W) -> StreamSink<W> {
        StreamSink::with_flush_every(writer, 64)
    }

    /// A sink flushing after every `flush_every` records (min 1). Lower
    /// values bound how many spans a crash can lose; higher values batch
    /// syscalls.
    pub fn with_flush_every(writer: W, flush_every: usize) -> StreamSink<W> {
        StreamSink {
            inner: Mutex::new(StreamInner {
                writer,
                since_flush: 0,
            }),
            flush_every: flush_every.max(1),
            written: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Spans successfully written.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Spans lost to write errors (sink backpressure). The traced code
    /// never sees the error — recording must not fail the work it observes.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Force a flush now — a rotation point for external log shippers.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("stream lock");
        inner.since_flush = 0;
        inner.writer.flush()
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(self) -> W {
        let mut inner = self.inner.into_inner().expect("stream lock");
        let _ = inner.writer.flush();
        inner.writer
    }

    /// Run `f` with exclusive access to the underlying writer (blocks
    /// concurrent span recording for the duration — keep `f` cheap).
    pub fn with_writer<T>(&self, f: impl FnOnce(&W) -> T) -> T {
        let inner = self.inner.lock().expect("stream lock");
        f(&inner.writer)
    }

    /// The sink's health counters, left open for writer-specific series
    /// (see `prometheus_text_rotating` on rotating-file sinks).
    pub(crate) fn prometheus_partial(&self) -> crate::PromText {
        let mut prom = crate::PromText::new();
        prom.counter(
            "tssa_obs_spans_written_total",
            "Spans written by the streaming trace sink",
            self.written(),
        );
        prom.counter(
            "tssa_obs_spans_dropped_total",
            "Spans dropped by the trace sink (write errors / backpressure)",
            self.dropped(),
        );
        prom
    }

    /// The sink's own health as Prometheus text: spans written and spans
    /// dropped to backpressure.
    pub fn prometheus_text(&self) -> String {
        self.prometheus_partial().render()
    }
}

impl<W: Write + Send> TraceSink for StreamSink<W> {
    fn record(&self, span: SpanRecord) {
        let mut line = span_ndjson(&span);
        line.push('\n');
        let mut inner = self.inner.lock().expect("stream lock");
        match inner.writer.write_all(line.as_bytes()) {
            Ok(()) => {
                self.written.fetch_add(1, Ordering::Relaxed);
                inner.since_flush += 1;
                if inner.since_flush >= self.flush_every {
                    inner.since_flush = 0;
                    // Flush failures are absorbed; the next write reports
                    // a persistent sink problem via `dropped`.
                    let _ = inner.writer.flush();
                }
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for StreamSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSink")
            .field("flush_every", &self.flush_every)
            .field("written", &self.written())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::Tracer;
    use std::sync::Arc;

    /// A writer that fails after `ok` successful writes.
    struct Flaky {
        ok: usize,
        seen: usize,
        buf: Vec<u8>,
    }

    impl Write for Flaky {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.seen += 1;
            if self.seen > self.ok {
                return Err(std::io::Error::other("sink full"));
            }
            self.buf.extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn spans_stream_as_parseable_ndjson_lines() {
        let sink = Arc::new(StreamSink::new(Vec::new()));
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let mut root = tracer.root("request \"q\"", "serve");
        root.counter("rows", 4);
        root.child("exec", "exec").finish();
        root.finish();
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.dropped(), 0);
        drop(tracer);
        let sink = Arc::into_inner(sink).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Child finishes (and therefore streams) first.
        let child = parse(lines[0]).expect("valid JSON line");
        let root = parse(lines[1]).expect("valid JSON line");
        assert_eq!(
            root.get("name").and_then(JsonValue::as_str),
            Some("request \"q\"")
        );
        assert_eq!(child.get("parent"), root.get("id"));
        assert_eq!(child.get("root"), root.get("id"));
        let counters = root.get("counters").and_then(JsonValue::as_array).unwrap();
        assert_eq!(counters.len(), 1);
    }

    #[test]
    fn write_errors_count_as_drops_without_failing_the_span() {
        let sink = StreamSink::new(Flaky {
            ok: 1,
            seen: 0,
            buf: Vec::new(),
        });
        let rec = |id| SpanRecord {
            id,
            parent: None,
            root: id,
            name: "s".into(),
            category: "test",
            start_ns: 0,
            dur_ns: 1,
            counters: Vec::new(),
        };
        sink.record(rec(1));
        sink.record(rec(2));
        assert_eq!(sink.written(), 1);
        assert_eq!(sink.dropped(), 1);
        let prom = sink.prometheus_text();
        assert!(prom.contains("tssa_obs_spans_dropped_total 1"));
        assert!(prom.contains("tssa_obs_spans_written_total 1"));
    }

    #[test]
    fn flush_points_land_on_line_boundaries() {
        let sink = StreamSink::with_flush_every(Vec::new(), 2);
        for id in 1..=5 {
            sink.record(SpanRecord {
                id,
                parent: None,
                root: id,
                name: format!("s{id}"),
                category: "test",
                start_ns: id,
                dur_ns: 1,
                counters: Vec::new(),
            });
        }
        sink.flush().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.ends_with('\n'));
        assert_eq!(text.lines().count(), 5);
    }
}
