//! Op-level execution profiler: per-worker [`ProfileSink`] buffers merged
//! into one [`Profiler`] table, with flamegraph / Chrome-trace / JSON
//! exports and a fusion-group hotness ranking.
//!
//! The tracing side of this crate stops at `exec -> batch[i]` spans; this
//! module opens the box below the batch level. Executors attribute wall
//! self-time, invocation counts and FLOP/byte estimates to every op —
//! keyed by `(plan, fusion group, node)` — into a [`ProfileSink`] owned by
//! the recording thread. Sinks are `Mutex`-guarded but uncontended in
//! steady state (one sink per worker), so recording costs a hash insert.
//! Merging into the shared table happens only at snapshot time (a scrape,
//! a report), and the merge wall time is itself accounted
//! (`tssa_obs_profile_merge_us`) so the profiler's own overhead is visible
//! in the exposition it feeds.
//!
//! Production deployments keep the profiler always-on by sampling whole
//! executions through the same seeded [`Sampler`] seam the tracer uses:
//! [`Profiler::should_profile`] draws per run, so the overhead bound is a
//! configuration, not a build flag.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::registry::MetricsRegistry;
use crate::sample::Sampler;

/// Number of log2 wall-time buckets per op (microseconds, up to ~2^39).
pub const PROFILE_BUCKETS: usize = 40;

/// Sentinel "fusion group" for ops executed at the top level of a plan
/// (outside any fusion group). Rendered as the `top` frame.
pub const TOP_LEVEL_GROUP: u32 = u32::MAX;

/// Identity of one profiled op site.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpKey {
    /// Plan (model) label the op executed under.
    pub plan: Arc<str>,
    /// Fusion-group node id, or [`TOP_LEVEL_GROUP`].
    pub group: u32,
    /// Node id within the graph.
    pub node: u32,
}

/// Export-granularity frame `(plan, group, op)` — node ids collapsed away.
type OpFrame = (Arc<str>, u32, String);

/// Render a group id as a flamegraph frame / metric label.
pub fn group_frame(group: u32) -> String {
    if group == TOP_LEVEL_GROUP {
        "top".to_string()
    } else {
        format!("g{group}")
    }
}

/// Accumulated statistics for one op site.
#[derive(Clone, Debug)]
pub struct OpStat {
    /// Op kind name (e.g. `conv2d`, `view.slice`).
    pub op: String,
    /// Invocations.
    pub count: u64,
    /// Wall self-time, nanoseconds.
    pub self_ns: u64,
    /// Estimated bytes moved.
    pub bytes: u64,
    /// Estimated floating-point operations.
    pub flops: u64,
    /// Log2 histogram of per-invocation wall self-time, microseconds.
    pub hist: [u64; PROFILE_BUCKETS],
}

impl Default for OpStat {
    fn default() -> OpStat {
        OpStat {
            op: String::new(),
            count: 0,
            self_ns: 0,
            bytes: 0,
            flops: 0,
            hist: [0; PROFILE_BUCKETS],
        }
    }
}

fn bucket(value_us: u64) -> usize {
    let idx = 63 - value_us.max(1).leading_zeros() as usize;
    idx.min(PROFILE_BUCKETS - 1)
}

impl OpStat {
    fn observe(&mut self, wall_ns: u64, bytes: u64, flops: u64) {
        self.count += 1;
        self.self_ns += wall_ns;
        self.bytes += bytes;
        self.flops += flops;
        self.hist[bucket(wall_ns / 1_000)] += 1;
    }

    fn merge(&mut self, other: &OpStat) {
        if self.op.is_empty() {
            self.op = other.op.clone();
        }
        self.count += other.count;
        self.self_ns += other.self_ns;
        self.bytes += other.bytes;
        self.flops += other.flops;
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += *b;
        }
    }
}

/// A per-worker recording buffer. The mutex is uncontended in steady state
/// (each worker records into its own sink); the profiler's snapshot path
/// takes it briefly to drain.
#[derive(Default)]
pub struct ProfileSink {
    local: Mutex<HashMap<OpKey, OpStat>>,
}

impl ProfileSink {
    /// Record one op execution. `op_name` is only invoked the first time
    /// this site is seen, so steady-state recording never allocates a name.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        plan: &Arc<str>,
        group: u32,
        node: u32,
        wall_ns: u64,
        bytes: u64,
        flops: u64,
        op_name: impl FnOnce() -> String,
    ) {
        let key = OpKey {
            plan: Arc::clone(plan),
            group,
            node,
        };
        let mut local = self.local.lock().expect("profile sink lock");
        let stat = local.entry(key).or_default();
        if stat.op.is_empty() {
            stat.op = op_name();
        }
        stat.observe(wall_ns, bytes, flops);
    }

    /// Take everything recorded so far, leaving the sink empty.
    pub fn drain(&self) -> HashMap<OpKey, OpStat> {
        std::mem::take(&mut *self.local.lock().expect("profile sink lock"))
    }

    /// Recorded site count (tests and diagnostics).
    pub fn len(&self) -> usize {
        self.local.lock().expect("profile sink lock").len()
    }

    /// Whether nothing has been recorded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct ProfilerInner {
    merged: Mutex<HashMap<OpKey, OpStat>>,
    sinks: Mutex<Vec<Arc<ProfileSink>>>,
    sampler: Option<Sampler>,
    runs: AtomicU64,
    merges: AtomicU64,
    merge_us: AtomicU64,
}

/// The shared profile table plus the sampling decision. Cheap to clone
/// (shared interior); one per service / tool run.
#[derive(Clone)]
pub struct Profiler {
    inner: Arc<ProfilerInner>,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("rate", &self.rate())
            .field("runs", &self.runs())
            .finish_non_exhaustive()
    }
}

impl Profiler {
    /// An always-on profiler: every execution is recorded.
    pub fn new() -> Profiler {
        Profiler::with_sampler(None)
    }

    /// A sampling profiler: each execution draws through `sampler`'s seeded
    /// head-keep decision (by run index), bounding steady-state overhead to
    /// roughly the configured rate.
    pub fn sampled(sampler: Sampler) -> Profiler {
        Profiler::with_sampler(Some(sampler))
    }

    fn with_sampler(sampler: Option<Sampler>) -> Profiler {
        Profiler {
            inner: Arc::new(ProfilerInner {
                merged: Mutex::new(HashMap::new()),
                sinks: Mutex::new(Vec::new()),
                sampler,
                runs: AtomicU64::new(0),
                merges: AtomicU64::new(0),
                merge_us: AtomicU64::new(0),
            }),
        }
    }

    /// Create a new recording sink registered with this profiler (one per
    /// worker thread). The profiler keeps its own reference: samples a
    /// crashed or retired worker never drained still reach the table at the
    /// next snapshot, so totals stay monotone across worker churn.
    pub fn sink(&self) -> Arc<ProfileSink> {
        let sink = Arc::new(ProfileSink::default());
        self.inner
            .sinks
            .lock()
            .expect("profiler sinks lock")
            .push(Arc::clone(&sink));
        sink
    }

    /// Draw the sampling decision for the next execution. Always true for
    /// an unsampled profiler; deterministic in the sampler's seed otherwise.
    pub fn should_profile(&self) -> bool {
        let run = self.inner.runs.fetch_add(1, Ordering::Relaxed);
        match &self.inner.sampler {
            None => true,
            Some(s) => s.head_keep(run),
        }
    }

    /// Sampling rate (1.0 when unsampled).
    pub fn rate(&self) -> f64 {
        self.inner.sampler.as_ref().map_or(1.0, Sampler::rate)
    }

    /// Executions offered to [`Profiler::should_profile`] so far.
    pub fn runs(&self) -> u64 {
        self.inner.runs.load(Ordering::Relaxed)
    }

    /// `(merge count, cumulative merge wall µs)` — the profiler's own cost.
    pub fn merge_stats(&self) -> (u64, u64) {
        (
            self.inner.merges.load(Ordering::Relaxed),
            self.inner.merge_us.load(Ordering::Relaxed),
        )
    }

    /// Drain every live sink into the table and return a point-in-time
    /// snapshot sorted by self-time (descending). Totals are cumulative:
    /// successive snapshots are monotone non-decreasing.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let started = Instant::now();
        let mut merged = self.inner.merged.lock().expect("profiler table lock");
        {
            let sinks = self.inner.sinks.lock().expect("profiler sinks lock");
            for sink in sinks.iter() {
                for (key, stat) in sink.drain() {
                    merged.entry(key).or_default().merge(&stat);
                }
            }
        }
        let mut entries: Vec<(OpKey, OpStat)> =
            merged.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        drop(merged);
        entries.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.0.cmp(&b.0)));
        self.inner.merges.fetch_add(1, Ordering::Relaxed);
        let merge_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.inner.merge_us.fetch_add(merge_us, Ordering::Relaxed);
        let (merges, merge_us) = self.merge_stats();
        ProfileSnapshot {
            entries,
            merges,
            merge_us,
        }
    }
}

/// One fusion group's share of the measured execution time — the unit the
/// codegen work-list ranks.
#[derive(Clone, Debug)]
pub struct GroupHotness {
    /// Plan (model) label.
    pub plan: Arc<str>,
    /// Fusion-group node id, or [`TOP_LEVEL_GROUP`].
    pub group: u32,
    /// Cumulative wall self-time of the group's ops, nanoseconds.
    pub self_ns: u64,
    /// Total op invocations inside the group.
    pub count: u64,
    /// Distinct op sites inside the group.
    pub sites: usize,
}

/// A point-in-time, self-time-sorted copy of the profile table.
#[derive(Clone, Debug)]
pub struct ProfileSnapshot {
    /// Per-site statistics, sorted by self-time descending.
    pub entries: Vec<(OpKey, OpStat)>,
    /// Sink merges performed so far (including the one that built this).
    pub merges: u64,
    /// Cumulative merge wall time, microseconds.
    pub merge_us: u64,
}

/// Make a string safe as a flamegraph frame: collapsed-stack reserves
/// `;` (frame separator) and space (count separator).
fn frame(s: &str) -> String {
    s.replace([';', ' ', '\t', '\n'], "_")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Integer microseconds, rounded up so any nonzero time stays visible.
fn ceil_us(ns: u64) -> u64 {
    ns.div_ceil(1_000)
}

impl ProfileSnapshot {
    /// Total recorded self-time, nanoseconds.
    pub fn total_self_ns(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s.self_ns).sum()
    }

    /// Aggregate sites by `(plan, group, op)` — the exported metric/frame
    /// granularity (node ids collapse away, bounding cardinality).
    fn by_op(&self) -> Vec<(OpFrame, OpStat)> {
        let mut agg: HashMap<OpFrame, OpStat> = HashMap::new();
        for (key, stat) in &self.entries {
            agg.entry((Arc::clone(&key.plan), key.group, stat.op.clone()))
                .or_default()
                .merge(stat);
        }
        let mut out: Vec<_> = agg.into_iter().collect();
        out.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Collapsed-stack flamegraph export: one `plan;group;op <self_us>`
    /// line per aggregated site, hottest first, at most `max_lines` lines.
    /// Renderable by `flamegraph.pl` / speedscope as-is.
    pub fn collapsed(&self, max_lines: usize) -> String {
        let mut out = String::new();
        for ((plan, group, op), stat) in self.by_op().into_iter().take(max_lines) {
            if stat.self_ns == 0 && stat.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{};{};{} {}\n",
                frame(&plan),
                group_frame(group),
                frame(&op),
                ceil_us(stat.self_ns),
            ));
        }
        out
    }

    /// JSON export (bounded to `max_entries` per-site records, hottest
    /// first): per-site stats plus totals, for `/debug/profile`.
    pub fn json(&self, max_entries: usize) -> String {
        let mut out = String::from("{\"entries\":[");
        for (i, (key, stat)) in self.entries.iter().take(max_entries).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"plan\":\"{}\",\"group\":\"{}\",\"node\":{},\"op\":\"{}\",\
                 \"count\":{},\"self_us\":{},\"bytes\":{},\"flops\":{}}}",
                escape_json(&key.plan),
                group_frame(key.group),
                key.node,
                escape_json(&stat.op),
                stat.count,
                ceil_us(stat.self_ns),
                stat.bytes,
                stat.flops,
            ));
        }
        out.push_str(&format!(
            "],\"sites\":{},\"total_self_us\":{},\"merges\":{},\"merge_us\":{}}}",
            self.entries.len(),
            ceil_us(self.total_self_ns()),
            self.merges,
            self.merge_us,
        ));
        out
    }

    /// Chrome-trace export: one complete (`ph:"X"`) slice per aggregated
    /// site, laid end-to-end on a synthetic timeline so relative widths
    /// read as self-time shares in `chrome://tracing` / Perfetto.
    pub fn chrome_trace(&self, max_entries: usize) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut cursor = 0u64;
        for (i, ((plan, group, op), stat)) in self.by_op().into_iter().take(max_entries).enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let dur = ceil_us(stat.self_ns);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"profile\",\"ph\":\"X\",\"ts\":{cursor},\
                 \"dur\":{dur},\"pid\":1,\"tid\":1,\"args\":{{\"plan\":\"{}\",\
                 \"group\":\"{}\",\"count\":{},\"flops\":{}}}}}",
                escape_json(&op),
                escape_json(&plan),
                group_frame(group),
                stat.count,
                stat.flops,
            ));
            cursor += dur;
        }
        out.push_str("]}");
        out
    }

    /// Fusion groups ranked by cumulative self-time (descending) — the
    /// work-list a codegen pass would consume.
    pub fn hotness(&self) -> Vec<GroupHotness> {
        let mut agg: HashMap<(Arc<str>, u32), GroupHotness> = HashMap::new();
        for (key, stat) in &self.entries {
            let entry = agg
                .entry((Arc::clone(&key.plan), key.group))
                .or_insert_with(|| GroupHotness {
                    plan: Arc::clone(&key.plan),
                    group: key.group,
                    self_ns: 0,
                    count: 0,
                    sites: 0,
                });
            entry.self_ns += stat.self_ns;
            entry.count += stat.count;
            entry.sites += 1;
        }
        let mut out: Vec<GroupHotness> = agg.into_values().collect();
        out.sort_by(|a, b| {
            b.self_ns
                .cmp(&a.self_ns)
                .then_with(|| (Arc::clone(&a.plan), a.group).cmp(&(Arc::clone(&b.plan), b.group)))
        });
        out
    }

    /// Bridge the snapshot into a registry: `tssa_op_self_us{plan,group,op}`
    /// (aggregated over node ids) plus the profiler's own merge cost
    /// (`tssa_obs_profile_merge_us`, `tssa_obs_profile_merges_total`).
    pub fn register_into(&self, registry: &MetricsRegistry) {
        for ((plan, group, op), stat) in self.by_op() {
            registry.set_counter(
                "tssa_op_self_us",
                "Cumulative op wall self-time by plan, fusion group and op kind (µs)",
                &[("plan", &plan), ("group", &group_frame(group)), ("op", &op)],
                ceil_us(stat.self_ns),
            );
        }
        registry.set_counter(
            "tssa_obs_profile_merge_us",
            "Cumulative wall time spent merging profile sinks (µs)",
            &[],
            self.merge_us,
        );
        registry.set_counter(
            "tssa_obs_profile_merges_total",
            "Profile sink merges performed",
            &[],
            self.merges,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(label: &str) -> Arc<str> {
        Arc::from(label)
    }

    #[test]
    fn sink_records_and_snapshot_sorts_by_self_time() {
        let profiler = Profiler::new();
        let sink = profiler.sink();
        let p = plan("lstm");
        sink.record(&p, 3, 10, 5_000_000, 64, 128, || "matmul".into());
        sink.record(&p, 3, 10, 3_000_000, 64, 128, || {
            panic!("name closure must not run for a known site")
        });
        sink.record(&p, TOP_LEVEL_GROUP, 2, 1_000_000, 8, 0, || "add".into());
        let snap = profiler.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].1.op, "matmul");
        assert_eq!(snap.entries[0].1.count, 2);
        assert_eq!(snap.entries[0].1.self_ns, 8_000_000);
        assert_eq!(snap.entries[0].1.bytes, 128);
        assert_eq!(snap.entries[0].1.flops, 256);
        assert_eq!(snap.entries[1].1.op, "add");
        assert_eq!(snap.total_self_ns(), 9_000_000);
        // Histogram: two 5ms/3ms samples land in the ms-range buckets.
        assert_eq!(snap.entries[0].1.hist.iter().sum::<u64>(), 2);
    }

    #[test]
    fn totals_are_monotone_across_snapshots() {
        let profiler = Profiler::new();
        let sink = profiler.sink();
        let p = plan("ssd");
        sink.record(&p, 1, 1, 500, 0, 0, || "mul".into());
        let first = profiler.snapshot().total_self_ns();
        let mid = profiler.snapshot().total_self_ns();
        sink.record(&p, 1, 1, 700, 0, 0, || "mul".into());
        let last = profiler.snapshot().total_self_ns();
        assert_eq!(first, 500);
        assert_eq!(mid, 500, "drained sinks must not reset the table");
        assert_eq!(last, 1_200);
    }

    #[test]
    fn collapsed_lines_parse_as_collapsed_stack() {
        let profiler = Profiler::new();
        let sink = profiler.sink();
        let p = plan("yolo v3"); // space must be sanitized in frames
        sink.record(&p, 7, 4, 2_000, 0, 0, || "conv2d".into());
        sink.record(&p, TOP_LEVEL_GROUP, 9, 9_000, 0, 0, || "relu".into());
        let collapsed = profiler.snapshot().collapsed(100);
        assert_eq!(collapsed.lines().count(), 2);
        for line in collapsed.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("frames <space> count");
            assert_eq!(stack.split(';').count(), 3, "plan;group;op frames: {line}");
            assert!(stack.split(';').all(|f| !f.is_empty() && !f.contains(' ')));
            count.parse::<u64>().expect("count is an integer");
        }
        assert!(collapsed.starts_with("yolo_v3;top;relu 9\n"), "{collapsed}");
        assert!(collapsed.contains("yolo_v3;g7;conv2d 2\n"));
    }

    #[test]
    fn hotness_ranks_groups_and_register_into_exports_series() {
        let profiler = Profiler::new();
        let sink = profiler.sink();
        let p = plan("attention");
        sink.record(&p, 2, 1, 6_000, 0, 10, || "matmul".into());
        sink.record(&p, 2, 2, 1_000, 0, 0, || "softmax".into());
        sink.record(&p, 5, 3, 3_000, 0, 0, || "matmul".into());
        let snap = profiler.snapshot();
        let hot = snap.hotness();
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].group, 2);
        assert_eq!(hot[0].self_ns, 7_000);
        assert_eq!(hot[0].sites, 2);
        assert_eq!(hot[1].group, 5);

        let registry = MetricsRegistry::new();
        snap.register_into(&registry);
        let text = registry.prometheus_text();
        assert!(
            text.contains("tssa_op_self_us{group=\"g2\",op=\"matmul\",plan=\"attention\"} 6"),
            "{text}"
        );
        assert!(text.contains("tssa_obs_profile_merge_us"));
        assert!(text.contains("tssa_obs_profile_merges_total 1"));
    }

    #[test]
    fn json_and_chrome_exports_parse_and_bound_size() {
        let profiler = Profiler::new();
        let sink = profiler.sink();
        let p = plan("fcos");
        for node in 0..10 {
            sink.record(&p, 1, node, 1_000, 4, 2, || format!("op\"{node}\""));
        }
        let snap = profiler.snapshot();
        let json = snap.json(3);
        let doc = crate::json::parse(&json).expect("profile json parses");
        let entries = doc
            .get("entries")
            .and_then(crate::json::JsonValue::as_array)
            .expect("entries");
        assert_eq!(entries.len(), 3, "bounded to max_entries");
        assert_eq!(
            doc.get("sites").and_then(crate::json::JsonValue::as_f64),
            Some(10.0)
        );
        let chrome = snap.chrome_trace(50);
        crate::json::parse(&chrome).expect("chrome trace parses");
        assert!(chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn sampled_profiler_keeps_roughly_the_configured_rate() {
        let profiler = Profiler::sampled(Sampler::new(0x5EED, 0.1));
        let kept = (0..10_000).filter(|_| profiler.should_profile()).count();
        assert!(
            (500..2_000).contains(&kept),
            "10% sampling kept {kept}/10000"
        );
        assert_eq!(profiler.runs(), 10_000);
        let always = Profiler::new();
        assert!((0..100).all(|_| always.should_profile()));
        assert!((always.rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn dropped_sinks_still_reach_the_table() {
        let profiler = Profiler::new();
        let sink = profiler.sink();
        let p = plan("seq2seq");
        sink.record(&p, 1, 1, 42_000, 0, 0, || "add".into());
        // A crashed worker drops its handle before any scrape drained it;
        // the profiler's own reference keeps the samples reachable.
        drop(sink);
        assert_eq!(profiler.snapshot().total_self_ns(), 42_000);
    }
}
