//! Where finished spans go: the [`TraceSink`] trait and the default
//! bounded [`RingSink`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::span::SpanRecord;

/// Consumer of finished spans. Implementations must be cheap and
/// non-blocking — `record` is called from compile paths, worker threads and
/// request tails.
pub trait TraceSink: Send + Sync {
    /// Accept one finished span.
    fn record(&self, span: SpanRecord);
}

/// Discards everything; backs [`crate::Tracer::disabled`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _span: SpanRecord) {}
}

/// Bounded in-memory sink: keeps the most recent `capacity` spans, counting
/// (rather than blocking on) overflow. The default sink for tests, the
/// `trace_dump` example and ad-hoc profiling.
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
    warned: AtomicBool,
}

impl RingSink {
    /// A ring holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
            warned: AtomicBool::new(false),
        }
    }

    /// Copy out the buffered spans, oldest first, sorted by start time so
    /// parents precede children even though spans record at *finish*.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut v: Vec<SpanRecord> = self
            .buf
            .lock()
            .expect("ring lock")
            .iter()
            .cloned()
            .collect();
        v.sort_by_key(|r| (r.start_ns, r.id));
        v
    }

    /// Drain the buffer, returning its contents sorted by start time.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut v: Vec<SpanRecord> = self.buf.lock().expect("ring lock").drain(..).collect();
        v.sort_by_key(|r| (r.start_ns, r.id));
        v
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The sink's own health as Prometheus text: spans evicted on wrap.
    pub fn prometheus_text(&self) -> String {
        let mut prom = crate::PromText::new();
        prom.counter(
            "tssa_obs_spans_dropped_total",
            "Spans dropped by the trace sink (ring wrapped)",
            self.dropped(),
        );
        prom.render()
    }
}

impl TraceSink for RingSink {
    fn record(&self, span: SpanRecord) {
        let mut buf = self.buf.lock().expect("ring lock");
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "tssa-obs: RingSink wrapped (capacity {}); oldest spans are being \
                     dropped — use StreamSink for long runs",
                    self.capacity
                );
            }
        }
        buf.push_back(span);
    }
}

impl std::fmt::Debug for RingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingSink")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, start_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: None,
            root: id,
            name: format!("s{id}"),
            category: "test",
            start_ns,
            dur_ns: 1,
            counters: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let sink = RingSink::new(2);
        sink.record(rec(1, 10));
        sink.record(rec(2, 20));
        sink.record(rec(3, 30));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        let snap = sink.snapshot();
        assert_eq!(snap[0].id, 2);
        assert_eq!(snap[1].id, 3);
        assert!(sink
            .prometheus_text()
            .contains("tssa_obs_spans_dropped_total 1"));
    }

    #[test]
    fn snapshot_sorts_by_start() {
        let sink = RingSink::new(4);
        sink.record(rec(2, 50)); // finishes first but starts later
        sink.record(rec(1, 10));
        let snap = sink.snapshot();
        assert_eq!(snap[0].id, 1);
        assert_eq!(sink.len(), 2, "snapshot must not drain");
        assert_eq!(sink.drain().len(), 2);
        assert!(sink.is_empty());
    }
}
