//! Chrome-trace (`chrome://tracing` / Perfetto "JSON Array Format")
//! exporter.
//!
//! Spans become complete (`"ph": "X"`) events. Chrome nests events on the
//! same `tid` by time containment, so each span tree is laid out on its own
//! track: `tid` is the id of the span's root ancestor, and `pid` is a single
//! shared process. Counters and the explicit parent link ride in `args`, so
//! nothing from the [`SpanRecord`] is lost in export.

use std::collections::HashMap;

use crate::span::SpanRecord;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Root ancestor of each span, for track assignment. Spans whose parent is
/// missing from `records` (ring overflow) are treated as roots.
fn root_of(records: &[SpanRecord]) -> HashMap<u64, u64> {
    let parents: HashMap<u64, Option<u64>> = records.iter().map(|r| (r.id, r.parent)).collect();
    let mut roots = HashMap::with_capacity(records.len());
    for r in records {
        let mut cur = r.id;
        let mut hops = 0;
        while let Some(&Some(p)) = parents.get(&cur) {
            if !parents.contains_key(&p) || hops > records.len() {
                break;
            }
            cur = p;
            hops += 1;
        }
        roots.insert(r.id, cur);
    }
    roots
}

/// Render `records` as a Chrome-trace JSON document (the object form:
/// `{"traceEvents": [...]}`), loadable in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let roots = root_of(records);
    let mut events: Vec<&SpanRecord> = records.iter().collect();
    events.sort_by_key(|r| (r.start_ns, r.id));
    let mut out = String::from("{\"traceEvents\":[");
    for (i, r) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = roots.get(&r.id).copied().unwrap_or(r.id);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{",
            escape(&r.name),
            escape(r.category),
            tid,
            r.start_ns as f64 / 1_000.0,
            r.dur_ns as f64 / 1_000.0,
        ));
        out.push_str(&format!("\"span_id\":{}", r.id));
        if let Some(p) = r.parent {
            out.push_str(&format!(",\"parent_id\":{p}"));
        }
        for (name, value) in &r.counters {
            out.push_str(&format!(",\"{}\":{}", escape(name), value));
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Render `records` as an indented text tree (one line per span with timing
/// and counters) — the "screenshot-free walkthrough" companion to the JSON
/// export, for terminals and docs.
pub fn text_tree(records: &[SpanRecord]) -> String {
    let mut children: HashMap<Option<u64>, Vec<&SpanRecord>> = HashMap::new();
    let present: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
    for r in records {
        // Orphans (parent evicted from the ring) are promoted to roots.
        let key = r.parent.filter(|p| present.contains(p));
        children.entry(key).or_default().push(r);
    }
    for v in children.values_mut() {
        v.sort_by_key(|r| (r.start_ns, r.id));
    }
    let mut out = String::new();
    fn visit(
        out: &mut String,
        children: &HashMap<Option<u64>, Vec<&SpanRecord>>,
        node: &SpanRecord,
        depth: usize,
    ) {
        let indent = "  ".repeat(depth);
        let counters = if node.counters.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = node
                .counters
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            format!("  [{}]", parts.join(" "))
        };
        out.push_str(&format!(
            "{indent}{} ({})  {:.1}us{counters}\n",
            node.name,
            node.category,
            node.dur_ns as f64 / 1_000.0
        ));
        if let Some(kids) = children.get(&Some(node.id)) {
            for k in kids {
                visit(out, children, k, depth + 1);
            }
        }
    }
    if let Some(tops) = children.get(&None) {
        for r in tops {
            visit(&mut out, &children, r, 0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    fn rec(id: u64, parent: Option<u64>, name: &str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            root: parent.unwrap_or(id),
            name: name.to_string(),
            category: "test",
            start_ns,
            dur_ns,
            counters: vec![("n".to_string(), 3)],
        }
    }

    #[test]
    fn chrome_export_parses_and_nests_by_track() {
        let records = vec![
            rec(1, None, "compile", 0, 100),
            rec(2, Some(1), "pass:dce", 10, 20),
            rec(3, None, "exec \"q\"", 200, 50),
        ];
        let json = chrome_trace_json(&records);
        let doc = parse(&json).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(events.len(), 3);
        // Child rides the parent's track.
        let child = &events[1];
        assert_eq!(child.get("tid").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(
            child
                .get("args")
                .and_then(|a| a.get("parent_id"))
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("n"))
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
        // Quote in the name must round-trip.
        assert_eq!(
            events[2].get("name").and_then(JsonValue::as_str),
            Some("exec \"q\"")
        );
    }

    #[test]
    fn text_tree_indents_children() {
        let records = vec![
            rec(1, None, "request", 0, 100),
            rec(2, Some(1), "exec", 10, 20),
            rec(3, Some(2), "batch[0]", 11, 15),
        ];
        let tree = text_tree(&records);
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("request"));
        assert!(lines[1].starts_with("  exec"));
        assert!(lines[2].starts_with("    batch[0]"));
    }

    #[test]
    fn orphaned_spans_become_roots() {
        let records = vec![rec(5, Some(99), "late", 0, 10)];
        assert!(text_tree(&records).starts_with("late"));
        assert!(parse(&chrome_trace_json(&records)).is_ok());
    }
}
