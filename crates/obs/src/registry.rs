//! [`MetricsRegistry`]: first-class counters, gauges and histograms with
//! labels, rendered as one consolidated Prometheus exposition.
//!
//! The tracing side of this crate answers "what happened inside *this*
//! request"; the registry answers "what is the process doing over time".
//! Every layer registers into the same namespace — `tssa-serve` bridges its
//! `MetricsSnapshot` and plan-cache counters, the dispatcher records
//! queue-wait and per-plan batch-occupancy histograms, and `PassManager`
//! records per-pass wall-time histograms — so one scrape shows the whole
//! stack.
//!
//! Handles ([`Counter`], [`Gauge`], [`HistogramMetric`]) are cheap atomic
//! cells, safe to record into from hot paths; the registry mutex is only
//! taken at registration and render time. Histograms use the same
//! power-of-two bucket scheme as the serving layer (bucket *i* covers
//! `[2^i, 2^(i+1))`), so recording is one atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::prom::PromText;

/// Number of power-of-two histogram buckets (up to ~2^39, ~6 days in µs).
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with an absolute value — for bridging counters owned
    /// elsewhere (a snapshot) into the registry.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge handle (f64 bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A sampled observation pinned to the trace it came from, rendered as an
/// OpenMetrics-style `# {trace_id="..."} value` suffix on the matching
/// bucket line — the bridge from an aggregate back to one concrete trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (same unit as the histogram).
    pub value: u64,
    /// Root span id of the trace that produced the observation.
    pub trace_id: u64,
}

struct HistogramCore {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    /// Latest trace-linked observation; two packed atomics instead of a
    /// mutex so the hot path stays lock-free (a torn read across the pair
    /// can at worst mislabel one scrape's exemplar, never corrupt data).
    exemplar_value: AtomicU64,
    exemplar_trace: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            exemplar_value: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }
    }

    fn bucket(value: u64) -> usize {
        let idx = 63 - value.max(1).leading_zeros() as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A fixed-bucket log2 histogram handle. Values are unit-agnostic `u64`s;
/// by convention the stack records microseconds (`_us` metric names).
#[derive(Clone)]
pub struct HistogramMetric(Arc<HistogramCore>);

impl HistogramMetric {
    /// Record one value.
    pub fn observe(&self, value: u64) {
        self.0.counts[HistogramCore::bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration, in microseconds.
    pub fn observe_duration_us(&self, d: std::time::Duration) {
        self.observe(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one value and pin it as the series' exemplar, linking the
    /// aggregate to the trace (root span id) that produced it. A
    /// `trace_id` of 0 means "untraced" and records without pinning.
    pub fn observe_with_exemplar(&self, value: u64, trace_id: u64) {
        self.observe(value);
        if trace_id != 0 {
            self.0.exemplar_value.store(value, Ordering::Relaxed);
            self.0.exemplar_trace.store(trace_id, Ordering::Relaxed);
        }
    }

    /// The latest trace-linked observation, when one was recorded.
    pub fn exemplar(&self) -> Option<Exemplar> {
        let trace_id = self.0.exemplar_trace.load(Ordering::Relaxed);
        (trace_id != 0).then(|| Exemplar {
            value: self.0.exemplar_value.load(Ordering::Relaxed),
            trace_id,
        })
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0.0 < p <= 1.0`), or 0 when empty — a ≤ 2× overestimate by
    /// construction.
    pub fn quantile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.0.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << HISTOGRAM_BUCKETS
    }

    /// `(upper bound, cumulative count)` per bucket, ascending, trailing
    /// empty buckets elided (the exporter's `+Inf` covers them).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut cumulative = 0u64;
        let mut out = Vec::new();
        for (i, c) in self.0.counts.iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            out.push((1u64 << (i + 1), cumulative));
        }
        while out.len() > 1 && out[out.len() - 1].1 == out[out.len() - 2].1 {
            out.pop();
        }
        out
    }
}

impl std::fmt::Debug for HistogramMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramMetric")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

enum Value {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
    /// A point-in-time copy of a histogram owned elsewhere (bridged via
    /// [`MetricsRegistry::set_histogram`]). Buckets are cumulative.
    BridgedHistogram {
        buckets: Vec<(f64, u64)>,
        sum: f64,
        count: u64,
    },
}

struct Series {
    labels: Vec<(String, String)>,
    value: Value,
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    series: Vec<Series>,
}

/// A set of metric families. Cheap to clone (shared interior); families
/// render in registration order, series within a family in label order.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Vec<Family>>>,
}

fn normalize(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry — the default destination for layers that
    /// are not handed an explicit one (e.g. `PassManager`).
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Whether two handles point at the same underlying registry.
    pub fn same_as(&self, other: &MetricsRegistry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn series_value(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Value,
    ) -> Value {
        let labels = normalize(labels);
        let mut families = self.inner.lock().expect("registry lock");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric family `{name}` registered as {} and {kind}",
                    f.kind
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            match (&series.value, kind) {
                (Value::Counter(c), _) => return Value::Counter(Arc::clone(c)),
                (Value::Gauge(g), _) => return Value::Gauge(Arc::clone(g)),
                (Value::Histogram(h), _) => return Value::Histogram(Arc::clone(h)),
                // A live handle is being requested where a bridged snapshot
                // was set: replace the snapshot below.
                (Value::BridgedHistogram { .. }, _) => {}
            }
        }
        let value = make();
        let handle = match &value {
            Value::Counter(c) => Value::Counter(Arc::clone(c)),
            Value::Gauge(g) => Value::Gauge(Arc::clone(g)),
            Value::Histogram(h) => Value::Histogram(Arc::clone(h)),
            Value::BridgedHistogram {
                buckets,
                sum,
                count,
            } => Value::BridgedHistogram {
                buckets: buckets.clone(),
                sum: *sum,
                count: *count,
            },
        };
        match family.series.iter_mut().find(|s| s.labels == labels) {
            Some(series) => series.value = value,
            None => family.series.push(Series { labels, value }),
        }
        handle
    }

    /// Get or create a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series_value(name, help, "counter", labels, || {
            Value::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            Value::Counter(c) => Counter(c),
            _ => unreachable!("family kind is pinned to counter"),
        }
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series_value(name, help, "gauge", labels, || {
            Value::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        }) {
            Value::Gauge(g) => Gauge(g),
            _ => unreachable!("family kind is pinned to gauge"),
        }
    }

    /// Get or create a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> HistogramMetric {
        match self.series_value(name, help, "histogram", labels, || {
            Value::Histogram(Arc::new(HistogramCore::new()))
        }) {
            Value::Histogram(h) => HistogramMetric(h),
            _ => unreachable!("family kind is pinned to histogram"),
        }
    }

    /// Bridge an absolute counter value owned elsewhere (snapshots).
    pub fn set_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.counter(name, help, labels).set(value);
    }

    /// Bridge an absolute gauge value owned elsewhere.
    pub fn set_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.gauge(name, help, labels).set(value);
    }

    /// Bridge a histogram owned elsewhere: `buckets` are cumulative
    /// `(upper bound, count)` pairs in ascending bound order. Overwrites
    /// any previous snapshot for the same series.
    pub fn set_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[(f64, u64)],
        sum: f64,
        count: u64,
    ) {
        let labels = normalize(labels);
        let mut families = self.inner.lock().expect("registry lock");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, "histogram",
                    "metric family `{name}` is not a histogram"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind: "histogram",
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        let value = Value::BridgedHistogram {
            buckets: buckets.to_vec(),
            sum,
            count,
        };
        match family.series.iter_mut().find(|s| s.labels == labels) {
            Some(series) => series.value = value,
            None => family.series.push(Series { labels, value }),
        }
    }

    /// Registered family count (for tests and diagnostics).
    pub fn family_count(&self) -> usize {
        self.inner.lock().expect("registry lock").len()
    }

    /// The whole registry as one Prometheus text-exposition document.
    pub fn prometheus_text(&self) -> String {
        let families = self.inner.lock().expect("registry lock");
        let mut prom = PromText::new();
        for family in families.iter() {
            let name = prom.family(&family.name, &family.help, family.kind);
            let mut series: Vec<&Series> = family.series.iter().collect();
            series.sort_by(|a, b| a.labels.cmp(&b.labels));
            for s in series {
                match &s.value {
                    Value::Counter(c) => {
                        prom.sample(&name, &s.labels, c.load(Ordering::Relaxed));
                    }
                    Value::Gauge(g) => {
                        prom.sample(&name, &s.labels, f64::from_bits(g.load(Ordering::Relaxed)));
                    }
                    Value::Histogram(h) => {
                        let hist = HistogramMetric(Arc::clone(h));
                        let buckets: Vec<(f64, u64)> = hist
                            .cumulative_buckets()
                            .into_iter()
                            .map(|(le, c)| (le as f64, c))
                            .collect();
                        Self::render_histogram(
                            &mut prom,
                            &name,
                            &s.labels,
                            &buckets,
                            hist.sum() as f64,
                            hist.count(),
                            hist.exemplar(),
                        );
                    }
                    Value::BridgedHistogram {
                        buckets,
                        sum,
                        count,
                    } => {
                        Self::render_histogram(
                            &mut prom, &name, &s.labels, buckets, *sum, *count, None,
                        );
                    }
                }
            }
        }
        prom.render()
    }

    fn render_histogram(
        prom: &mut PromText,
        name: &str,
        labels: &[(String, String)],
        buckets: &[(f64, u64)],
        sum: f64,
        count: u64,
        exemplar: Option<Exemplar>,
    ) {
        let bucket_name = format!("{name}_bucket");
        // The exemplar rides on the first bucket whose bound covers it
        // (OpenMetrics semantics); falls through to +Inf when out of range.
        let mut pending = exemplar;
        for &(le, cumulative) in buckets {
            let mut with_le = labels.to_vec();
            with_le.push(("le".to_string(), format!("{le}")));
            match pending {
                Some(e) if (e.value as f64) <= le => {
                    pending = None;
                    prom.sample_with_exemplar(
                        &bucket_name,
                        &with_le,
                        cumulative,
                        e.trace_id,
                        e.value,
                    );
                }
                _ => prom.sample(&bucket_name, &with_le, cumulative),
            }
        }
        let mut inf = labels.to_vec();
        inf.push(("le".to_string(), "+Inf".to_string()));
        match pending {
            Some(e) => prom.sample_with_exemplar(&bucket_name, &inf, count, e.trace_id, e.value),
            None => prom.sample(&bucket_name, &inf, count),
        }
        prom.sample(&format!("{name}_sum"), labels, sum);
        prom.sample(&format!("{name}_count"), labels, count);
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("families", &self.family_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_series_across_lookups() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("reqs_total", "Requests.", &[("plan", "yolo")]);
        let b = reg.counter("reqs_total", "Requests.", &[("plan", "yolo")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = reg.counter("reqs_total", "Requests.", &[("plan", "ssd")]);
        assert_eq!(other.get(), 0, "distinct labels are distinct series");
        assert_eq!(reg.family_count(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c", "h", &[("x", "1"), ("y", "2")]);
        let b = reg.counter("c", "h", &[("y", "2"), ("x", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauges_hold_floats() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("occupancy", "h", &[]);
        g.set(2.5);
        assert!((g.get() - 2.5).abs() < 1e-12);
        assert!(reg.prometheus_text().contains("occupancy 2.5"));
    }

    #[test]
    fn histograms_count_sum_and_quantile() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wait_us", "h", &[]);
        for _ in 0..9 {
            h.observe(100); // bucket le=128
        }
        h.observe(5_000); // bucket le=8192
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 5_900);
        assert_eq!(h.quantile(0.5), 128);
        assert_eq!(h.quantile(1.0), 8192);
        let text = reg.prometheus_text();
        assert!(text.contains("wait_us_bucket{le=\"128\"} 9"));
        assert!(text.contains("wait_us_bucket{le=\"+Inf\"} 10"));
        assert!(text.contains("wait_us_sum 5900"));
        assert!(text.contains("wait_us_count 10"));
    }

    #[test]
    fn bridged_histograms_render_from_snapshots() {
        let reg = MetricsRegistry::new();
        reg.set_histogram("lat_us", "h", &[], &[(2.0, 1), (4.0, 3)], 9.0, 4);
        let text = reg.prometheus_text();
        assert!(text.contains("lat_us_bucket{le=\"2\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_us_sum 9"));
        // A second bridge overwrites, not appends.
        reg.set_histogram("lat_us", "h", &[], &[(2.0, 2)], 3.0, 2);
        let text = reg.prometheus_text();
        assert!(text.contains("lat_us_count 2"));
        assert!(!text.contains("lat_us_count 4"));
    }

    #[test]
    fn exemplars_ride_the_matching_bucket_line() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wait_us", "h", &[]);
        h.observe(100);
        h.observe_with_exemplar(100, 0xABCD); // bucket le=128
        let text = reg.prometheus_text();
        assert!(
            text.contains("wait_us_bucket{le=\"128\"} 2 # {trace_id=\"000000000000abcd\"} 100"),
            "exemplar suffix missing:\n{text}"
        );
        // Only the covering bucket carries the suffix.
        assert_eq!(text.matches(" # {trace_id=").count(), 1);
        assert_eq!(
            h.exemplar(),
            Some(Exemplar {
                value: 100,
                trace_id: 0xABCD
            })
        );
        // A later traced observation replaces the exemplar; untraced ones
        // (trace_id 0) record without touching it.
        h.observe_with_exemplar(5_000, 0xFF);
        h.observe_with_exemplar(7, 0);
        assert_eq!(
            h.exemplar(),
            Some(Exemplar {
                value: 5_000,
                trace_id: 0xFF
            })
        );
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn bridged_histograms_carry_no_exemplar() {
        let reg = MetricsRegistry::new();
        reg.set_histogram("lat_us", "h", &[], &[(2.0, 1)], 2.0, 1);
        assert!(!reg.prometheus_text().contains("trace_id"));
    }

    #[test]
    fn global_is_one_registry() {
        assert!(MetricsRegistry::global().same_as(MetricsRegistry::global()));
        let fresh = MetricsRegistry::new();
        assert!(!fresh.same_as(MetricsRegistry::global()));
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "h", &[]);
        reg.gauge("m", "h", &[]);
    }
}
