//! `tssa-obs`: end-to-end tracing and profiling for the TensorSSA stack.
//!
//! Every layer of the repository does timed work — the pipelines compile
//! (per-pass), the fusion passes rewrite, the backend executes (per-batch),
//! the serving layer queues and coalesces (per-request) — and this crate is
//! the one vocabulary they all speak:
//!
//! * [`Tracer`] / [`Span`] / [`TraceScope`] — hierarchical wall-clock spans
//!   with attached counters (graph deltas, fusion groups, kernel launches,
//!   batch occupancy). Spans are owned values, so a serve request span can
//!   be opened at admission on one thread and finished by the worker that
//!   completed it.
//! * [`TraceSink`] — where finished spans go. [`RingSink`] (bounded, most
//!   recent N) is the default for tests and ad-hoc profiling;
//!   [`StreamSink`] writes NDJSON spans to any `io::Write` for long chaos
//!   and load runs; [`NullSink`] backs [`Tracer::disabled`] so untraced
//!   paths cost one branch.
//! * [`Sampler`] / [`Tracer::sampled`] — always-on production tracing:
//!   seeded head-sampling by trace root plus tail-keep rules that always
//!   retain slow, errored and fault-marked traces.
//! * [`MetricsRegistry`] — process-wide counters, gauges and labeled
//!   histograms that every layer (serve, plan cache, `PassManager`)
//!   registers into, rendered as one consolidated Prometheus exposition.
//! * [`chrome_trace_json`] — exports any span set as Chrome-trace JSON for
//!   `chrome://tracing` / Perfetto; [`text_tree`] renders the same tree for
//!   terminals and docs.
//! * [`PromText`] — a Prometheus text-exposition encoder used by
//!   `tssa-serve` to publish its `MetricsSnapshot` (counters, latency
//!   histogram buckets and p50/p95/p99 quantiles).
//! * [`json`] — a tiny validating JSON reader so tests and CI can check the
//!   exporters without external dependencies.
//!
//! # Examples
//!
//! ```
//! use tssa_obs::{chrome_trace_json, Tracer};
//!
//! let (tracer, sink) = Tracer::ring(1024);
//! let mut compile = tracer.root("compile", "compile");
//! {
//!     let mut pass = compile.child("pass:dce", "pass");
//!     pass.counter("rewrites", 2);
//! } // recorded on drop
//! compile.counter("nodes_removed", 2);
//! compile.finish();
//!
//! let records = sink.snapshot();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[1].parent, Some(records[0].id));
//! let json = chrome_trace_json(&records);
//! assert!(tssa_obs::json::parse(&json).is_ok());
//! ```

mod chrome;
pub mod json;
mod profile;
mod prom;
mod registry;
mod rotate;
mod sample;
mod sink;
mod span;
mod stream;

pub use chrome::{chrome_trace_json, text_tree};
pub use profile::{
    group_frame, GroupHotness, OpKey, OpStat, ProfileSink, ProfileSnapshot, Profiler,
    PROFILE_BUCKETS, TOP_LEVEL_GROUP,
};
pub use prom::{escape_label_value, labels_fragment, PromText};
pub use registry::{Counter, Exemplar, Gauge, HistogramMetric, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use rotate::RotatingFile;
pub use sample::{Sampler, SamplerStats, DEFAULT_KEEP_MARKS};
pub use sink::{NullSink, RingSink, TraceSink};
pub use span::{Span, SpanRecord, TraceScope, Tracer};
pub use stream::{span_ndjson, StreamSink};

// Spans cross thread boundaries by design (serve opens them at admission
// and finishes them on workers); pin that contract at compile time.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Tracer>();
    assert_send_sync::<Span>();
    assert_send_sync::<TraceScope>();
    assert_send_sync::<RingSink>();
    assert_send_sync::<StreamSink<Vec<u8>>>();
    assert_send_sync::<SpanRecord>();
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<Counter>();
    assert_send_sync::<Gauge>();
    assert_send_sync::<HistogramMetric>();
    assert_send_sync::<Profiler>();
    assert_send_sync::<ProfileSink>();
};
