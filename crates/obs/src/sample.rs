//! Trace sampling: seeded head decisions by trace root plus tail-keep
//! rules, so production services can leave tracing always-on with bounded
//! sink volume.
//!
//! The unit of sampling is the *trace* — every span sharing one root id —
//! never the individual span, so a kept trace is always complete. Two
//! mechanisms combine:
//!
//! * **Head sampling.** When a root span is minted, a seeded hash of the
//!   root's arrival index decides whether the whole trace streams to the
//!   sink. The decision is a pure function of `(seed, arrival order)`, so
//!   two runs submitting the same traffic in the same order keep the same
//!   traces.
//! * **Tail keep.** Traces the head decision rejected are buffered until
//!   their root finishes, then retained anyway if any span carries a
//!   `fault:*` mark, one of the configured error marks (`timed_out`,
//!   `degraded`, `failed`, `deadline_exceeded` by default), or the root ran
//!   past [`Sampler::slow_after`]. Everything else is discarded — the slow
//!   and broken traces survive even at aggressive sampling rates.
//!
//! Buffering is bounded by the spans of currently *in-flight* traces; a
//! finished trace either streams out or frees its buffer immediately.
//! Spans whose trace is unknown (foreign roots, or stragglers finishing
//! after their root closed the trace) fail open and are forwarded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::sink::TraceSink;
use crate::span::SpanRecord;

/// Marks that force tail retention regardless of sampling rate, in
/// addition to the `fault:*` prefix.
pub const DEFAULT_KEEP_MARKS: [&str; 4] = ["timed_out", "degraded", "failed", "deadline_exceeded"];

/// Sampling policy consumed by [`crate::Tracer::sampled`].
#[derive(Debug, Clone)]
pub struct Sampler {
    seed: u64,
    rate: f64,
    slow_after_ns: Option<u64>,
    keep_marks: Vec<String>,
}

impl Sampler {
    /// Head-keep roughly `rate` (clamped to `[0, 1]`) of traces, decided by
    /// a seeded hash of each root's arrival index. Tail-keep rules default
    /// to the `fault:*` prefix plus [`DEFAULT_KEEP_MARKS`]; no slow-trace
    /// threshold until [`Sampler::slow_after`] sets one.
    pub fn new(seed: u64, rate: f64) -> Sampler {
        Sampler {
            seed,
            rate: rate.clamp(0.0, 1.0),
            slow_after_ns: None,
            keep_marks: DEFAULT_KEEP_MARKS.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Also tail-keep traces whose root span ran at least `threshold`.
    pub fn slow_after(mut self, threshold: Duration) -> Sampler {
        self.slow_after_ns = Some(threshold.as_nanos().min(u128::from(u64::MAX)) as u64);
        self
    }

    /// Also tail-keep traces containing a span marked `name`.
    pub fn also_keep_marked(mut self, name: impl Into<String>) -> Sampler {
        self.keep_marks.push(name.into());
        self
    }

    /// The configured head-sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The seed behind the head decisions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The head decision for the `index`-th root minted by the tracer — a
    /// pure function of `(seed, index)`, exposed so tests can predict the
    /// kept set.
    pub fn head_keep(&self, index: u64) -> bool {
        if self.rate >= 1.0 {
            return true;
        }
        if self.rate <= 0.0 {
            return false;
        }
        let h = splitmix64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Top 53 bits give a uniform draw in [0, 1).
        ((h >> 11) as f64) / ((1u64 << 53) as f64) < self.rate
    }

    /// Whether a finished trace must be retained by the tail rules.
    fn tail_keep(&self, trace: &[SpanRecord]) -> bool {
        trace.iter().any(|r| {
            let marked = r.counters.iter().any(|(name, v)| {
                *v != 0 && (name.starts_with("fault:") || self.keep_marks.iter().any(|m| m == name))
            });
            let slow = self
                .slow_after_ns
                .is_some_and(|limit| r.id == r.root && r.dur_ns >= limit);
            marked || slow
        })
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counters describing what a sampling tracer has done so far; see
/// [`crate::Tracer::sampler_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Root spans minted (head decisions taken).
    pub roots: u64,
    /// Traces streamed because the head decision kept them.
    pub head_kept: u64,
    /// Traces retained by a tail-keep rule after the head said no.
    pub tail_kept: u64,
    /// Traces discarded entirely.
    pub dropped_traces: u64,
    /// Spans discarded with those traces.
    pub dropped_spans: u64,
    /// Spans forwarded without a pending trace entry (foreign roots, or
    /// stragglers finishing after their root) — sampling fails open.
    pub passthrough: u64,
}

impl SamplerStats {
    /// Traces that reached the sink, by either mechanism.
    pub fn kept(&self) -> u64 {
        self.head_kept + self.tail_kept
    }
}

struct Pending {
    head: bool,
    buf: Vec<SpanRecord>,
}

struct SamplerState {
    next_root_index: u64,
    pending: HashMap<u64, Pending>,
}

/// Shared sampling state owned by a tracer built with
/// [`crate::Tracer::sampled`].
pub(crate) struct SamplerCore {
    cfg: Sampler,
    state: Mutex<SamplerState>,
    roots: AtomicU64,
    head_kept: AtomicU64,
    tail_kept: AtomicU64,
    dropped_traces: AtomicU64,
    dropped_spans: AtomicU64,
    passthrough: AtomicU64,
}

enum Verdict {
    Forward(SpanRecord),
    Passthrough(SpanRecord),
    Buffered,
    Closed(Vec<SpanRecord>),
}

impl SamplerCore {
    pub(crate) fn new(cfg: Sampler) -> SamplerCore {
        SamplerCore {
            cfg,
            state: Mutex::new(SamplerState {
                next_root_index: 0,
                pending: HashMap::new(),
            }),
            roots: AtomicU64::new(0),
            head_kept: AtomicU64::new(0),
            tail_kept: AtomicU64::new(0),
            dropped_traces: AtomicU64::new(0),
            dropped_spans: AtomicU64::new(0),
            passthrough: AtomicU64::new(0),
        }
    }

    /// A new trace begins: take its head decision in arrival order.
    pub(crate) fn admit(&self, root_id: u64) {
        let mut state = self.state.lock().expect("sampler lock");
        let index = state.next_root_index;
        state.next_root_index += 1;
        let head = self.cfg.head_keep(index);
        state.pending.insert(
            root_id,
            Pending {
                head,
                buf: Vec::new(),
            },
        );
        drop(state);
        self.roots.fetch_add(1, Ordering::Relaxed);
        if head {
            self.head_kept.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Route one finished span: stream it (head-kept trace), buffer it
    /// (undecided trace), close out its trace (the root just finished), or
    /// forward it untouched (unknown trace — fail open).
    pub(crate) fn offer(&self, record: SpanRecord, sink: &dyn TraceSink) {
        let verdict = {
            let mut state = self.state.lock().expect("sampler lock");
            let is_root = record.id == record.root;
            match state.pending.get_mut(&record.root) {
                None => Verdict::Passthrough(record),
                Some(p) if p.head => {
                    if is_root {
                        state.pending.remove(&record.root);
                    }
                    Verdict::Forward(record)
                }
                Some(p) => {
                    let root = record.root;
                    p.buf.push(record);
                    if is_root {
                        let p = state.pending.remove(&root).expect("pending entry");
                        Verdict::Closed(p.buf)
                    } else {
                        Verdict::Buffered
                    }
                }
            }
        };
        // The sink runs outside the sampler lock: record() may do file IO.
        match verdict {
            Verdict::Forward(r) => sink.record(r),
            Verdict::Passthrough(r) => {
                self.passthrough.fetch_add(1, Ordering::Relaxed);
                sink.record(r);
            }
            Verdict::Buffered => {}
            Verdict::Closed(buf) => {
                if self.cfg.tail_keep(&buf) {
                    self.tail_kept.fetch_add(1, Ordering::Relaxed);
                    for r in buf {
                        sink.record(r);
                    }
                } else {
                    self.dropped_traces.fetch_add(1, Ordering::Relaxed);
                    self.dropped_spans
                        .fetch_add(buf.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }

    pub(crate) fn stats(&self) -> SamplerStats {
        SamplerStats {
            roots: self.roots.load(Ordering::Relaxed),
            head_kept: self.head_kept.load(Ordering::Relaxed),
            tail_kept: self.tail_kept.load(Ordering::Relaxed),
            dropped_traces: self.dropped_traces.load(Ordering::Relaxed),
            dropped_spans: self.dropped_spans.load(Ordering::Relaxed),
            passthrough: self.passthrough.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RingSink, Tracer};
    use std::sync::Arc;

    fn sampled_ring(sampler: Sampler) -> (Tracer, Arc<RingSink>) {
        let sink = Arc::new(RingSink::new(1024));
        let tracer = Tracer::sampled(Arc::clone(&sink) as Arc<dyn TraceSink>, sampler);
        (tracer, sink)
    }

    #[test]
    fn rate_zero_drops_plain_traces() {
        let (tracer, sink) = sampled_ring(Sampler::new(7, 0.0));
        for _ in 0..10 {
            let root = tracer.root("request", "serve");
            root.child("exec", "exec").finish();
            root.finish();
        }
        assert!(sink.is_empty());
        let stats = tracer.sampler_stats().unwrap();
        assert_eq!(stats.roots, 10);
        assert_eq!(stats.dropped_traces, 10);
        assert_eq!(stats.dropped_spans, 20);
    }

    #[test]
    fn rate_one_streams_everything() {
        let (tracer, sink) = sampled_ring(Sampler::new(7, 1.0));
        let root = tracer.root("request", "serve");
        root.child("exec", "exec").finish();
        root.finish();
        assert_eq!(sink.len(), 2);
        let stats = tracer.sampler_stats().unwrap();
        assert_eq!(stats.head_kept, 1);
        assert_eq!(stats.dropped_spans, 0);
    }

    #[test]
    fn fault_marked_traces_survive_rate_zero() {
        let (tracer, sink) = sampled_ring(Sampler::new(7, 0.0));
        let root = tracer.root("request", "serve");
        let mut exec = root.child("exec", "exec");
        exec.mark("fault:worker_panic");
        exec.finish();
        root.finish();
        // Whole trace retained, not just the marked span.
        let records = sink.snapshot();
        assert_eq!(records.len(), 2);
        assert!(records.iter().any(|r| r.is_marked("fault:worker_panic")));
        assert_eq!(tracer.sampler_stats().unwrap().tail_kept, 1);
    }

    #[test]
    fn timed_out_mark_on_root_is_kept() {
        let (tracer, sink) = sampled_ring(Sampler::new(7, 0.0));
        let mut root = tracer.root("request", "serve");
        root.mark("timed_out");
        root.finish();
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn slow_roots_are_tail_kept() {
        let (tracer, sink) = sampled_ring(Sampler::new(7, 0.0).slow_after(Duration::ZERO));
        tracer.root("request", "serve").finish();
        assert_eq!(sink.len(), 1, "every root is >= the zero threshold");
    }

    #[test]
    fn head_decisions_are_seed_deterministic() {
        let a = Sampler::new(42, 0.3);
        let b = Sampler::new(42, 0.3);
        let c = Sampler::new(43, 0.3);
        let keeps = |s: &Sampler| (0..256).map(|i| s.head_keep(i)).collect::<Vec<_>>();
        assert_eq!(keeps(&a), keeps(&b));
        assert_ne!(
            keeps(&a),
            keeps(&c),
            "a different seed keeps a different set"
        );
        let kept = keeps(&a).iter().filter(|k| **k).count();
        assert!((40..=115).contains(&kept), "rate 0.3 of 256 kept {kept}");
    }

    #[test]
    fn stragglers_after_root_fail_open() {
        let (tracer, sink) = sampled_ring(Sampler::new(7, 0.0));
        let root = tracer.root("request", "serve");
        let late = root.child("late", "serve");
        root.finish(); // closes (and drops) the trace
        late.finish(); // no pending entry left: forwarded
        assert_eq!(sink.len(), 1);
        assert_eq!(tracer.sampler_stats().unwrap().passthrough, 1);
    }
}
