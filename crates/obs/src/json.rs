//! A minimal JSON reader used to *validate* the exporters' output in tests
//! and CI without an external dependency (the workspace builds offline).
//!
//! Supports the full JSON grammar except `\uXXXX` surrogate pairs, which are
//! decoded as replacement characters. Not a performance-oriented parser —
//! keep it for validation, not data paths.

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion order preserved in `keys`).
    Obj(HashMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y"}, "d": null, "e": true}"#)
            .expect("parses");
        assert_eq!(
            doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\"y")
        );
        assert_eq!(doc.get("d"), Some(&JsonValue::Null));
        assert_eq!(doc.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{}x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\\n\"").unwrap().as_str(), Some("A\n"));
    }
}
