//! Prometheus text-exposition encoder (version 0.0.4 of the format): the
//! small, dependency-free subset needed to publish counters, gauges,
//! histograms and precomputed quantiles.

use std::fmt::Write as _;

/// Builds one exposition document. Metric families are emitted in call
/// order, each with its `# HELP` / `# TYPE` header.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a label *value* per the text exposition format: backslash,
/// double quote and newline must be escaped; everything else is literal.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render `labels` as a `{k="v",...}` fragment (empty string when there
/// are no labels). Label names are sanitized, values escaped.
pub fn labels_fragment(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label_value(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

impl PromText {
    /// An empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emit a family header (`# HELP` / `# TYPE`) alone, for callers that
    /// emit their own (typically labeled) sample lines via
    /// [`PromText::sample`]. Returns the sanitized family name.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) -> String {
        let name = sanitize(name);
        self.header(&name, help, kind);
        name
    }

    /// One sample line: `name{labels} value`. `name` may carry a suffix
    /// (`_bucket`, `_sum`, `_count`); it is sanitized either way.
    pub fn sample(
        &mut self,
        name: &str,
        labels: &[(String, String)],
        value: impl std::fmt::Display,
    ) {
        let _ = writeln!(
            self.out,
            "{}{} {}",
            sanitize(name),
            labels_fragment(labels),
            value
        );
    }

    /// One sample line carrying an OpenMetrics-style exemplar suffix:
    /// `name{labels} value # {trace_id="<hex>"} exemplar_value`. Classic
    /// Prometheus text parsers must treat everything after `#` as ignorable;
    /// the in-repo scrapers strip the suffix explicitly.
    pub fn sample_with_exemplar(
        &mut self,
        name: &str,
        labels: &[(String, String)],
        value: impl std::fmt::Display,
        trace_id: u64,
        exemplar_value: u64,
    ) {
        let _ = writeln!(
            self.out,
            "{}{} {} # {{trace_id=\"{:016x}\"}} {}",
            sanitize(name),
            labels_fragment(labels),
            value,
            trace_id,
            exemplar_value
        );
    }

    /// A monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let name = sanitize(name);
        self.header(&name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A point-in-time gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        let name = sanitize(name);
        self.header(&name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A histogram from *cumulative* bucket counts. `buckets` are
    /// `(upper_bound, cumulative_count)` pairs in increasing bound order;
    /// the mandatory `+Inf` bucket and `_sum`/`_count` series are appended
    /// from `sum` and `count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        buckets: &[(f64, u64)],
        sum: f64,
        count: u64,
    ) {
        let name = sanitize(name);
        self.header(&name, help, "histogram");
        for (le, cumulative) in buckets {
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(self.out, "{name}_sum {sum}");
        let _ = writeln!(self.out, "{name}_count {count}");
    }

    /// Precomputed quantiles in summary notation: `(quantile, value)` pairs
    /// like `(0.5, p50)`.
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        quantiles: &[(f64, f64)],
        sum: f64,
        count: u64,
    ) {
        let name = sanitize(name);
        self.header(&name, help, "summary");
        for (q, v) in quantiles {
            let _ = writeln!(self.out, "{name}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(self.out, "{name}_sum {sum}");
        let _ = writeln!(self.out, "{name}_count {count}");
    }

    /// The finished document.
    pub fn render(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_format() {
        let mut p = PromText::new();
        p.counter("reqs_total", "Total requests.", 7);
        p.gauge("occupancy", "Mean batch occupancy.", 2.5);
        let text = p.render();
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("reqs_total 7"));
        assert!(text.contains("# TYPE occupancy gauge"));
        assert!(text.contains("occupancy 2.5"));
    }

    #[test]
    fn histogram_appends_inf_sum_count() {
        let mut p = PromText::new();
        p.histogram("lat_us", "Latency.", &[(2.0, 1), (4.0, 3)], 9.0, 4);
        let text = p.render();
        assert!(text.contains("lat_us_bucket{le=\"2\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"4\"} 3"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_us_sum 9"));
        assert!(text.contains("lat_us_count 4"));
    }

    #[test]
    fn summary_emits_quantiles() {
        let mut p = PromText::new();
        p.summary(
            "lat_us",
            "Latency.",
            &[(0.5, 128.0), (0.99, 8192.0)],
            0.0,
            0,
        );
        let text = p.render();
        assert!(text.contains("lat_us{quantile=\"0.5\"} 128"));
        assert!(text.contains("lat_us{quantile=\"0.99\"} 8192"));
    }

    #[test]
    fn names_are_sanitized() {
        let mut p = PromText::new();
        p.counter("bad-name.x", "h", 1);
        assert!(p.render().contains("bad_name_x 1"));
    }
}
