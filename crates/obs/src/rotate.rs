//! [`RotatingFile`]: a size-rotated file writer for streaming sinks.
//!
//! A long-running service streaming NDJSON spans to disk needs rotation or
//! the file grows without bound. External rotation (logrotate et al.) can
//! truncate mid-line; this writer rotates itself, and only at *flush
//! boundaries* — [`crate::StreamSink`] flushes after whole records, so
//! every rotated file is complete, parseable NDJSON cut at a line
//! boundary.
//!
//! Rotation shifts `path` → `path.1` → … → `path.<keep>` (the oldest is
//! dropped) and reopens a fresh `path`, like classic logrotate numbering.
//! The rotation count is exposed so deployments can alert on runaway
//! rotation (a symptom of trace spam).

use std::fs::File;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A file writer that rotates by size at flush boundaries.
pub struct RotatingFile {
    path: PathBuf,
    file: File,
    /// Bytes written to the current incarnation of `path`.
    bytes: u64,
    max_bytes: u64,
    keep: usize,
    rotations: Arc<AtomicU64>,
}

impl RotatingFile {
    /// Create (truncate) `path`, rotating once at least `max_bytes` have
    /// been written and a flush lands. Keeps `keep` rotated files
    /// (`path.1` newest … `path.<keep>` oldest; min 1).
    ///
    /// # Errors
    ///
    /// Propagates file creation failures.
    pub fn create(
        path: impl Into<PathBuf>,
        max_bytes: u64,
        keep: usize,
    ) -> io::Result<RotatingFile> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(RotatingFile {
            path,
            file,
            bytes: 0,
            max_bytes: max_bytes.max(1),
            keep: keep.max(1),
            rotations: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Completed rotations so far.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    /// A shared handle to the rotation counter (usable after the file has
    /// been moved into a sink).
    pub fn rotation_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.rotations)
    }

    fn numbered(&self, i: usize) -> PathBuf {
        let mut s = self.path.clone().into_os_string();
        s.push(format!(".{i}"));
        PathBuf::from(s)
    }

    fn rotate(&mut self) -> io::Result<()> {
        // Shift the retained generations up; the oldest falls off the end.
        // Missing generations are fine (early in the file's life).
        for i in (1..self.keep).rev() {
            let _ = std::fs::rename(self.numbered(i), self.numbered(i + 1));
        }
        std::fs::rename(&self.path, self.numbered(1))?;
        self.file = File::create(&self.path)?;
        self.bytes = 0;
        self.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Write for RotatingFile {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let n = self.file.write(data)?;
        self.bytes += n as u64;
        Ok(n)
    }

    /// Flush, then rotate if the size threshold was crossed. Rotation
    /// happens *only* here — callers that flush at record boundaries (as
    /// [`crate::StreamSink`] does) therefore never split a record across
    /// files.
    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()?;
        if self.bytes >= self.max_bytes {
            self.rotate()?;
        }
        Ok(())
    }
}

impl crate::StreamSink<RotatingFile> {
    /// Completed rotations of the underlying rotating file.
    pub fn rotations(&self) -> u64 {
        self.with_writer(RotatingFile::rotations)
    }

    /// Sink health plus the rotation counter as Prometheus text.
    pub fn prometheus_text_rotating(&self) -> String {
        let mut prom = self.prometheus_partial();
        prom.counter(
            "tssa_obs_sink_rotations_total",
            "Size-triggered rotations of the streaming sink's output file",
            self.rotations(),
        );
        prom.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use crate::span::SpanRecord;
    use crate::StreamSink;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tssa-rotate-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn rotates_only_at_flush_and_keeps_generations() {
        let path = tmp("gen.log");
        let mut f = RotatingFile::create(&path, 6, 2).unwrap();
        // Over the threshold, but no flush yet: no rotation.
        f.write_all(b"first-file-0123456789\n").unwrap();
        assert_eq!(f.rotations(), 0);
        f.flush().unwrap();
        assert_eq!(f.rotations(), 1);
        f.write_all(b"second\n").unwrap();
        f.flush().unwrap();
        f.write_all(b"third\n").unwrap();
        f.flush().unwrap();
        assert_eq!(f.rotations(), 3);
        // path is fresh, .1 and .2 hold the two newest retired files; the
        // first file fell off the end (keep = 2).
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        let gen1 = std::fs::read_to_string(f.numbered(1)).unwrap();
        let gen2 = std::fs::read_to_string(f.numbered(2)).unwrap();
        assert_eq!(gen1, "third\n");
        assert_eq!(gen2, "second\n");
        assert!(!f.numbered(3).exists());
    }

    #[test]
    fn under_threshold_flushes_do_not_rotate() {
        let path = tmp("small.log");
        let mut f = RotatingFile::create(&path, 1024, 1).unwrap();
        for _ in 0..10 {
            f.write_all(b"line\n").unwrap();
            f.flush().unwrap();
        }
        assert_eq!(f.rotations(), 0);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 10);
    }

    #[test]
    fn stream_sink_rotation_cuts_at_line_boundaries() {
        let path = tmp("spans.ndjson");
        let file = RotatingFile::create(&path, 512, 4).unwrap();
        let counter = file.rotation_counter();
        let sink = StreamSink::with_flush_every(file, 4);
        for id in 1..=200u64 {
            sink.record(SpanRecord {
                id,
                parent: None,
                root: id,
                name: format!("span-{id}"),
                category: "test",
                start_ns: id,
                dur_ns: 1,
                counters: Vec::new(),
            });
        }
        sink.flush().unwrap();
        assert!(sink.rotations() > 0, "200 spans must overflow 512 bytes");
        assert_eq!(sink.rotations(), counter.load(Ordering::Relaxed));
        assert_eq!(sink.dropped(), 0);
        let prom = sink.prometheus_text_rotating();
        assert!(
            prom.contains("tssa_obs_sink_rotations_total"),
            "rotation counter missing from exposition:\n{prom}"
        );
        // Every generation on disk — current and rotated — is whole-line
        // NDJSON: rotation never split a record.
        let mut total_lines = 0u64;
        let rotations = sink.rotations();
        let file = sink.into_inner();
        let mut paths = vec![path.clone()];
        (1..=4).for_each(|i| paths.push(file.numbered(i)));
        for p in paths {
            let Ok(text) = std::fs::read_to_string(&p) else {
                continue;
            };
            if !text.is_empty() {
                assert!(text.ends_with('\n'), "{}: cut mid-line", p.display());
            }
            for line in text.lines() {
                crate::json::parse(line).expect("rotated NDJSON line parses");
                total_lines += 1;
            }
        }
        // keep=4 retains every span here only if few rotations happened;
        // with more, older spans are dropped with the oldest generation.
        assert!(total_lines > 0);
        assert!(
            total_lines <= 200 && (rotations > 4 || total_lines == 200),
            "{total_lines} lines across generations after {rotations} rotations"
        );
    }
}
