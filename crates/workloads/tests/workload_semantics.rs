//! Semantic sanity checks on the workloads themselves: outputs have the
//! right shapes and the domain-level invariants hold (probabilities in
//! [0, 1], clipped boxes inside the image, masks zeroed at borders, …).

use tssa_backend::{ExecConfig, Executor, RtValue};
use tssa_workloads::Workload;

fn run(name: &str, batch: usize, seq: usize) -> Vec<RtValue> {
    let w = Workload::by_name(name).expect("known workload");
    let g = w.graph().expect("compiles");
    Executor::new(ExecConfig::compiled())
        .run(&g, &w.inputs(batch, seq, 321))
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .0
}

#[test]
fn yolov3_confidences_are_probabilities() {
    let outs = run("yolov3", 2, 0);
    let out = outs[0].as_tensor().unwrap();
    assert_eq!(out.shape()[2], 16);
    // Channels 4.. are sigmoided.
    let conf = out.slice(2, 4, i64::MAX as isize, 1).unwrap();
    assert!(conf.min_all() >= 0.0 && conf.max_all() <= 1.0);
    // Box sizes (2:4) are exp(clamped) * 0.5: strictly positive.
    let wh = out.slice(2, 2, 4, 1).unwrap();
    assert!(wh.min_all() > 0.0);
}

#[test]
fn ssd_boxes_are_clipped_to_unit_square() {
    let outs = run("ssd", 3, 0);
    let boxes = outs[0].as_tensor().unwrap();
    assert!(boxes.min_all() >= 0.0);
    assert!(boxes.max_all() <= 1.0);
}

#[test]
fn yolact_borders_are_zero() {
    let outs = run("yolact", 2, 0);
    let masks = outs[0].as_tensor().unwrap();
    let (h, w) = (masks.shape()[1], masks.shape()[2]);
    for b in 0..masks.shape()[0] {
        let img = masks.select(0, b as isize).unwrap();
        assert_eq!(img.slice(0, 0, 2, 1).unwrap().sum_all(), 0.0);
        assert_eq!(
            img.slice(0, (h - 2) as isize, h as isize, 1)
                .unwrap()
                .sum_all(),
            0.0
        );
        assert_eq!(img.slice(1, 0, 2, 1).unwrap().sum_all(), 0.0);
        assert_eq!(
            img.slice(1, (w - 2) as isize, w as isize, 1)
                .unwrap()
                .sum_all(),
            0.0
        );
    }
    // Thresholding: every surviving value is above 0.5.
    let v = masks.to_vec_f32().unwrap();
    assert!(v.iter().all(|&x| x == 0.0 || x > 0.5));
}

#[test]
fn fcos_outputs_scores_and_clipped_boxes() {
    let outs = run("fcos", 2, 0);
    let boxes = outs[0].as_tensor().unwrap();
    let scores = outs[1].as_tensor().unwrap();
    assert!(boxes.min_all() >= 0.0 && boxes.max_all() <= 640.0);
    assert!(scores.min_all() >= 0.0 && scores.max_all() <= 1.0);
}

#[test]
fn lstm_outputs_are_bounded_by_gates() {
    let outs = run("lstm", 2, 6);
    let seq_out = outs[0].as_tensor().unwrap();
    assert_eq!(seq_out.shape()[0], 6);
    // h = sigmoid(..) * tanh(c): |h| < 1 always.
    assert!(seq_out.max_all() < 1.0 && seq_out.min_all() > -1.0);
    // Final h equals the last time step written into the output.
    let h = outs[1].as_tensor().unwrap();
    let last = seq_out.select(0, 5).unwrap();
    assert!(h.allclose(&last, 1e-6));
}

#[test]
fn nasrnn_final_state_matches_last_step() {
    let outs = run("nasrnn", 2, 5);
    let seq_out = outs[0].as_tensor().unwrap();
    let h = outs[1].as_tensor().unwrap();
    let last = seq_out.select(0, 4).unwrap();
    assert!(h.allclose(&last, 1e-6));
}

#[test]
fn seq2seq_emits_every_step() {
    let outs = run("seq2seq", 2, 7);
    let seq_out = outs[0].as_tensor().unwrap();
    assert_eq!(seq_out.shape()[0], 7);
    // tanh-bounded hidden states; no step left at its zero initialization.
    for t in 0..7 {
        let step = seq_out.select(0, t as isize).unwrap();
        assert!(step.abs().sum_all() > 0.0, "step {t} never written");
        assert!(step.max_all() <= 1.0 && step.min_all() >= -1.0);
    }
}

#[test]
fn attention_rows_are_convex_combinations() {
    let outs = run("attention", 1, 8);
    let out = outs[0].as_tensor().unwrap();
    assert_eq!(out.shape()[0], 8);
    // Row t is a softmax-weighted combination of the first t+1 value rows;
    // its entries must lie within the min/max of v (convexity). We can at
    // least assert finiteness and non-degeneracy here.
    let v = out.to_vec_f32().unwrap();
    assert!(v.iter().all(|x| x.is_finite()));
    assert!(out.abs().sum_all() > 0.0);
}

#[test]
fn causal_masking_first_row_copies_first_value() {
    // For t = 0 every other position is masked: out[0] == v[0].
    let w = Workload::by_name("attention").unwrap();
    let g = w.graph().unwrap();
    let inputs = w.inputs(1, 6, 99);
    let (outs, _) = Executor::new(ExecConfig::compiled())
        .run(&g, &inputs)
        .unwrap();
    let out0 = outs[0].as_tensor().unwrap().select(0, 0).unwrap();
    let v0 = inputs[2].as_tensor().unwrap().select(0, 0).unwrap();
    assert!(
        out0.allclose(&v0, 1e-3),
        "masked softmax at t=0 must select v[0]"
    );
}
