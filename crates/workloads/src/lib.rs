//! The eight imperative tensor-program workloads of the paper's evaluation
//! (§5.1): the post-processing of four computer-vision models (YOLOv3, SSD,
//! YOLACT, FCOS), three NLP recurrences (NASRNN, LSTM, seq2seq) and an
//! attention module.
//!
//! Each workload is written in the frontend DSL with the same view/mutation/
//! loop structure as the original PyTorch code: CV post-processing writes
//! decoded boxes into slices of a result tensor; NLP cells iterate over the
//! sequence writing one time-step slice per iteration; attention masks future
//! positions in place. The neural-network backbones are *not* part of the
//! benchmark (the paper runs them under TensorRT and compares only the
//! imperative part).
//!
//! # Examples
//!
//! ```
//! use tssa_workloads::{all_workloads, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ws = all_workloads();
//! assert_eq!(ws.len(), 8);
//! let yolo = Workload::by_name("yolov3").expect("known workload");
//! let graph = yolo.graph()?;
//! let inputs = yolo.inputs(2, 0, 42);
//! assert_eq!(graph.block(graph.top()).params.len(), inputs.len());
//! # Ok(())
//! # }
//! ```

use tssa_backend::RtValue;
use tssa_frontend::{compile, FrontendError};
use tssa_ir::Graph;
use tssa_tensor::Tensor;

/// Workload family, used to group results like the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Computer-vision post-processing.
    Cv,
    /// NLP recurrence.
    Nlp,
    /// Attention module.
    Attention,
}

/// One benchmark program plus its input generator.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (`yolov3`, `lstm`, …).
    pub name: &'static str,
    /// Workload family.
    pub category: Category,
    /// DSL source.
    pub source: &'static str,
    /// Default batch size (Figure 5/6 setting).
    pub default_batch: usize,
    /// Default sequence length for NLP/attention workloads.
    pub default_seq: usize,
}

impl Workload {
    /// Compile the DSL source to graph IR.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (should not happen for the built-in
    /// sources; exercised by tests).
    pub fn graph(&self) -> Result<Graph, FrontendError> {
        compile(self.source)
    }

    /// Look up a built-in workload by name.
    pub fn by_name(name: &str) -> Option<Workload> {
        all_workloads().into_iter().find(|w| w.name == name)
    }

    /// Deterministic inputs for the given batch size and sequence length
    /// (pass 0 to use the workload's defaults).
    pub fn inputs(&self, batch: usize, seq_len: usize, seed: u64) -> Vec<RtValue> {
        let b = if batch == 0 {
            self.default_batch
        } else {
            batch
        };
        let s = if seq_len == 0 {
            self.default_seq
        } else {
            seq_len
        };
        match self.name {
            "yolov3" => {
                // [batch, boxes, 4 + 1 + classes]
                let pred = Tensor::rand_uniform(&[b, 768, 16], -2.0, 2.0, seed);
                vec![RtValue::Tensor(pred)]
            }
            "ssd" => {
                let loc = Tensor::rand_uniform(&[b, 512, 4], -1.0, 1.0, seed);
                let priors = Tensor::rand_uniform(&[512, 4], 0.1, 0.9, seed + 1);
                vec![
                    RtValue::Tensor(loc),
                    RtValue::Tensor(priors),
                    RtValue::Int(b as i64),
                ]
            }
            "yolact" => {
                let masks = Tensor::rand_uniform(&[b, 48, 48], -3.0, 3.0, seed);
                vec![RtValue::Tensor(masks)]
            }
            "fcos" => {
                let n = 512;
                let cls = Tensor::rand_uniform(&[b, n, 8], -2.0, 2.0, seed);
                let ctr = Tensor::rand_uniform(&[b, n, 1], -2.0, 2.0, seed + 1);
                let reg = Tensor::rand_uniform(&[b, n, 4], -1.0, 1.0, seed + 2);
                let points = Tensor::rand_uniform(&[n, 2], 0.0, 640.0, seed + 3);
                vec![
                    RtValue::Tensor(cls),
                    RtValue::Tensor(ctr),
                    RtValue::Tensor(reg),
                    RtValue::Tensor(points),
                ]
            }
            "nasrnn" => {
                let hidden = 48;
                let x = Tensor::rand_uniform(&[s, b, hidden], -1.0, 1.0, seed);
                let h0 = Tensor::rand_uniform(&[b, hidden], -1.0, 1.0, seed + 1);
                let wx = Tensor::rand_uniform(&[hidden, hidden], -0.4, 0.4, seed + 2);
                let wh = Tensor::rand_uniform(&[hidden, hidden], -0.4, 0.4, seed + 3);
                vec![
                    RtValue::Tensor(x),
                    RtValue::Tensor(h0),
                    RtValue::Tensor(wx),
                    RtValue::Tensor(wh),
                    RtValue::Int(s as i64),
                ]
            }
            "lstm" => {
                let hidden = 24;
                let x = Tensor::rand_uniform(&[s, b, hidden], -1.0, 1.0, seed);
                let h0 = Tensor::rand_uniform(&[b, hidden], -1.0, 1.0, seed + 1);
                let c0 = Tensor::rand_uniform(&[b, hidden], -1.0, 1.0, seed + 2);
                let wx = Tensor::rand_uniform(&[hidden, 4 * hidden], -0.3, 0.3, seed + 3);
                let wh = Tensor::rand_uniform(&[hidden, 4 * hidden], -0.3, 0.3, seed + 4);
                vec![
                    RtValue::Tensor(x),
                    RtValue::Tensor(h0),
                    RtValue::Tensor(c0),
                    RtValue::Tensor(wx),
                    RtValue::Tensor(wh),
                    RtValue::Int(s as i64),
                ]
            }
            "seq2seq" => {
                let hidden = 32;
                let h0 = Tensor::rand_uniform(&[b, hidden], -1.0, 1.0, seed);
                let wh = Tensor::rand_uniform(&[hidden, hidden], -0.4, 0.4, seed + 1);
                let we = Tensor::rand_uniform(&[hidden, hidden], -0.4, 0.4, seed + 2);
                let out0 = Tensor::zeros(&[s, b, hidden]);
                vec![
                    RtValue::Tensor(h0),
                    RtValue::Tensor(wh),
                    RtValue::Tensor(we),
                    RtValue::Tensor(out0),
                    RtValue::Int(s as i64),
                ]
            }
            "attention" => {
                // Batch scales the head dimension (single-head layout).
                let d = 24 * b.max(1);
                let q = Tensor::rand_uniform(&[s, d], -1.0, 1.0, seed);
                let k = Tensor::rand_uniform(&[s, d], -1.0, 1.0, seed + 1);
                let v = Tensor::rand_uniform(&[s, d], -1.0, 1.0, seed + 2);
                vec![
                    RtValue::Tensor(q),
                    RtValue::Tensor(k),
                    RtValue::Tensor(v),
                    RtValue::Int(s as i64),
                ]
            }
            other => unreachable!("unknown workload {other}"),
        }
    }
}

/// YOLOv3 bounding-box decode, vectorized over the batch as the real
/// PyTorch post-processing is: three partial writes through slice views of
/// the decoded tensor.
const YOLOV3: &str = "def yolov3(pred: Tensor):
    out = pred.clone()
    out[:, :, 0:2] = sigmoid(pred[:, :, 0:2]) * 2.0 - 0.5
    out[:, :, 2:4] = exp(pred[:, :, 2:4].clamp(-4.0, 4.0)) * 0.5
    out[:, :, 4:] = sigmoid(pred[:, :, 4:])
    return out
";

/// SSD box decode against priors: two partial writes per image (centers and
/// sizes), then a global clamp.
const SSD: &str = "def ssd(loc: Tensor, priors: Tensor, n: int):
    boxes = loc.clone()
    for b in range(n):
        l = loc[b]
        cxy = priors[:, 0:2] + l[:, 0:2] * 0.1 * priors[:, 2:4]
        wh = priors[:, 2:4] * exp(l[:, 2:4] * 0.2)
        boxes[b, :, 0:2] = cxy - wh * 0.5
        boxes[b, :, 2:4] = cxy + wh * 0.5
    clipped = boxes.clamp(0.0, 1.0)
    return clipped
";

/// YOLACT mask post-processing: squash logits, zero the crop borders with
/// four partial writes, then threshold — views + mutations, straight-line.
const YOLACT: &str = "def yolact(masks: Tensor):
    m = sigmoid(masks)
    out = m.clone()
    h = masks.size(1)
    w = masks.size(2)
    out[:, 0:2, :] = 0.0
    out[:, h-2:, :] = 0.0
    out[:, :, 0:2] = 0.0
    out[:, :, w-2:] = 0.0
    thr = where(out > 0.5, out, zeros_like(out))
    return thr
";

/// FCOS post-processing: centerness-weighted scores and distance-to-box
/// decode via four partial writes (straight-line views + mutations, no
/// control flow — the case data-flow functionalization also handles).
const FCOS: &str = "def fcos(cls: Tensor, ctr: Tensor, reg: Tensor, points: Tensor):
    scores = sigmoid(cls) * sigmoid(ctr)
    e = exp(reg.clamp(-6.0, 6.0))
    boxes = reg.clone()
    boxes[:, :, 0] = points[:, 0].unsqueeze(0) - e[:, :, 0]
    boxes[:, :, 1] = points[:, 1].unsqueeze(0) - e[:, :, 1]
    boxes[:, :, 2] = points[:, 0].unsqueeze(0) + e[:, :, 2]
    boxes[:, :, 3] = points[:, 1].unsqueeze(0) + e[:, :, 3]
    clipped = boxes.clamp(0.0, 640.0)
    return clipped, scores
";

/// NASRNN cell: sequential hidden-state recurrence with a per-step slice
/// write into the output tensor.
const NASRNN: &str = "def nasrnn(x: Tensor, h0: Tensor, wx: Tensor, wh: Tensor, seq: int):
    h = h0.clone()
    out = zeros_like(x)
    for t in range(seq):
        g = matmul(x[t], wx) + matmul(h, wh)
        f = sigmoid(g)
        c = tanh(g)
        h = f * c + (1.0 - f) * h
        out[t] = h
    return out, h
";

/// LSTM cell with gates split out of the packed projection by slicing views
/// whose bounds are runtime ints.
const LSTM: &str = "def lstm(x: Tensor, h0: Tensor, c0: Tensor, wx: Tensor, wh: Tensor, seq: int):
    h = h0.clone()
    c = c0.clone()
    out = zeros_like(x)
    hs = h0.size(1)
    for t in range(seq):
        z = matmul(x[t], wx) + matmul(h, wh)
        ig = sigmoid(z[:, 0:hs])
        fg = sigmoid(z[:, hs:hs*2])
        og = sigmoid(z[:, hs*2:hs*3])
        gg = tanh(z[:, hs*3:hs*4])
        c = fg * c + ig * gg
        h = og * tanh(c)
        out[t] = h
    return out, h, c
";

/// Greedy seq2seq decoder: attention-style re-weighting of the hidden state
/// each step, writing the emitted state into the output sequence.
const SEQ2SEQ: &str = "def seq2seq(h0: Tensor, wh: Tensor, we: Tensor, out0: Tensor, steps: int):
    h = h0.clone()
    out = out0.clone()
    for t in range(steps):
        e = matmul(h, we)
        a = e.softmax(1)
        ctx = a * h
        h = tanh(matmul(ctx, wh))
        out[t] = h
    return out, h
";

/// Single-head attention with causal masking done *in place* on the score
/// vector (`s[t+1:] = -1e4`) — the mutation-through-view inside a loop the
/// paper's intro motivates.
const ATTENTION: &str = "def attention(q: Tensor, k: Tensor, v: Tensor, seq: int):
    out = zeros_like(q)
    for t in range(seq):
        qt = q[t]
        scores = matmul(k, qt.unsqueeze(1))
        s = scores.squeeze(1)
        s[t+1:] = -10000.0
        w = (s / 8.0).softmax(0)
        weighted = v * w.unsqueeze(1)
        o = weighted.sum(0)
        out[t] = o
    return out
";

/// All eight workloads, in the paper's order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "yolov3",
            category: Category::Cv,
            source: YOLOV3,
            default_batch: 2,
            default_seq: 0,
        },
        Workload {
            name: "ssd",
            category: Category::Cv,
            source: SSD,
            default_batch: 4,
            default_seq: 0,
        },
        Workload {
            name: "yolact",
            category: Category::Cv,
            source: YOLACT,
            default_batch: 2,
            default_seq: 0,
        },
        Workload {
            name: "fcos",
            category: Category::Cv,
            source: FCOS,
            default_batch: 4,
            default_seq: 0,
        },
        Workload {
            name: "nasrnn",
            category: Category::Nlp,
            source: NASRNN,
            default_batch: 4,
            default_seq: 16,
        },
        Workload {
            name: "lstm",
            category: Category::Nlp,
            source: LSTM,
            default_batch: 4,
            default_seq: 16,
        },
        Workload {
            name: "seq2seq",
            category: Category::Nlp,
            source: SEQ2SEQ,
            default_batch: 4,
            default_seq: 16,
        },
        Workload {
            name: "attention",
            category: Category::Attention,
            source: ATTENTION,
            default_batch: 2,
            default_seq: 24,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_compile_and_verify() {
        for w in all_workloads() {
            let g = w.graph().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(g.verify().is_ok(), "{}: {:?}", w.name, g.verify());
        }
    }

    #[test]
    fn inputs_match_graph_arity() {
        for w in all_workloads() {
            let g = w.graph().unwrap();
            let inputs = w.inputs(0, 0, 7);
            assert_eq!(
                g.block(g.top()).params.len(),
                inputs.len(),
                "{} arity",
                w.name
            );
        }
    }

    #[test]
    fn workloads_contain_views_and_mutations() {
        use tssa_ir::Op;
        for w in all_workloads() {
            let g = w.graph().unwrap();
            let nodes = g.nodes_recursive(g.top());
            let views = nodes.iter().filter(|&&n| g.node(n).op.is_view()).count();
            let muts = nodes
                .iter()
                .filter(|&&n| g.node(n).op.is_mutation())
                .count();
            assert!(views > 0, "{} should contain views", w.name);
            assert!(muts > 0, "{} should contain mutations", w.name);
            let loops = nodes.iter().filter(|&&n| g.node(n).op == Op::Loop).count();
            if w.category != Category::Cv || w.name == "ssd" {
                assert!(loops > 0, "{} should contain a loop", w.name);
            }
        }
    }

    #[test]
    fn by_name_round_trips() {
        for w in all_workloads() {
            assert_eq!(Workload::by_name(w.name).unwrap().name, w.name);
        }
        assert!(Workload::by_name("nope").is_none());
    }

    #[test]
    fn inputs_are_deterministic_per_seed() {
        let w = Workload::by_name("lstm").unwrap();
        let a = w.inputs(2, 8, 5);
        let b = w.inputs(2, 8, 5);
        let (RtValue::Tensor(ta), RtValue::Tensor(tb)) = (&a[0], &b[0]) else {
            panic!("expected tensors");
        };
        assert_eq!(ta, tb);
    }

    #[test]
    fn batch_and_seq_scale_inputs() {
        let w = Workload::by_name("nasrnn").unwrap();
        let small = w.inputs(2, 4, 1);
        let large = w.inputs(8, 32, 1);
        let (RtValue::Tensor(ts), RtValue::Tensor(tl)) = (&small[0], &large[0]) else {
            panic!("expected tensors");
        };
        assert_eq!(ts.shape(), &[4, 2, 48]);
        assert_eq!(tl.shape(), &[32, 8, 48]);
    }
}
