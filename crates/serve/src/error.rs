//! The typed error surface of the serving layer.
//!
//! Every admission decision the service makes is visible here: a request is
//! either executed or turned away with a variant saying why. Nothing is
//! dropped silently — even a worker dying mid-batch completes the affected
//! tickets with [`ServeError::Canceled`].

use std::error::Error;
use std::fmt;
use std::time::Duration;

use tssa_backend::ExecError;
use tssa_frontend::FrontendError;

/// Error returned by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue was full; the request was shed without queueing
    /// (load-shedding backpressure).
    QueueFull {
        /// Configured queue depth at the time of the shed.
        depth: usize,
    },
    /// The request's deadline elapsed before execution started.
    DeadlineExceeded {
        /// How long the request sat in the service before being timed out.
        waited: Duration,
    },
    /// The request (or model load) was still executing when its deadline
    /// plus the configured grace elapsed: a stalled compile or a slow
    /// executor. Unlike [`ServeError::DeadlineExceeded`] (shed before
    /// execution), work may still be running when this is returned; its
    /// eventual result is discarded and its span is marked `timed_out`.
    Timeout {
        /// How long the caller waited before giving up.
        waited: Duration,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The model source failed to compile in the frontend.
    Frontend(FrontendError),
    /// The backend failed while executing the (possibly batched) program.
    Exec(ExecError),
    /// The request or batch specification was malformed (wrong arity,
    /// non-tensor stacked argument, unsplittable output, ...).
    InvalidRequest(String),
    /// The request was accepted but the service terminated before a worker
    /// could produce a result (worker panic or shutdown race). Guaranteed
    /// terminal: the ticket completes rather than hanging.
    Canceled,
    /// Plan compilation panicked (injected by
    /// [`crate::FaultKind::CompilePanic`] or a genuine compiler bug). The
    /// unwinding thread was the single-flight leader; the in-flight marker
    /// was retracted, nothing was cached, and coalesced followers were woken
    /// to retry — so this is always a typed result, never a hang.
    CompilePanic,
}

impl ServeError {
    pub(crate) fn invalid(message: impl Into<String>) -> ServeError {
        ServeError::InvalidRequest(message.into())
    }

    /// Whether retrying the same request may succeed: momentary overload
    /// ([`ServeError::QueueFull`]) and worker loss ([`ServeError::Canceled`])
    /// are transient; malformed requests, compile failures, execution
    /// errors, elapsed deadlines and shutdown are not.
    /// [`crate::Service::submit_retry`] retries exactly these variants.
    pub fn is_transient(&self) -> bool {
        matches!(self, ServeError::QueueFull { .. } | ServeError::Canceled)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { depth } => {
                write!(f, "admission queue full (depth {depth}); request shed")
            }
            ServeError::DeadlineExceeded { waited } => {
                write!(
                    f,
                    "deadline exceeded after {:.1}ms in queue",
                    waited.as_secs_f64() * 1e3
                )
            }
            ServeError::Timeout { waited } => {
                write!(
                    f,
                    "request timed out after {:.1}ms (work abandoned while executing)",
                    waited.as_secs_f64() * 1e3
                )
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Frontend(e) => write!(f, "frontend: {e}"),
            ServeError::Exec(e) => write!(f, "execution: {e}"),
            ServeError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ServeError::Canceled => write!(f, "request canceled before execution"),
            ServeError::CompilePanic => {
                write!(f, "plan compilation panicked; nothing was cached")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Frontend(e) => Some(e),
            ServeError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        ServeError::Exec(e)
    }
}

impl From<FrontendError> for ServeError {
    fn from(e: FrontendError) -> Self {
        ServeError::Frontend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let variants = [
            ServeError::QueueFull { depth: 4 },
            ServeError::DeadlineExceeded {
                waited: Duration::from_millis(3),
            },
            ServeError::Timeout {
                waited: Duration::from_millis(9),
            },
            ServeError::ShuttingDown,
            ServeError::invalid("bad arity"),
            ServeError::Canceled,
            ServeError::CompilePanic,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
        let e = ServeError::from(ExecError::ArityMismatch {
            expected: 1,
            found: 2,
        });
        assert!(e.to_string().contains("inputs"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn transient_classification_is_retry_safe() {
        assert!(ServeError::QueueFull { depth: 4 }.is_transient());
        assert!(ServeError::Canceled.is_transient());
        for terminal in [
            ServeError::ShuttingDown,
            ServeError::invalid("x"),
            ServeError::DeadlineExceeded {
                waited: Duration::ZERO,
            },
            ServeError::Timeout {
                waited: Duration::ZERO,
            },
            ServeError::CompilePanic,
        ] {
            assert!(!terminal.is_transient(), "{terminal} must not be retried");
        }
    }

    #[test]
    fn queue_full_reports_depth() {
        assert!(ServeError::QueueFull { depth: 64 }
            .to_string()
            .contains("64"));
    }
}
