//! Service observability: request counters, a fixed-bucket latency
//! histogram, and batch-occupancy accounting, snapshotted lock-free.
//!
//! The histogram uses power-of-two microsecond buckets (bucket *i* covers
//! `[2^i, 2^(i+1))` µs), so recording is one atomic increment and quantile
//! estimation is a single pass — the standard fixed-bucket design used by
//! serving systems that cannot afford per-request allocation on the hot
//! path. Quantiles are reported as the upper bound of the containing
//! bucket (≤ 2× overestimate by construction).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::cache::CacheStats;
use tssa_store::StoreStats;

/// Number of power-of-two buckets: covers up to ~2^39 µs (~6 days).
pub const BUCKETS: usize = 40;

/// Fixed-bucket log2 histogram of microsecond durations.
pub struct Histogram {
    counts: Vec<AtomicU64>,
    sum_us: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
        }
    }

    fn bucket(us: u64) -> usize {
        // floor(log2(us)) with us clamped to >= 1, capped to the last bucket.
        let idx = 63 - us.max(1).leading_zeros() as usize;
        idx.min(BUCKETS - 1)
    }

    /// The inclusive upper bound (µs) of every bucket, ascending: bucket
    /// *i* covers `[2^i, 2^(i+1))` µs, so its bound is `2^(i+1)`. These are
    /// the `le` labels of the Prometheus export.
    pub fn bucket_bounds() -> [u64; BUCKETS] {
        let mut bounds = [0u64; BUCKETS];
        let mut i = 0;
        while i < BUCKETS {
            bounds[i] = 1u64 << (i + 1);
            i += 1;
        }
        bounds
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded durations, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// `(upper bound µs, cumulative count)` per bucket, ascending —
    /// Prometheus histogram convention. Trailing empty buckets are elided
    /// (the `+Inf` bucket the exporter appends covers them).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let bounds = Self::bucket_bounds();
        let mut cumulative = 0u64;
        let mut out = Vec::new();
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            out.push((bounds[i], cumulative));
        }
        while out.len() > 1 && out[out.len() - 1].1 == out[out.len() - 2].1 {
            out.pop();
        }
        out
    }

    /// The upper bound (µs) of the bucket containing the `p`-quantile
    /// (`0.0 < p <= 1.0`), or 0 when empty.
    pub fn quantile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Live counters owned by the service; see [`Metrics::snapshot`].
pub struct Metrics {
    started: Instant,
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) shed_queue_full: AtomicU64,
    pub(crate) shed_deadline: AtomicU64,
    pub(crate) exec_failures: AtomicU64,
    pub(crate) canceled: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) requeues: AtomicU64,
    pub(crate) worker_respawns: AtomicU64,
    pub(crate) degraded_requests: AtomicU64,
    pub(crate) faults_injected: AtomicU64,
    pub(crate) latency: Histogram,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) max_batch_seen: AtomicU64,
}

impl Metrics {
    /// Fresh counters; `started` anchors throughput computation.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            exec_failures: AtomicU64::new(0),
            canceled: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            requeues: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            degraded_requests: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            latency: Histogram::new(),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch_seen: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch_seen
            .fetch_max(size as u64, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of every counter. Disk-cache
    /// counters are zero; services with a persistent plan store use
    /// [`Metrics::snapshot_with_disk`].
    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        self.snapshot_with_disk(cache, StoreStats::default())
    }

    /// As [`Metrics::snapshot`], folding in the persistent plan store's
    /// counters.
    pub fn snapshot_with_disk(&self, cache: CacheStats, disk: StoreStats) -> MetricsSnapshot {
        let elapsed = self.started.elapsed();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_requests = self.batched_requests.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            exec_failures: self.exec_failures.load(Ordering::Relaxed),
            canceled: self.canceled.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            requeues: self.requeues.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            degraded_requests: self.degraded_requests.load(Ordering::Relaxed),
            // Cache-site faults (poisoned hits) are counted by the cache
            // itself; fold them in so one counter covers the whole plan.
            faults_injected: self.faults_injected.load(Ordering::Relaxed) + cache.poisoned,
            throughput_rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_us: self.latency.quantile_us(0.50),
            p95_us: self.latency.quantile_us(0.95),
            p99_us: self.latency.quantile_us(0.99),
            latency_buckets: self.latency.cumulative_buckets(),
            latency_sum_us: self.latency.sum_us(),
            latency_count: self.latency.count(),
            batches,
            avg_batch_occupancy: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            max_batch: self.max_batch_seen.load(Ordering::Relaxed),
            cache,
            disk,
            elapsed,
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Point-in-time service metrics; `Display` renders a human report.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests presented to admission (accepted or shed).
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests shed at admission because the queue was full.
    pub shed_queue_full: u64,
    /// Requests timed out before execution.
    pub shed_deadline: u64,
    /// Requests that reached a worker but failed in the backend.
    pub exec_failures: u64,
    /// Requests canceled by shutdown or worker loss.
    pub canceled: u64,
    /// Requests abandoned by their waiter past deadline + grace
    /// ([`crate::ServeError::Timeout`]). Timed-out loads are reported to
    /// the caller synchronously and, like load compile errors, not counted
    /// here.
    pub timeouts: u64,
    /// Re-submissions performed by [`crate::Service::submit_retry`] after a
    /// transient error.
    pub retries: u64,
    /// Batches re-queued after their worker crashed mid-execution (each
    /// batch is re-queued at most once).
    pub requeues: u64,
    /// Worker threads respawned by the supervisor after a crash.
    pub worker_respawns: u64,
    /// Requests executed on the degraded path (batching shed, optimization
    /// pipeline skipped) because queue latency crossed the threshold.
    pub degraded_requests: u64,
    /// Faults injected by the armed [`crate::FaultPlan`] across every site
    /// (0 in production configurations).
    pub faults_injected: u64,
    /// Completed requests per second since service start.
    pub throughput_rps: f64,
    /// Median end-to-end latency (bucket upper bound, µs).
    pub p50_us: u64,
    /// 95th-percentile latency (bucket upper bound, µs).
    pub p95_us: u64,
    /// 99th-percentile latency (bucket upper bound, µs).
    pub p99_us: u64,
    /// Latency histogram as `(upper bound µs, cumulative count)`, ascending
    /// (trailing empty buckets elided).
    pub latency_buckets: Vec<(u64, u64)>,
    /// Sum of all recorded latencies, µs.
    pub latency_sum_us: u64,
    /// Latency samples recorded (successful completions).
    pub latency_count: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Mean requests coalesced per batch.
    pub avg_batch_occupancy: f64,
    /// Largest batch dispatched.
    pub max_batch: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Persistent plan-store counters (all zero when no `--cache-dir` /
    /// [`crate::ServeConfig::with_plan_store`] is configured).
    pub disk: StoreStats,
    /// Time since the service started.
    pub elapsed: Duration,
}

impl MetricsSnapshot {
    /// Requests that left the service with *some* terminal outcome.
    pub fn resolved(&self) -> u64 {
        self.completed
            + self.shed_queue_full
            + self.shed_deadline
            + self.exec_failures
            + self.canceled
            + self.timeouts
    }

    /// The snapshot in Prometheus text exposition format (0.0.4): request
    /// counters, cache counters, batching gauges, the latency histogram
    /// (`tssa_request_latency_us_bucket{le=...}`) and its p50/p95/p99
    /// quantiles as a summary.
    pub fn prometheus_text(&self) -> String {
        let mut prom = tssa_obs::PromText::new();
        prom.counter(
            "tssa_requests_submitted_total",
            "Requests presented to admission",
            self.submitted,
        );
        prom.counter(
            "tssa_requests_completed_total",
            "Requests completed successfully",
            self.completed,
        );
        prom.counter(
            "tssa_requests_shed_queue_full_total",
            "Requests shed at admission (queue full)",
            self.shed_queue_full,
        );
        prom.counter(
            "tssa_requests_shed_deadline_total",
            "Requests expired before execution",
            self.shed_deadline,
        );
        prom.counter(
            "tssa_requests_exec_failures_total",
            "Requests failed in the backend",
            self.exec_failures,
        );
        prom.counter(
            "tssa_requests_canceled_total",
            "Requests canceled by shutdown or worker loss",
            self.canceled,
        );
        prom.counter(
            "tssa_requests_timeout_total",
            "Requests abandoned past deadline + grace",
            self.timeouts,
        );
        prom.counter(
            "tssa_retries_total",
            "Transient-error re-submissions (submit_retry)",
            self.retries,
        );
        prom.counter(
            "tssa_batch_requeues_total",
            "Batches re-queued after a worker crash",
            self.requeues,
        );
        prom.counter(
            "tssa_worker_respawns_total",
            "Worker threads respawned after a crash",
            self.worker_respawns,
        );
        prom.counter(
            "tssa_requests_degraded_total",
            "Requests served on the degraded path",
            self.degraded_requests,
        );
        prom.counter(
            "tssa_faults_injected_total",
            "Faults injected by the armed fault plan",
            self.faults_injected,
        );
        prom.counter(
            "tssa_batches_total",
            "Batches dispatched to workers",
            self.batches,
        );
        prom.gauge(
            "tssa_throughput_rps",
            "Completed requests per second since start",
            self.throughput_rps,
        );
        prom.gauge(
            "tssa_batch_occupancy_avg",
            "Mean requests coalesced per batch",
            self.avg_batch_occupancy,
        );
        prom.gauge(
            "tssa_batch_max",
            "Largest batch dispatched",
            self.max_batch as f64,
        );
        prom.counter(
            "tssa_plan_cache_hits_total",
            "Plan cache hits",
            self.cache.hits,
        );
        prom.counter(
            "tssa_plan_cache_misses_total",
            "Plan cache misses (compilations)",
            self.cache.misses,
        );
        prom.counter(
            "tssa_plan_cache_coalesced_total",
            "Lookups coalesced onto in-flight compilations",
            self.cache.coalesced,
        );
        prom.counter(
            "tssa_plan_cache_evictions_total",
            "Plans evicted to stay within capacity",
            self.cache.evictions,
        );
        prom.counter(
            "tssa_plan_cache_class_hits_total",
            "Loads admitted by a resident shape class (compilation bypassed)",
            self.cache.class_hits,
        );
        prom.counter(
            "tssa_plan_cache_specializations_total",
            "Dedicated plans compiled for hot shape buckets",
            self.cache.specializations,
        );
        prom.gauge(
            "tssa_plan_cache_entries",
            "Ready plans resident",
            self.cache.entries as f64,
        );
        prom.gauge(
            "tssa_plan_class_entries",
            "Shape classes resident",
            self.cache.class_entries as f64,
        );
        prom.counter(
            "tssa_plan_cache_disk_hits_total",
            "Plans loaded intact from the persistent store (compilation bypassed)",
            self.disk.disk_hits,
        );
        prom.counter(
            "tssa_plan_cache_disk_misses_total",
            "Persistent-store lookups that found no entry",
            self.disk.disk_misses,
        );
        prom.counter(
            "tssa_plan_cache_disk_corrupt_total",
            "Damaged store entries evicted (bad magic/truncated/checksum/parse)",
            self.disk.corrupt_evicted,
        );
        prom.counter(
            "tssa_plan_cache_disk_stale_total",
            "Stale store entries evicted (version or pass-roster mismatch)",
            self.disk.stale_evicted,
        );
        prom.counter(
            "tssa_plan_cache_disk_writes_total",
            "Plans written back to the persistent store",
            self.disk.writes,
        );
        let buckets: Vec<(f64, u64)> = self
            .latency_buckets
            .iter()
            .map(|&(le, c)| (le as f64, c))
            .collect();
        prom.histogram(
            "tssa_request_latency_us",
            "End-to-end request latency (power-of-two buckets, µs)",
            &buckets,
            self.latency_sum_us as f64,
            self.latency_count,
        );
        prom.summary(
            "tssa_request_latency_quantiles_us",
            "Latency quantiles (containing-bucket upper bound, µs)",
            &[
                (0.5, self.p50_us as f64),
                (0.95, self.p95_us as f64),
                (0.99, self.p99_us as f64),
            ],
            self.latency_sum_us as f64,
            self.latency_count,
        );
        prom.render()
    }
}

impl MetricsSnapshot {
    /// Bridge this snapshot into a [`tssa_obs::MetricsRegistry`] so the
    /// service's counters render alongside everything else registered there
    /// (queue-wait/occupancy histograms, pass timings, sink health) in one
    /// consolidated exposition. Metric names and helps match
    /// [`MetricsSnapshot::prometheus_text`]; re-bridging a newer snapshot
    /// overwrites the previous values.
    pub fn register_into(&self, registry: &tssa_obs::MetricsRegistry) {
        let no_labels: &[(&str, &str)] = &[];
        for (name, help, value) in [
            (
                "tssa_requests_submitted_total",
                "Requests presented to admission",
                self.submitted,
            ),
            (
                "tssa_requests_completed_total",
                "Requests completed successfully",
                self.completed,
            ),
            (
                "tssa_requests_shed_queue_full_total",
                "Requests shed at admission (queue full)",
                self.shed_queue_full,
            ),
            (
                "tssa_requests_shed_deadline_total",
                "Requests expired before execution",
                self.shed_deadline,
            ),
            (
                "tssa_requests_exec_failures_total",
                "Requests failed in the backend",
                self.exec_failures,
            ),
            (
                "tssa_requests_canceled_total",
                "Requests canceled by shutdown or worker loss",
                self.canceled,
            ),
            (
                "tssa_requests_timeout_total",
                "Requests abandoned past deadline + grace",
                self.timeouts,
            ),
            (
                "tssa_retries_total",
                "Transient-error re-submissions (submit_retry)",
                self.retries,
            ),
            (
                "tssa_batch_requeues_total",
                "Batches re-queued after a worker crash",
                self.requeues,
            ),
            (
                "tssa_worker_respawns_total",
                "Worker threads respawned after a crash",
                self.worker_respawns,
            ),
            (
                "tssa_requests_degraded_total",
                "Requests served on the degraded path",
                self.degraded_requests,
            ),
            (
                "tssa_faults_injected_total",
                "Faults injected by the armed fault plan",
                self.faults_injected,
            ),
            (
                "tssa_batches_total",
                "Batches dispatched to workers",
                self.batches,
            ),
            (
                "tssa_plan_cache_hits_total",
                "Plan cache hits",
                self.cache.hits,
            ),
            (
                "tssa_plan_cache_misses_total",
                "Plan cache misses (compilations)",
                self.cache.misses,
            ),
            (
                "tssa_plan_cache_coalesced_total",
                "Lookups coalesced onto in-flight compilations",
                self.cache.coalesced,
            ),
            (
                "tssa_plan_cache_evictions_total",
                "Plans evicted to stay within capacity",
                self.cache.evictions,
            ),
            (
                "tssa_plan_cache_class_hits_total",
                "Loads admitted by a resident shape class (compilation bypassed)",
                self.cache.class_hits,
            ),
            (
                "tssa_plan_cache_specializations_total",
                "Dedicated plans compiled for hot shape buckets",
                self.cache.specializations,
            ),
            (
                "tssa_plan_cache_disk_hits_total",
                "Plans loaded intact from the persistent store (compilation bypassed)",
                self.disk.disk_hits,
            ),
            (
                "tssa_plan_cache_disk_misses_total",
                "Persistent-store lookups that found no entry",
                self.disk.disk_misses,
            ),
            (
                "tssa_plan_cache_disk_corrupt_total",
                "Damaged store entries evicted (bad magic/truncated/checksum/parse)",
                self.disk.corrupt_evicted,
            ),
            (
                "tssa_plan_cache_disk_stale_total",
                "Stale store entries evicted (version or pass-roster mismatch)",
                self.disk.stale_evicted,
            ),
            (
                "tssa_plan_cache_disk_writes_total",
                "Plans written back to the persistent store",
                self.disk.writes,
            ),
        ] {
            registry.set_counter(name, help, no_labels, value);
        }
        registry.set_gauge(
            "tssa_throughput_rps",
            "Completed requests per second since start",
            no_labels,
            self.throughput_rps,
        );
        registry.set_gauge(
            "tssa_batch_occupancy_avg",
            "Mean requests coalesced per batch",
            no_labels,
            self.avg_batch_occupancy,
        );
        registry.set_gauge(
            "tssa_batch_max",
            "Largest batch dispatched",
            no_labels,
            self.max_batch as f64,
        );
        registry.set_gauge(
            "tssa_plan_cache_entries",
            "Ready plans resident",
            no_labels,
            self.cache.entries as f64,
        );
        registry.set_gauge(
            "tssa_plan_class_entries",
            "Shape classes resident",
            no_labels,
            self.cache.class_entries as f64,
        );
        let buckets: Vec<(f64, u64)> = self
            .latency_buckets
            .iter()
            .map(|&(le, c)| (le as f64, c))
            .collect();
        registry.set_histogram(
            "tssa_request_latency_us",
            "End-to-end request latency (power-of-two buckets, µs)",
            no_labels,
            &buckets,
            self.latency_sum_us as f64,
            self.latency_count,
        );
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "serve metrics ({:.2}s):", self.elapsed.as_secs_f64())?;
        writeln!(
            f,
            "  requests   submitted {:>8}  completed {:>8}  ({:.1} req/s)",
            self.submitted, self.completed, self.throughput_rps
        )?;
        writeln!(
            f,
            "  shed       queue-full {:>7}  deadline {:>9}  exec-failed {:>4}  canceled {:>4}  timeout {:>4}",
            self.shed_queue_full, self.shed_deadline, self.exec_failures, self.canceled, self.timeouts
        )?;
        writeln!(
            f,
            "  recovery   retries {:>8}  requeues {:>9}  respawns {:>7}  degraded {:>4}  faults {:>5}",
            self.retries,
            self.requeues,
            self.worker_respawns,
            self.degraded_requests,
            self.faults_injected
        )?;
        writeln!(
            f,
            "  latency    p50 {:>8}us  p95 {:>8}us  p99 {:>8}us",
            self.p50_us, self.p95_us, self.p99_us
        )?;
        writeln!(
            f,
            "  batching   batches {:>8}  avg occupancy {:>5.2}  max {:>3}",
            self.batches, self.avg_batch_occupancy, self.max_batch
        )?;
        writeln!(
            f,
            "  plan cache hits {:>8}  misses {:>6}  coalesced {:>5}  evictions {:>4}  resident {:>3}",
            self.cache.hits, self.cache.misses, self.cache.coalesced, self.cache.evictions, self.cache.entries
        )?;
        writeln!(
            f,
            "  shape class hits {:>7}  classes {:>5}  specializations {:>4}",
            self.cache.class_hits, self.cache.class_entries, self.cache.specializations
        )?;
        write!(
            f,
            "  disk store hits {:>8}  misses {:>6}  corrupt {:>7}  stale {:>7}  writes {:>5}",
            self.disk.disk_hits,
            self.disk.disk_misses,
            self.disk.corrupt_evicted,
            self.disk.stale_evicted,
            self.disk.writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 0);
        assert_eq!(Histogram::bucket(2), 1);
        assert_eq!(Histogram::bucket(3), 1);
        assert_eq!(Histogram::bucket(1024), 10);
        assert_eq!(Histogram::bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        for _ in 0..90 {
            h.record(Duration::from_micros(100)); // bucket 6, upper bound 128
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(5_000)); // bucket 12, upper bound 8192
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 128);
        assert_eq!(h.quantile_us(0.9), 128);
        assert_eq!(h.quantile_us(0.99), 8192);
        assert_eq!(h.quantile_us(1.0), 8192);
    }

    #[test]
    fn snapshot_aggregates_batches() {
        let m = Metrics::new();
        m.record_batch(4);
        m.record_batch(2);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.batches, 2);
        assert!((s.avg_batch_occupancy - 3.0).abs() < 1e-9);
        assert_eq!(s.max_batch, 4);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn bucket_bounds_are_pinned_powers_of_two() {
        let bounds = Histogram::bucket_bounds();
        assert_eq!(bounds.len(), BUCKETS);
        // Bucket i covers [2^i, 2^(i+1)) µs; its `le` bound is 2^(i+1).
        assert_eq!(bounds[0], 2);
        assert_eq!(bounds[1], 4);
        assert_eq!(bounds[6], 128);
        assert_eq!(bounds[9], 1024);
        assert_eq!(bounds[BUCKETS - 1], 1u64 << 40);
        for (i, b) in bounds.iter().enumerate() {
            assert_eq!(*b, 1u64 << (i + 1));
        }
    }

    #[test]
    fn cumulative_buckets_and_sum_track_records() {
        let h = Histogram::new();
        h.record(Duration::from_micros(100)); // bucket 6 (le 128)
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(5_000)); // bucket 12 (le 8192)
        assert_eq!(h.sum_us(), 5_200);
        let buckets = h.cumulative_buckets();
        // Trailing empties elided: the last bucket is the 5ms one.
        assert_eq!(buckets.last(), Some(&(8192, 3)));
        let at = |le: u64| buckets.iter().find(|&&(b, _)| b == le).unwrap().1;
        assert_eq!(at(64), 0);
        assert_eq!(at(128), 2);
        assert_eq!(at(4096), 2);
        assert_eq!(at(8192), 3);
    }

    #[test]
    fn prometheus_text_exposes_histogram_and_quantiles() {
        let m = Metrics::new();
        m.submitted.fetch_add(4, Ordering::Relaxed);
        m.completed.fetch_add(3, Ordering::Relaxed);
        for _ in 0..3 {
            m.latency.record(Duration::from_micros(100));
        }
        m.record_batch(3);
        let text = m.snapshot(CacheStats::default()).prometheus_text();
        assert!(text.contains("# TYPE tssa_requests_submitted_total counter"));
        assert!(text.contains("tssa_requests_submitted_total 4"));
        assert!(text.contains("# TYPE tssa_request_latency_us histogram"));
        assert!(text.contains("tssa_request_latency_us_bucket{le=\"128\"} 3"));
        assert!(text.contains("tssa_request_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tssa_request_latency_us_sum 300"));
        assert!(text.contains("tssa_request_latency_us_count 3"));
        assert!(text.contains("# TYPE tssa_request_latency_quantiles_us summary"));
        assert!(text.contains("tssa_request_latency_quantiles_us{quantile=\"0.5\"} 128"));
        assert!(text.contains("tssa_request_latency_quantiles_us{quantile=\"0.99\"} 128"));
    }

    #[test]
    fn register_into_bridges_and_rebridges() {
        let m = Metrics::new();
        m.submitted.fetch_add(4, Ordering::Relaxed);
        m.completed.fetch_add(3, Ordering::Relaxed);
        for _ in 0..3 {
            m.latency.record(Duration::from_micros(100));
        }
        let registry = tssa_obs::MetricsRegistry::new();
        m.snapshot(CacheStats::default()).register_into(&registry);
        let text = registry.prometheus_text();
        assert!(text.contains("tssa_requests_submitted_total 4"));
        assert!(text.contains("tssa_request_latency_us_bucket{le=\"128\"} 3"));
        assert!(text.contains("tssa_request_latency_us_count 3"));
        // A newer snapshot overwrites the bridged values in place.
        m.completed.fetch_add(2, Ordering::Relaxed);
        m.snapshot(CacheStats::default()).register_into(&registry);
        let text = registry.prometheus_text();
        assert!(text.contains("tssa_requests_completed_total 5"));
        assert!(!text.contains("tssa_requests_completed_total 3"));
    }

    #[test]
    fn resolved_sums_terminal_outcomes() {
        let m = Metrics::new();
        m.completed.fetch_add(3, Ordering::Relaxed);
        m.shed_queue_full.fetch_add(2, Ordering::Relaxed);
        m.timeouts.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.resolved(), 6);
    }

    #[test]
    fn fault_and_recovery_counters_are_exported() {
        let m = Metrics::new();
        m.retries.fetch_add(2, Ordering::Relaxed);
        m.requeues.fetch_add(1, Ordering::Relaxed);
        m.worker_respawns.fetch_add(1, Ordering::Relaxed);
        m.degraded_requests.fetch_add(5, Ordering::Relaxed);
        m.faults_injected.fetch_add(3, Ordering::Relaxed);
        let cache = CacheStats {
            poisoned: 2,
            ..CacheStats::default()
        };
        let s = m.snapshot(cache);
        // Cache-site poison fires fold into the single fault counter.
        assert_eq!(s.faults_injected, 5);
        let text = s.prometheus_text();
        for needle in [
            "tssa_retries_total 2",
            "tssa_batch_requeues_total 1",
            "tssa_worker_respawns_total 1",
            "tssa_requests_degraded_total 5",
            "tssa_faults_injected_total 5",
            "tssa_requests_timeout_total 0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        assert!(s.to_string().contains("recovery"));
    }
}
