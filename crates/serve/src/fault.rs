//! Deterministic fault injection for the serving engine.
//!
//! A [`FaultPlan`] is a *schedule*: for each injectable [`FaultKind`] it
//! holds the set of arrival indices (the Nth time execution reaches that
//! fault site) at which the fault fires. Schedules are either scripted
//! explicitly ([`FaultPlan::at`]) or derived from a seed
//! ([`FaultPlan::seeded`] + [`FaultPlan::with_rate`]), so a chaos run is
//! reproducible: the same seed injects the same faults at the same
//! arrivals, no matter how threads interleave.
//!
//! The service consults the plan through the [`Faults`] seam — a cloneable
//! `Option<Arc<FaultPlan>>`. The disabled seam (the default) is a single
//! `None` check per site, so production configurations pay nothing.
//!
//! Fault sites and the recovery machinery each one exercises:
//!
//! | kind | site | exercises |
//! |---|---|---|
//! | [`FaultKind::WorkerPanic`] | worker, mid-batch | supervision: re-queue once, respawn |
//! | [`FaultKind::CompileStall`] | plan compilation | load deadline → [`crate::ServeError::Timeout`] |
//! | [`FaultKind::CachePoison`] | plan-cache hit | poisoned-entry eviction + recompile |
//! | [`FaultKind::QueueFullBurst`] | admission | retry with exponential backoff |
//! | [`FaultKind::SlowExec`] | worker, pre-exec | ticket-side timeout, degradation |
//! | [`FaultKind::CompilePanic`] | plan compilation | single-flight unwind → typed error, follower wakeup |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Panic payload used by injected worker panics, so test panic hooks can
/// distinguish scheduled chaos from genuine bugs.
pub const INJECTED_PANIC: &str = "tssa-serve injected fault: worker panic";

/// Panic payload used by injected compile panics (shares the
/// `tssa-serve injected fault` prefix with [`INJECTED_PANIC`] so one hook
/// filter silences both).
pub const INJECTED_COMPILE_PANIC: &str = "tssa-serve injected fault: compile panic";

/// Shared prefix of every injected-fault panic payload.
const INJECTED_PREFIX: &str = "tssa-serve injected fault";

/// Install (once, process-wide) a panic hook that keeps *injected* fault
/// panics — payloads carrying the [`INJECTED_PANIC`] /
/// [`INJECTED_COMPILE_PANIC`] prefix — out of test output, while forwarding
/// every other panic to the previously installed hook. Chaos harnesses call
/// this so scheduled panics do not drown genuine failures.
pub fn silence_injected_panics_for_tests() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains(INJECTED_PREFIX))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains(INJECTED_PREFIX));
            if !injected {
                default(info);
            }
        }));
    });
}

/// The faults the serving engine knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The worker thread panics mid-batch (after dequeuing, before
    /// completing its requests).
    WorkerPanic,
    /// Plan compilation stalls for [`FaultPlan::with_stall`].
    CompileStall,
    /// A plan-cache hit returns a poisoned entry; the cache detects it,
    /// evicts, and recompiles.
    CachePoison,
    /// Admission sheds the request as if the queue were full.
    QueueFullBurst,
    /// The executor sleeps for [`FaultPlan::with_slow_exec`] before running.
    SlowExec,
    /// Plan compilation panics mid-flight (leader of a single-flight
    /// compile unwinds; the cache converts the unwind into
    /// [`crate::ServeError::CompilePanic`] and wakes the followers).
    CompilePanic,
}

/// Number of fault kinds (schedule/counter array length).
const KINDS: usize = 6;

impl FaultKind {
    /// Every kind, in declaration order.
    pub const ALL: [FaultKind; KINDS] = [
        FaultKind::WorkerPanic,
        FaultKind::CompileStall,
        FaultKind::CachePoison,
        FaultKind::QueueFullBurst,
        FaultKind::SlowExec,
        FaultKind::CompilePanic,
    ];

    /// Stable snake_case name (span markers, metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::CompileStall => "compile_stall",
            FaultKind::CachePoison => "cache_poison",
            FaultKind::QueueFullBurst => "queue_full_burst",
            FaultKind::SlowExec => "slow_exec",
            FaultKind::CompilePanic => "compile_panic",
        }
    }

    /// Position in [`FaultKind::ALL`] (stable; usable as an array index).
    pub fn index(self) -> usize {
        match self {
            FaultKind::WorkerPanic => 0,
            FaultKind::CompileStall => 1,
            FaultKind::CachePoison => 2,
            FaultKind::QueueFullBurst => 3,
            FaultKind::SlowExec => 4,
            FaultKind::CompilePanic => 5,
        }
    }
}

/// What a fault site must do when its fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with [`INJECTED_PANIC`].
    Panic,
    /// Sleep for the given duration, then proceed.
    Stall(Duration),
    /// Treat the cache entry as corrupt: evict and recompile.
    Poison,
    /// Shed the request as if the queue were full.
    Shed,
}

/// splitmix64: the tiny deterministic generator behind seeded schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seeded schedule of injectable faults. See the module
/// docs for the fault sites. Build one, then hand it to
/// [`crate::ServeConfig::with_faults`]; keep a [`Faults`] clone
/// ([`FaultPlan::faults`]) to reconcile injected counts afterwards.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Per kind: sorted arrival indices at which the fault fires.
    schedule: [Vec<u64>; KINDS],
    /// Per kind: arrivals observed at the fault site.
    hits: [AtomicU64; KINDS],
    /// Per kind: arrivals at which the fault actually fired.
    injected: [AtomicU64; KINDS],
    stall: Duration,
    slow: Duration,
}

impl FaultPlan {
    /// An empty plan (no fault ever fires) carrying `seed` for
    /// [`FaultPlan::with_rate`].
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            schedule: Default::default(),
            hits: Default::default(),
            injected: Default::default(),
            stall: Duration::from_millis(1),
            slow: Duration::from_millis(1),
        }
    }

    /// An empty scripted plan; add fault occurrences with [`FaultPlan::at`].
    pub fn script() -> FaultPlan {
        FaultPlan::seeded(0)
    }

    /// Fire `kind` at the `occurrence`-th arrival (0-based) of its site.
    #[must_use]
    pub fn at(mut self, kind: FaultKind, occurrence: u64) -> FaultPlan {
        let slot = &mut self.schedule[kind.index()];
        if let Err(pos) = slot.binary_search(&occurrence) {
            slot.insert(pos, occurrence);
        }
        self
    }

    /// Fire `kind` independently with probability `rate` at each of the
    /// first `horizon` arrivals. The sub-schedule is a pure function of the
    /// plan seed and the kind, so call order does not matter.
    #[must_use]
    pub fn with_rate(mut self, kind: FaultKind, rate: f64, horizon: u64) -> FaultPlan {
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(kind.index() as u64 + 1);
        let threshold = (rate.clamp(0.0, 1.0) * (1u64 << 53) as f64) as u64;
        let mut occurrences = Vec::new();
        for i in 0..horizon {
            if (splitmix64(&mut state) >> 11) < threshold {
                occurrences.push(i);
            }
        }
        self.schedule[kind.index()] = occurrences;
        self
    }

    /// Set the [`FaultKind::CompileStall`] duration.
    #[must_use]
    pub fn with_stall(mut self, d: Duration) -> FaultPlan {
        self.stall = d;
        self
    }

    /// Set the [`FaultKind::SlowExec`] duration.
    #[must_use]
    pub fn with_slow_exec(mut self, d: Duration) -> FaultPlan {
        self.slow = d;
        self
    }

    /// Wrap the finished plan in the [`Faults`] seam.
    pub fn faults(self) -> Faults {
        Faults(Some(Arc::new(self)))
    }

    /// Record one arrival at `kind`'s site; `Some(action)` when the
    /// schedule says this arrival is faulted.
    pub fn fire(&self, kind: FaultKind) -> Option<FaultAction> {
        let i = kind.index();
        let arrival = self.hits[i].fetch_add(1, Ordering::Relaxed);
        if self.schedule[i].binary_search(&arrival).is_err() {
            return None;
        }
        self.injected[i].fetch_add(1, Ordering::Relaxed);
        Some(match kind {
            FaultKind::WorkerPanic => FaultAction::Panic,
            FaultKind::CompileStall => FaultAction::Stall(self.stall),
            FaultKind::CachePoison => FaultAction::Poison,
            FaultKind::QueueFullBurst => FaultAction::Shed,
            FaultKind::SlowExec => FaultAction::Stall(self.slow),
            FaultKind::CompilePanic => FaultAction::Panic,
        })
    }

    /// Arrivals observed at `kind`'s site so far.
    pub fn arrivals(&self, kind: FaultKind) -> u64 {
        self.hits[kind.index()].load(Ordering::Relaxed)
    }

    /// Faults of `kind` actually fired so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Faults fired so far, across all kinds.
    pub fn injected_total(&self) -> u64 {
        FaultKind::ALL.iter().map(|&k| self.injected(k)).sum()
    }

    /// Scheduled occurrences of `kind` (for reconciling against a horizon).
    pub fn scheduled(&self, kind: FaultKind) -> &[u64] {
        &self.schedule[kind.index()]
    }
}

/// The zero-cost-when-disabled seam the service threads through its hot
/// paths. `Faults::default()` (or [`Faults::disabled`]) never fires and
/// costs one branch per site; [`FaultPlan::faults`] arms it.
#[derive(Debug, Clone, Default)]
pub struct Faults(Option<Arc<FaultPlan>>);

impl Faults {
    /// The never-firing seam.
    pub fn disabled() -> Faults {
        Faults(None)
    }

    /// Whether a plan is armed.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Consult the plan (no-op returning `None` when disabled).
    #[inline]
    pub fn fire(&self, kind: FaultKind) -> Option<FaultAction> {
        match &self.0 {
            None => None,
            Some(plan) => plan.fire(kind),
        }
    }

    /// The armed plan, if any (chaos harnesses reconcile against it).
    pub fn plan(&self) -> Option<&Arc<FaultPlan>> {
        self.0.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plan_fires_at_exact_occurrences() {
        let faults = FaultPlan::script()
            .at(FaultKind::WorkerPanic, 1)
            .at(FaultKind::WorkerPanic, 3)
            .faults();
        let fired: Vec<bool> = (0..5)
            .map(|_| faults.fire(FaultKind::WorkerPanic).is_some())
            .collect();
        assert_eq!(fired, vec![false, true, false, true, false]);
        let plan = faults.plan().unwrap();
        assert_eq!(plan.arrivals(FaultKind::WorkerPanic), 5);
        assert_eq!(plan.injected(FaultKind::WorkerPanic), 2);
        assert_eq!(plan.injected_total(), 2);
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_seed_sensitive() {
        let mk = |seed| {
            FaultPlan::seeded(seed)
                .with_rate(FaultKind::SlowExec, 0.5, 64)
                .scheduled(FaultKind::SlowExec)
                .to_vec()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
        let n = mk(7).len();
        assert!((8..56).contains(&n), "rate 0.5 over 64 arrivals, got {n}");
    }

    #[test]
    fn rate_extremes_cover_none_and_all() {
        let never = FaultPlan::seeded(1).with_rate(FaultKind::CachePoison, 0.0, 32);
        assert!(never.scheduled(FaultKind::CachePoison).is_empty());
        let always = FaultPlan::seeded(1).with_rate(FaultKind::CachePoison, 1.0, 32);
        assert_eq!(always.scheduled(FaultKind::CachePoison).len(), 32);
    }

    #[test]
    fn disabled_seam_never_fires() {
        let faults = Faults::disabled();
        assert!(!faults.enabled());
        for kind in FaultKind::ALL {
            assert_eq!(faults.fire(kind), None);
        }
        assert!(faults.plan().is_none());
    }

    #[test]
    fn actions_carry_configured_durations() {
        let faults = FaultPlan::script()
            .at(FaultKind::CompileStall, 0)
            .at(FaultKind::SlowExec, 0)
            .with_stall(Duration::from_millis(7))
            .with_slow_exec(Duration::from_millis(9))
            .faults();
        assert_eq!(
            faults.fire(FaultKind::CompileStall),
            Some(FaultAction::Stall(Duration::from_millis(7)))
        );
        assert_eq!(
            faults.fire(FaultKind::SlowExec),
            Some(FaultAction::Stall(Duration::from_millis(9)))
        );
    }

    #[test]
    fn kind_names_are_stable() {
        for kind in FaultKind::ALL {
            assert!(!kind.name().is_empty());
            assert!(kind
                .name()
                .chars()
                .all(|c| c == '_' || c.is_ascii_lowercase()));
        }
    }
}
