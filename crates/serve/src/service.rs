//! The serving engine: bounded admission, a dispatcher that coalesces
//! batches, and a pool of executor workers.
//!
//! ```text
//!  submit() ──try_send──▶ [admission queue] ──▶ dispatcher ──▶ [batch queue] ──▶ worker 0
//!     │                     (bounded)          per-plan bins     (bounded)       worker 1
//!     └─▶ ServeError::QueueFull on overflow    flush on size         │              ...
//!                                              or max_wait          └──▶ stack → run → split
//! ```
//!
//! Every accepted request terminates in exactly one of: a successful
//! [`Response`], [`crate::ServeError::DeadlineExceeded`],
//! [`crate::ServeError::Exec`], or [`crate::ServeError::Canceled`] — the
//! completion guard on each ticket makes silent drops impossible even if a
//! worker panics.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use tssa_backend::{DeviceProfile, ExecStats, RtValue};
use tssa_obs::{Span, Tracer};
use tssa_pipelines::CompiledProgram;

use crate::batch::BatchSpec;
use crate::cache::{PipelineKind, PlanCache, PlanKey};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::ServeError;

/// Tuning knobs for [`Service::new`]. Start from `Default` and override
/// with the `with_*` builders.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor threads (≥ 1).
    pub workers: usize,
    /// Admission-queue depth; requests beyond it are shed with
    /// [`ServeError::QueueFull`].
    pub queue_depth: usize,
    /// Maximum requests coalesced into one execution.
    pub max_batch: usize,
    /// How long an under-full batch may wait for company before flushing.
    pub max_wait: Duration,
    /// Plan-cache capacity (ready plans retained).
    pub cache_capacity: usize,
    /// Simulated device every worker executes on.
    pub device: DeviceProfile,
    /// Per-worker cap on `prim::ParallelMap` threads. `None` divides the
    /// machine's cores evenly among workers so the pool does not
    /// oversubscribe.
    pub worker_parallel_threads: Option<usize>,
    /// Deadline applied to requests submitted without an explicit one.
    pub default_deadline: Option<Duration>,
    /// Where request/compile/exec spans are recorded. Defaults to the
    /// disabled tracer (zero overhead); install one with
    /// [`ServeConfig::with_tracer`] to capture end-to-end traces.
    pub tracer: Tracer,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            cache_capacity: 32,
            device: DeviceProfile::consumer(),
            worker_parallel_threads: None,
            default_deadline: None,
            tracer: Tracer::disabled(),
        }
    }
}

macro_rules! with_field {
    ($(#[$doc:meta] $fn_name:ident: $field:ident, $ty:ty;)+) => {
        impl ServeConfig {
            $(#[$doc]
            #[must_use]
            pub fn $fn_name(mut self, value: $ty) -> ServeConfig {
                self.$field = value;
                self
            })+
        }
    };
}

with_field! {
    /// Set the worker count.
    with_workers: workers, usize;
    /// Set the admission-queue depth.
    with_queue_depth: queue_depth, usize;
    /// Set the maximum batch size.
    with_max_batch: max_batch, usize;
    /// Set the batching window.
    with_max_wait: max_wait, Duration;
    /// Set the plan-cache capacity.
    with_cache_capacity: cache_capacity, usize;
    /// Set the execution device.
    with_device: device, DeviceProfile;
    /// Cap per-worker parallel threads.
    with_worker_parallel_threads: worker_parallel_threads, Option<usize>;
    /// Set the default request deadline.
    with_default_deadline: default_deadline, Option<Duration>;
    /// Record request/compile/exec spans into `tracer`.
    with_tracer: tracer, Tracer;
}

/// A loaded model: a cached compiled plan plus its batching contract.
/// Cheap to clone; clones share the plan.
#[derive(Clone)]
pub struct ModelHandle {
    plan: Arc<CompiledProgram>,
    spec: Arc<BatchSpec>,
}

impl ModelHandle {
    /// The compiled plan backing this handle.
    pub fn plan(&self) -> &Arc<CompiledProgram> {
        &self.plan
    }

    /// The batching contract.
    pub fn spec(&self) -> &BatchSpec {
        &self.spec
    }
}

/// A successful execution result delivered through a [`Ticket`].
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's outputs (already split out of the batch).
    pub outputs: Vec<RtValue>,
    /// How many requests shared the execution (1 = ran alone).
    pub coalesced: usize,
    /// Execution statistics of the (shared) batch run.
    pub stats: ExecStats,
}

struct TicketShared {
    slot: Mutex<Option<Result<Response, ServeError>>>,
    cv: Condvar,
}

/// The caller's handle to an in-flight request.
pub struct Ticket {
    shared: Arc<TicketShared>,
}

impl Ticket {
    /// Block until the request reaches a terminal state.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut guard = self.shared.slot.lock();
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            self.shared.cv.wait(&mut guard);
        }
    }

    /// Poll without blocking: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Response, ServeError>> {
        self.shared.slot.lock().take()
    }
}

/// Completion side of a ticket. Completing consumes it; dropping it
/// un-completed (worker panic, shutdown race) delivers
/// [`ServeError::Canceled`] so the waiter never hangs.
struct Completer {
    shared: Arc<TicketShared>,
    metrics: Arc<Metrics>,
    submitted: Instant,
    done: bool,
}

impl Completer {
    fn new(metrics: Arc<Metrics>) -> (Ticket, Completer) {
        let shared = Arc::new(TicketShared {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        let ticket = Ticket {
            shared: Arc::clone(&shared),
        };
        let completer = Completer {
            shared,
            metrics,
            submitted: Instant::now(),
            done: false,
        };
        (ticket, completer)
    }

    fn complete(mut self, result: Result<Response, ServeError>) {
        use std::sync::atomic::Ordering::Relaxed;
        match &result {
            Ok(_) => {
                self.metrics.completed.fetch_add(1, Relaxed);
                self.metrics.latency.record(self.submitted.elapsed());
            }
            Err(ServeError::DeadlineExceeded { .. }) => {
                self.metrics.shed_deadline.fetch_add(1, Relaxed);
            }
            Err(ServeError::Exec(_)) | Err(ServeError::InvalidRequest(_)) => {
                self.metrics.exec_failures.fetch_add(1, Relaxed);
            }
            Err(_) => {
                self.metrics.canceled.fetch_add(1, Relaxed);
            }
        }
        self.deliver(result);
    }

    /// Deliver without touching metrics and mark done.
    fn deliver(&mut self, result: Result<Response, ServeError>) {
        *self.shared.slot.lock() = Some(result);
        self.shared.cv.notify_all();
        self.done = true;
    }

    /// Forget the ticket without delivering (used when admission fails and
    /// the caller gets the error synchronously instead).
    fn abandon(mut self) {
        self.done = true;
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        if !self.done {
            self.metrics
                .canceled
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.deliver(Err(ServeError::Canceled));
        }
    }
}

struct Request {
    plan: Arc<CompiledProgram>,
    spec: Arc<BatchSpec>,
    inputs: Vec<RtValue>,
    rows: usize,
    submitted: Instant,
    deadline: Option<Instant>,
    completer: Completer,
    /// Root `request` span, opened at admission, recorded when the request
    /// reaches a terminal state (the struct drop after completion).
    span: Option<Span>,
    /// `queue` child covering admission-to-execution wait; finished by the
    /// worker just before the batch runs (or dropped on expiry).
    queue_span: Option<Span>,
}

impl Request {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    fn expire(mut self) {
        let waited = self.submitted.elapsed();
        if let Some(span) = self.span.as_mut() {
            span.counter("deadline_exceeded", 1);
        }
        self.completer
            .complete(Err(ServeError::DeadlineExceeded { waited }));
    }
}

struct Batch {
    requests: Vec<Request>,
}

/// Final accounting returned by [`Service::shutdown`].
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Execution statistics aggregated per worker, in worker order.
    pub per_worker: Vec<ExecStats>,
    /// Sum over all workers.
    pub total: ExecStats,
    /// Metrics at shutdown.
    pub metrics: MetricsSnapshot,
}

/// The multi-threaded inference service. See the module docs for the
/// data path; construct with [`Service::new`], load models with
/// [`Service::load`], submit with [`Service::submit`], and finish with
/// [`Service::shutdown`] (or just drop it — the pool joins either way).
pub struct Service {
    cache: Arc<PlanCache>,
    metrics: Arc<Metrics>,
    tracer: Tracer,
    queue_depth: usize,
    default_deadline: Option<Duration>,
    admit_tx: Option<Sender<Request>>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<ExecStats>>,
    worker_stats: Vec<ExecStats>,
}

impl Service {
    /// Start the dispatcher and worker threads.
    pub fn new(config: ServeConfig) -> Service {
        let workers_n = config.workers.max(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let thread_cap = config
            .worker_parallel_threads
            .unwrap_or_else(|| (cores / workers_n).max(1));
        let cache = Arc::new(PlanCache::new(config.cache_capacity));
        let metrics = Arc::new(Metrics::new());
        let (admit_tx, admit_rx) = channel::bounded::<Request>(config.queue_depth.max(1));
        let (batch_tx, batch_rx) = channel::bounded::<Batch>(config.queue_depth.max(1));

        let dispatcher = {
            let metrics = Arc::clone(&metrics);
            let max_batch = config.max_batch.max(1);
            let max_wait = config.max_wait;
            std::thread::spawn(move || {
                dispatch_loop(&admit_rx, &batch_tx, max_batch, max_wait, &metrics)
            })
        };
        let workers = (0..workers_n)
            .map(|_| {
                let rx = batch_rx.clone();
                let device = config.device.clone();
                std::thread::spawn(move || worker_loop(&rx, &device, thread_cap))
            })
            .collect();

        Service {
            cache,
            metrics,
            tracer: config.tracer,
            queue_depth: config.queue_depth.max(1),
            default_deadline: config.default_deadline,
            admit_tx: Some(admit_tx),
            dispatcher: Some(dispatcher),
            workers,
            worker_stats: Vec::new(),
        }
    }

    /// Compile (or fetch from the plan cache) the model given by `source`
    /// and `pipeline`, specialized to the signature of `example_inputs`,
    /// and bind it to a batching contract.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] when `spec` arity disagrees with the
    /// example inputs; [`ServeError::Frontend`] when the source does not
    /// compile.
    pub fn load(
        &self,
        source: &str,
        pipeline: PipelineKind,
        example_inputs: &[RtValue],
        spec: BatchSpec,
    ) -> Result<ModelHandle, ServeError> {
        if spec.args.len() != example_inputs.len() {
            return Err(ServeError::invalid(format!(
                "batch spec covers {} arguments, model takes {}",
                spec.args.len(),
                example_inputs.len()
            )));
        }
        let key = PlanKey::new(source, pipeline, example_inputs);
        let mut span = self.tracer.root("request:load", "serve");
        let scope = span.scope();
        let before = self.cache.stats();
        let plan = self.cache.get_or_compile(&key, || {
            let graph = tssa_frontend::compile(source)?;
            Ok(pipeline.compile_traced(&graph, &scope))
        })?;
        if span.enabled() {
            let after = self.cache.stats();
            span.counter("cache_hit", i64::from(after.misses == before.misses));
        }
        span.finish();
        Ok(ModelHandle {
            plan,
            spec: Arc::new(spec),
        })
    }

    /// Submit a request with the service's default deadline.
    ///
    /// # Errors
    ///
    /// See [`Service::submit_with`].
    pub fn submit(&self, model: &ModelHandle, inputs: Vec<RtValue>) -> Result<Ticket, ServeError> {
        self.submit_with(model, inputs, self.default_deadline)
    }

    /// Submit a request that must start executing within `deadline`.
    ///
    /// Admission is non-blocking: when the queue is full the request is shed
    /// *now* with [`ServeError::QueueFull`] rather than waiting — the
    /// backpressure contract that keeps overload latency bounded.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for malformed inputs,
    /// [`ServeError::QueueFull`] under overload, [`ServeError::ShuttingDown`]
    /// after shutdown began.
    pub fn submit_with(
        &self,
        model: &ModelHandle,
        inputs: Vec<RtValue>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        let rows = model.spec.rows(&inputs)?;
        self.metrics.submitted.fetch_add(1, Relaxed);
        let Some(tx) = self.admit_tx.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        let (ticket, completer) = Completer::new(Arc::clone(&self.metrics));
        let now = Instant::now();
        let (span, queue_span) = if self.tracer.enabled() {
            let mut span = self.tracer.root("request", "serve");
            span.counter("rows", rows as i64);
            let queue = span.child("queue", "serve");
            (Some(span), Some(queue))
        } else {
            (None, None)
        };
        let request = Request {
            plan: Arc::clone(&model.plan),
            spec: Arc::clone(&model.spec),
            inputs,
            rows,
            submitted: now,
            deadline: deadline.map(|d| now + d),
            completer,
            span,
            queue_span,
        };
        match tx.try_send(request) {
            Ok(()) => Ok(ticket),
            Err(TrySendError::Full(request)) => {
                self.metrics.shed_queue_full.fetch_add(1, Relaxed);
                request.completer.abandon();
                Err(ServeError::QueueFull {
                    depth: self.queue_depth,
                })
            }
            Err(TrySendError::Disconnected(request)) => {
                request.completer.abandon();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// The shared plan cache (exposed for cache-centric tests and tools).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.cache.stats())
    }

    /// Stop admitting, drain every queued request to a terminal state, join
    /// all threads, and report per-worker statistics.
    pub fn shutdown(mut self) -> PoolReport {
        self.join_pool();
        let per_worker = std::mem::take(&mut self.worker_stats);
        let mut total = ExecStats::default();
        for s in &per_worker {
            total.merge(s);
        }
        PoolReport {
            per_worker,
            total,
            metrics: self.metrics(),
        }
    }

    fn join_pool(&mut self) {
        // Dropping the admission sender disconnects the dispatcher, which
        // flushes its bins and drops the batch sender, which drains the
        // workers — an ordered, lossless shutdown.
        drop(self.admit_tx.take());
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for w in std::mem::take(&mut self.workers) {
            match w.join() {
                Ok(stats) => self.worker_stats.push(stats),
                Err(_) => self.worker_stats.push(ExecStats::default()),
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.join_pool();
    }
}

fn dispatch_loop(
    rx: &Receiver<Request>,
    tx: &Sender<Batch>,
    max_batch: usize,
    max_wait: Duration,
    metrics: &Arc<Metrics>,
) {
    struct Bin {
        requests: Vec<Request>,
        opened: Instant,
    }
    let mut bins: HashMap<usize, Bin> = HashMap::new();
    let flush = |requests: Vec<Request>| {
        if requests.is_empty() {
            return;
        }
        metrics.record_batch(requests.len());
        // A send error means every worker is gone; dropping the batch here
        // completes its tickets with Canceled via the completion guards.
        let _ = tx.send(Batch { requests });
    };
    loop {
        let now = Instant::now();
        let timeout = bins
            .values()
            .map(|b| (b.opened + max_wait).saturating_duration_since(now))
            .min()
            .unwrap_or(max_wait);
        match rx.recv_timeout(timeout) {
            Ok(request) => {
                let now = Instant::now();
                if request.expired(now) {
                    request.expire();
                    continue;
                }
                if !request.spec.batchable() || max_batch == 1 {
                    flush(vec![request]);
                    continue;
                }
                let key = Arc::as_ptr(&request.plan) as usize;
                if let Some(bin) = bins.get_mut(&key) {
                    let head = &bin.requests[0];
                    let compatible = Arc::ptr_eq(&head.spec, &request.spec)
                        && head.spec.compatible(&head.inputs, &request.inputs);
                    if !compatible {
                        let old = std::mem::replace(
                            bin,
                            Bin {
                                requests: vec![request],
                                opened: now,
                            },
                        );
                        flush(old.requests);
                    } else {
                        bin.requests.push(request);
                    }
                } else {
                    bins.insert(
                        key,
                        Bin {
                            requests: vec![request],
                            opened: now,
                        },
                    );
                }
                if bins
                    .get(&key)
                    .is_some_and(|b| b.requests.len() >= max_batch)
                {
                    if let Some(bin) = bins.remove(&key) {
                        flush(bin.requests);
                    }
                }
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let due: Vec<usize> = bins
                    .iter()
                    .filter(|(_, b)| now.saturating_duration_since(b.opened) >= max_wait)
                    .map(|(k, _)| *k)
                    .collect();
                for k in due {
                    if let Some(bin) = bins.remove(&k) {
                        flush(bin.requests);
                    }
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => {
                for (_, bin) in bins.drain() {
                    flush(bin.requests);
                }
                return;
            }
        }
    }
}

fn worker_loop(rx: &Receiver<Batch>, device: &DeviceProfile, thread_cap: usize) -> ExecStats {
    let mut aggregate = ExecStats::default();
    while let Ok(batch) = rx.recv() {
        run_batch(batch, device, thread_cap, &mut aggregate);
    }
    aggregate
}

fn run_batch(batch: Batch, device: &DeviceProfile, thread_cap: usize, aggregate: &mut ExecStats) {
    let now = Instant::now();
    let mut live: Vec<Request> = Vec::with_capacity(batch.requests.len());
    for request in batch.requests {
        if request.expired(now) {
            request.expire();
        } else {
            live.push(request);
        }
    }
    if live.is_empty() {
        return;
    }
    let plan = Arc::clone(&live[0].plan);
    let spec = Arc::clone(&live[0].spec);

    // The queueing phase ends here: close each request's `queue` span and
    // open its `batch` child covering the shared execution.
    let coalesced = live.len();
    let mut batch_spans: Vec<Option<Span>> = live
        .iter_mut()
        .map(|request| {
            if let Some(queue) = request.queue_span.take() {
                queue.finish();
            }
            request.span.as_ref().map(|span| {
                let mut batch_span = span.child("batch", "serve");
                batch_span.counter("coalesced", coalesced as i64);
                batch_span
            })
        })
        .collect();

    let inputs: Vec<RtValue> = if coalesced == 1 {
        live[0].inputs.clone()
    } else {
        let arg_lists: Vec<&[RtValue]> = live.iter().map(|r| r.inputs.as_slice()).collect();
        match spec.stack(&arg_lists) {
            Ok(stacked) => stacked,
            Err(e) => {
                for request in live {
                    request.completer.complete(Err(e.clone()));
                }
                return;
            }
        }
    };

    // The head request's batch span hosts the execution trace (`exec` with a
    // `batch[0]` child); followers' spans still delimit the shared run.
    let exec_scope = batch_spans
        .first()
        .and_then(Option::as_ref)
        .map_or_else(tssa_obs::TraceScope::disabled, Span::scope);
    let result = {
        let mut session = plan
            .session()
            .on_device(device.clone())
            .cap_parallel_threads(thread_cap)
            .traced(&exec_scope);
        session.run_collect(&inputs, aggregate)
        // The session drops here, recording the `exec` span before the
        // batch spans below close over it.
    };
    for batch_span in batch_spans.drain(..).flatten() {
        batch_span.finish();
    }

    match result {
        Ok((outputs, stats)) => {
            if coalesced == 1 {
                let request = live.pop().expect("one live request");
                request.completer.complete(Ok(Response {
                    outputs,
                    coalesced: 1,
                    stats,
                }));
                return;
            }
            let rows: Vec<usize> = live.iter().map(|r| r.rows).collect();
            match spec.split(&outputs, &rows) {
                Ok(per_request) => {
                    for (request, outs) in live.into_iter().zip(per_request) {
                        request.completer.complete(Ok(Response {
                            outputs: outs,
                            coalesced,
                            stats,
                        }));
                    }
                }
                Err(e) => {
                    for request in live {
                        request.completer.complete(Err(e.clone()));
                    }
                }
            }
        }
        Err(e) => {
            for request in live {
                request.completer.complete(Err(ServeError::Exec(e.clone())));
            }
        }
    }
}
