//! The serving engine: bounded admission, a dispatcher that coalesces
//! batches, a pool of executor workers, and a supervisor that replaces
//! crashed workers.
//!
//! ```text
//!  submit() ──try_send──▶ [admission queue] ──▶ dispatcher ──▶ [batch queue] ──▶ worker 0
//!     │                     (bounded)          per-plan bins     (bounded)       worker 1
//!     └─▶ ServeError::QueueFull on overflow    flush on size         │              ...
//!                                              or max_wait          └──▶ stack → run → split
//!                                                                        ▲
//!                                  supervisor ◀── crash events ──────────┘
//!                                  (re-queue in-flight batch once, respawn worker)
//! ```
//!
//! Every accepted request terminates in exactly one of: a successful
//! [`Response`], [`crate::ServeError::DeadlineExceeded`],
//! [`crate::ServeError::Timeout`], [`crate::ServeError::Exec`], or
//! [`crate::ServeError::Canceled`] — the completion guard on each ticket
//! makes silent drops impossible even if a worker panics.
//!
//! # Fault tolerance
//!
//! Three recovery mechanisms ride on the normal data path:
//!
//! - **Supervision.** Workers run inside a crash guard; a panic mid-batch
//!   notifies the supervisor, which re-queues the batch parked in the
//!   worker's in-flight slot (exactly once — a second crash on the same
//!   batch fails its requests with `Canceled`) and respawns a replacement
//!   worker on the same slot.
//! - **Ticket timeouts.** When a request carries a deadline, its waiter
//!   enforces `deadline + timeout_grace` wall-clock: if no terminal result
//!   arrives by then, [`Ticket::wait`] returns [`crate::ServeError::Timeout`]
//!   and a late worker completion is discarded (its span is marked
//!   `timed_out`) instead of double-counting.
//! - **Degradation.** When the dispatcher's sliding-window p99 of
//!   admission-to-dispatch wait exceeds the threshold — fixed
//!   ([`ServeConfig::degrade_p99`]) or derived from the service's own
//!   long-run queue-wait histogram
//!   ([`ServeConfig::degrade_adaptive`]) — it sheds batching (size-1
//!   flushes) and routes requests to the model's `Degraded` plan — no
//!   optimization pipeline, direct interpretation — trading throughput for
//!   bounded queueing latency, with cooldown hysteresis before
//!   re-evaluating.
//!
//! Deterministic fault injection (see [`crate::fault`]) exercises all three:
//! a [`crate::FaultPlan`] threaded through [`ServeConfig::with_faults`]
//! triggers worker panics, compile stalls, cache poisoning, admission
//! bursts, and slow executions on a seeded schedule. When disabled (the
//! default), every hook is a branch on a `None`.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use tssa_backend::{DeviceProfile, ExecStats, RtValue};
use tssa_obs::{Gauge, HistogramMetric, MetricsRegistry, ProfileSink, Profiler, Span, Tracer};
use tssa_pipelines::{CompiledProgram, ProfileRecorder};
use tssa_store::{ClassMeta, DecodedPlan, PlanStore};

use crate::batch::{AdaptiveDegrade, BatchSpec, DegradeController};
use crate::cache::{signature_of, source_hash, PipelineKind, PlanCache, PlanKey};
use crate::class::{bucket_label, bucket_label_of, coarse_class_hash, ClassEntry, ClassSignature};
use crate::fault::{FaultAction, FaultKind, Faults, INJECTED_COMPILE_PANIC, INJECTED_PANIC};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::ServeError;

/// Tuning knobs for [`Service::new`]. Start from `Default` and override
/// with the `with_*` builders.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor threads (≥ 1).
    pub workers: usize,
    /// Admission-queue depth; requests beyond it are shed with
    /// [`ServeError::QueueFull`].
    pub queue_depth: usize,
    /// Maximum requests coalesced into one execution.
    pub max_batch: usize,
    /// How long an under-full batch may wait for company before flushing.
    pub max_wait: Duration,
    /// Plan-cache capacity (ready plans retained).
    pub cache_capacity: usize,
    /// Simulated device every worker executes on.
    pub device: DeviceProfile,
    /// Per-worker cap on `prim::ParallelMap` threads. `None` divides the
    /// machine's cores evenly among workers so the pool does not
    /// oversubscribe.
    pub worker_parallel_threads: Option<usize>,
    /// Deadline applied to requests submitted without an explicit one.
    pub default_deadline: Option<Duration>,
    /// Where request/compile/exec spans are recorded. Defaults to the
    /// disabled tracer (zero overhead); install one with
    /// [`ServeConfig::with_tracer`] to capture end-to-end traces.
    pub tracer: Tracer,
    /// Slack a deadline-carrying waiter grants past its deadline before
    /// giving up with [`ServeError::Timeout`]. The deadline itself governs
    /// *starting* execution (checked by dispatcher and worker, yielding
    /// `DeadlineExceeded`); the grace bounds how long the waiter tolerates
    /// an execution that started in time but never finishes.
    pub timeout_grace: Duration,
    /// Queue-wait p99 above which the dispatcher enters degraded mode
    /// (batching shed, `Degraded` plans preferred). `None` disables
    /// fixed-threshold degradation ([`ServeConfig::degrade_adaptive`] may
    /// still enable the adaptive trigger, which takes precedence).
    pub degrade_p99: Option<Duration>,
    /// Adaptive degradation: the trip threshold is derived from the
    /// service's own long-run queue-wait histogram
    /// (`max(floor, factor × median)`) instead of a fixed knob. Takes
    /// precedence over [`ServeConfig::degrade_p99`] when both are set.
    pub degrade_adaptive: Option<AdaptiveDegrade>,
    /// How long degraded mode holds before re-evaluating (hysteresis).
    pub degrade_cooldown: Duration,
    /// Registry the service records first-class metrics into: queue-wait
    /// and per-plan batch-occupancy histograms, plus the bridged
    /// [`MetricsSnapshot`] when [`Service::prometheus`] renders. Defaults
    /// to a fresh registry per service (isolated tests); production
    /// binaries typically pass `MetricsRegistry::global().clone()` so one
    /// scrape covers the whole process.
    pub registry: MetricsRegistry,
    /// Deterministic fault-injection schedule. Disabled by default; every
    /// injection site is a cheap `None` check when off.
    pub faults: Faults,
    /// Persistent plan store backing warm restarts. When set, loads with
    /// `warm_from_disk` enabled try the store before compiling (under the
    /// same single-flight), and freshly compiled plans are written back
    /// asynchronously. `None` (the default) keeps the service fully
    /// in-memory.
    pub plan_store: Option<Arc<PlanStore>>,
    /// Bucketed specialization threshold: when a concrete shape bucket
    /// inside a shape class accumulates this many hits, the service
    /// compiles a dedicated plan for it (the generic class plan stays as
    /// fallback). `None` (the default) disables re-specialization, so a
    /// class is served by exactly one plan forever.
    pub specialize_after: Option<u64>,
    /// Cap on dedicated specializations retained per shape class; the
    /// least-hit specialization is evicted to admit a hotter one.
    pub max_specializations: usize,
    /// Op-level execution profiler. When set, each worker records per-op
    /// self-time into its own [`tssa_obs::ProfileSink`] (subject to the
    /// profiler's sampling decision per batch) and
    /// [`Service::prometheus`] / [`Service::profiler`] expose the merged
    /// table. `None` (the default) keeps the hot path observer-free.
    pub profiler: Option<Profiler>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            cache_capacity: 32,
            device: DeviceProfile::consumer(),
            worker_parallel_threads: None,
            default_deadline: None,
            tracer: Tracer::disabled(),
            timeout_grace: Duration::from_millis(250),
            degrade_p99: None,
            degrade_adaptive: None,
            degrade_cooldown: Duration::from_millis(10),
            registry: MetricsRegistry::new(),
            faults: Faults::disabled(),
            plan_store: None,
            specialize_after: None,
            max_specializations: 4,
            profiler: None,
        }
    }
}

macro_rules! with_field {
    ($(#[$doc:meta] $fn_name:ident: $field:ident, $ty:ty;)+) => {
        impl ServeConfig {
            $(#[$doc]
            #[must_use]
            pub fn $fn_name(mut self, value: $ty) -> ServeConfig {
                self.$field = value;
                self
            })+
        }
    };
}

with_field! {
    /// Set the worker count.
    with_workers: workers, usize;
    /// Set the admission-queue depth.
    with_queue_depth: queue_depth, usize;
    /// Set the maximum batch size.
    with_max_batch: max_batch, usize;
    /// Set the batching window.
    with_max_wait: max_wait, Duration;
    /// Set the plan-cache capacity.
    with_cache_capacity: cache_capacity, usize;
    /// Set the execution device.
    with_device: device, DeviceProfile;
    /// Cap per-worker parallel threads.
    with_worker_parallel_threads: worker_parallel_threads, Option<usize>;
    /// Set the default request deadline.
    with_default_deadline: default_deadline, Option<Duration>;
    /// Record request/compile/exec spans into `tracer`.
    with_tracer: tracer, Tracer;
    /// Set the waiter's slack past the deadline before `Timeout`.
    with_timeout_grace: timeout_grace, Duration;
    /// Enable degraded mode above this queue-wait p99.
    with_degrade_p99: degrade_p99, Option<Duration>;
    /// Derive the degrade threshold from the queue-wait histogram.
    with_adaptive_degrade: degrade_adaptive, Option<AdaptiveDegrade>;
    /// Set the degraded-mode hysteresis window.
    with_degrade_cooldown: degrade_cooldown, Duration;
    /// Record queue-wait/occupancy histograms and bridged metrics here.
    with_registry: registry, MetricsRegistry;
    /// Install a fault-injection schedule.
    with_faults: faults, Faults;
    /// Back model loads with a persistent plan store (warm restarts).
    with_plan_store: plan_store, Option<Arc<PlanStore>>;
    /// Re-specialize a shape bucket after this many hits.
    with_specialize_after: specialize_after, Option<u64>;
    /// Cap dedicated specializations retained per shape class.
    with_max_specializations: max_specializations, usize;
    /// Record per-op execution self-time into this profiler.
    with_profiler: profiler, Option<Profiler>;
}

/// A loaded model: a cached compiled plan plus its batching contract.
/// Cheap to clone; clones share the plan.
#[derive(Clone)]
pub struct ModelHandle {
    plan: Arc<CompiledProgram>,
    spec: Arc<BatchSpec>,
    /// Metric label identifying this model's plan (`plan="<label>"` on the
    /// per-plan batch-occupancy histogram). Defaults to
    /// `<pipeline>:<source-hash-prefix>`; name it with
    /// [`ModelLoader::named`].
    label: Arc<str>,
    /// Zero-pass fallback plan, compiled alongside the primary when
    /// degradation is enabled on the service.
    degraded: Option<Arc<CompiledProgram>>,
    /// Shape-class entry this handle is admitted under, when the plan's
    /// certified signature proved shape-polymorphic. Carries the per-bucket
    /// hit census and any re-specialized plans.
    class: Option<Arc<ClassEntry>>,
}

impl ModelHandle {
    /// The compiled plan backing this handle.
    pub fn plan(&self) -> &Arc<CompiledProgram> {
        &self.plan
    }

    /// The batching contract.
    pub fn spec(&self) -> &BatchSpec {
        &self.spec
    }

    /// The metric label this model's batches are reported under.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The degraded fallback plan, when one was compiled.
    pub fn degraded_plan(&self) -> Option<&Arc<CompiledProgram>> {
        self.degraded.as_ref()
    }

    /// The shape-class entry admitting this model, when its certified
    /// signature proved shape-polymorphic.
    pub fn class(&self) -> Option<&Arc<ClassEntry>> {
        self.class.as_ref()
    }
}

/// The metric label for a model: its explicit name, or
/// `<pipeline>:<low 32 bits of the FNV source hash>` — short, stable, and
/// enough to tell models apart on a dashboard.
fn model_label(name: Option<&str>, pipeline: PipelineKind, source: &str) -> Arc<str> {
    match name {
        Some(n) => Arc::from(n),
        None => Arc::from(
            format!(
                "{}:{:08x}",
                pipeline.name(),
                source_hash(source) & 0xFFFF_FFFF
            )
            .as_str(),
        ),
    }
}

/// Builder for loading a model into a [`Service`].
///
/// Obtain one with [`Service::loader`], then chain:
///
/// - [`named`](ModelLoader::named) — explicit metric label (optional);
/// - [`pipeline`](ModelLoader::pipeline) — compilation pipeline
///   (default [`PipelineKind::TensorSsa`]);
/// - [`example`](ModelLoader::example) — example inputs the plan is
///   specialized to (**required**);
/// - [`batch`](ModelLoader::batch) — the batching contract (**required**);
/// - [`deadline`](ModelLoader::deadline) — compile budget (optional);
/// - [`warm_from_disk`](ModelLoader::warm_from_disk) — whether a configured
///   [`PlanStore`] may satisfy this load from disk (default `true`);
///
/// and finish with [`load`](ModelLoader::load).
#[must_use = "a ModelLoader does nothing until .load() is called"]
pub struct ModelLoader<'s> {
    service: &'s Service,
    source: String,
    name: Option<String>,
    pipeline: PipelineKind,
    example_inputs: Vec<RtValue>,
    spec: Option<BatchSpec>,
    deadline: Option<Duration>,
    warm_from_disk: bool,
}

impl ModelLoader<'_> {
    /// Report this model's batches under `plan="<name>"` instead of the
    /// default `<pipeline>:<source-hash-prefix>` label.
    pub fn named(mut self, name: &str) -> Self {
        self.name = Some(name.to_owned());
        self
    }

    /// Compile through `pipeline` (default: [`PipelineKind::TensorSsa`]).
    pub fn pipeline(mut self, pipeline: PipelineKind) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Example inputs the compiled plan is specialized to. Required: a plan
    /// is keyed by the argument signature these induce.
    pub fn example(mut self, inputs: &[RtValue]) -> Self {
        self.example_inputs = inputs.to_vec();
        self
    }

    /// The batching contract requests against this model must satisfy.
    /// Required; its arity must match the example inputs.
    pub fn batch(mut self, spec: BatchSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Compile budget: loads running past `deadline` return
    /// [`ServeError::Timeout`] (the plan still lands in the cache, so a
    /// retry is a hit).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether this load may be satisfied from the service's persistent
    /// [`PlanStore`] (when one is configured). Defaults to `true`; disable
    /// to force a fresh compile, e.g. when benchmarking cold-start cost.
    pub fn warm_from_disk(mut self, warm: bool) -> Self {
        self.warm_from_disk = warm;
        self
    }

    /// Execute the load.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] when no batch spec was given or its
    /// arity disagrees with the example inputs; [`ServeError::Frontend`]
    /// when the source does not compile; [`ServeError::Timeout`] past a
    /// configured deadline.
    pub fn load(self) -> Result<ModelHandle, ServeError> {
        let Some(spec) = self.spec else {
            return Err(ServeError::invalid(
                "ModelLoader needs a batching contract: call .batch(spec) before .load()",
            ));
        };
        self.service.load_inner(
            self.name.as_deref(),
            &self.source,
            self.pipeline,
            &self.example_inputs,
            spec,
            self.deadline,
            self.warm_from_disk,
        )
    }
}

/// A successful execution result delivered through a [`Ticket`].
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's outputs (already split out of the batch).
    pub outputs: Vec<RtValue>,
    /// How many requests shared the execution (1 = ran alone).
    pub coalesced: usize,
    /// Execution statistics of the (shared) batch run.
    pub stats: ExecStats,
}

/// Terminal-state slot shared between a [`Ticket`] and its [`Completer`].
/// `TimedOut` is sticky: once the waiter gives up, a late completion is
/// discarded rather than delivered (and rather than double-counted).
enum Slot {
    Pending,
    Done(Result<Response, ServeError>),
    TimedOut,
}

struct TicketShared {
    slot: Mutex<Slot>,
    cv: Condvar,
    submitted: Instant,
    /// Wall-clock point past which the waiter stops waiting
    /// (`deadline + timeout_grace`), `None` for unbounded waits.
    timeout_at: Option<Instant>,
    metrics: Arc<Metrics>,
}

/// The caller's handle to an in-flight request.
pub struct Ticket {
    shared: Arc<TicketShared>,
}

impl Ticket {
    /// Block until the request reaches a terminal state.
    ///
    /// When the request was submitted with a deadline, the wait itself is
    /// bounded: after `deadline + timeout_grace` this returns
    /// [`ServeError::Timeout`] even if a worker is still executing the
    /// request (its eventual result is discarded).
    pub fn wait(self) -> Result<Response, ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        let mut guard = self.shared.slot.lock();
        loop {
            match std::mem::replace(&mut *guard, Slot::Pending) {
                Slot::Done(result) => return result,
                Slot::TimedOut => {
                    *guard = Slot::TimedOut;
                    return Err(ServeError::Timeout {
                        waited: self.shared.submitted.elapsed(),
                    });
                }
                Slot::Pending => {}
            }
            match self.shared.timeout_at {
                None => self.shared.cv.wait(&mut guard),
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        *guard = Slot::TimedOut;
                        drop(guard);
                        self.shared.metrics.timeouts.fetch_add(1, Relaxed);
                        return Err(ServeError::Timeout {
                            waited: self.shared.submitted.elapsed(),
                        });
                    }
                    self.shared.cv.wait_for(&mut guard, at - now);
                }
            }
        }
    }

    /// Poll without blocking: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Response, ServeError>> {
        let mut guard = self.shared.slot.lock();
        match std::mem::replace(&mut *guard, Slot::Pending) {
            Slot::Done(result) => Some(result),
            Slot::TimedOut => {
                *guard = Slot::TimedOut;
                None
            }
            Slot::Pending => None,
        }
    }
}

/// Whether a completion reached its waiter or was discarded because the
/// waiter had already timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delivery {
    Delivered,
    DiscardedTimedOut,
}

/// Completion side of a ticket. Completing consumes it; dropping it
/// un-completed (worker panic past re-queue, shutdown race) delivers
/// [`ServeError::Canceled`] so the waiter never hangs.
struct Completer {
    shared: Arc<TicketShared>,
    metrics: Arc<Metrics>,
    done: bool,
}

impl Completer {
    fn new(
        metrics: Arc<Metrics>,
        submitted: Instant,
        timeout_at: Option<Instant>,
    ) -> (Ticket, Completer) {
        let shared = Arc::new(TicketShared {
            slot: Mutex::new(Slot::Pending),
            cv: Condvar::new(),
            submitted,
            timeout_at,
            metrics: Arc::clone(&metrics),
        });
        let ticket = Ticket {
            shared: Arc::clone(&shared),
        };
        let completer = Completer {
            shared,
            metrics,
            done: false,
        };
        (ticket, completer)
    }

    /// Deliver a terminal result and record its outcome metric — but only
    /// when the waiter actually receives it; results discarded against a
    /// timed-out ticket leave the metrics to the timeout counter.
    fn complete(mut self, result: Result<Response, ServeError>) -> Delivery {
        use std::sync::atomic::Ordering::Relaxed;
        let latency = self.shared.submitted.elapsed();
        let outcome = match &result {
            Ok(_) => 0u8,
            Err(ServeError::DeadlineExceeded { .. }) => 1,
            Err(ServeError::Exec(_)) | Err(ServeError::InvalidRequest(_)) => 2,
            Err(_) => 3,
        };
        let metrics = Arc::clone(&self.metrics);
        self.deliver(result, || match outcome {
            0 => {
                metrics.completed.fetch_add(1, Relaxed);
                metrics.latency.record(latency);
            }
            1 => {
                metrics.shed_deadline.fetch_add(1, Relaxed);
            }
            2 => {
                metrics.exec_failures.fetch_add(1, Relaxed);
            }
            _ => {
                metrics.canceled.fetch_add(1, Relaxed);
            }
        })
    }

    /// Deliver and mark done. Returns whether the waiter will see the
    /// result. `on_delivered` runs under the slot lock, before the waiter
    /// is woken — so a metrics snapshot taken the instant `wait` returns
    /// already reflects this request's outcome counter.
    fn deliver(
        &mut self,
        result: Result<Response, ServeError>,
        on_delivered: impl FnOnce(),
    ) -> Delivery {
        self.done = true;
        let mut guard = self.shared.slot.lock();
        if matches!(*guard, Slot::TimedOut) {
            return Delivery::DiscardedTimedOut;
        }
        *guard = Slot::Done(result);
        on_delivered();
        drop(guard);
        self.shared.cv.notify_all();
        Delivery::Delivered
    }

    /// Forget the ticket without delivering (used when admission fails and
    /// the caller gets the error synchronously instead).
    fn abandon(mut self) {
        self.done = true;
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        if !self.done {
            let metrics = Arc::clone(&self.metrics);
            self.deliver(Err(ServeError::Canceled), || {
                metrics
                    .canceled
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
    }
}

struct Request {
    plan: Arc<CompiledProgram>,
    spec: Arc<BatchSpec>,
    /// Model label for per-plan metrics (shared with the [`ModelHandle`]).
    plan_label: Arc<str>,
    inputs: Vec<RtValue>,
    rows: usize,
    submitted: Instant,
    deadline: Option<Instant>,
    completer: Completer,
    /// Root `request` span, opened at admission, recorded when the request
    /// reaches a terminal state (the struct drop after completion).
    span: Option<Span>,
    /// `queue` child covering admission-to-execution wait; finished by the
    /// worker just before the batch runs (or dropped on expiry).
    queue_span: Option<Span>,
    /// Fallback plan to use when the dispatcher routes this request through
    /// degraded mode.
    degraded_plan: Option<Arc<CompiledProgram>>,
    /// Set by the dispatcher when degraded mode claimed this request.
    degrade: bool,
}

impl Request {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    fn expire(mut self) {
        let waited = self.submitted.elapsed();
        if let Some(span) = self.span.as_mut() {
            span.counter("deadline_exceeded", 1);
        }
        self.finish_with(Err(ServeError::DeadlineExceeded { waited }));
    }

    /// Complete the request, marking its span `timed_out` when the waiter
    /// already gave up and the result is discarded.
    fn finish_with(mut self, result: Result<Response, ServeError>) {
        let mut span = self.span.take();
        let delivery = self.completer.complete(result);
        if let (Some(s), Delivery::DiscardedTimedOut) = (span.as_mut(), delivery) {
            s.mark("timed_out");
        }
    }
}

struct Batch {
    requests: Vec<Request>,
    /// Whether this batch already survived one worker crash. A batch is
    /// re-queued at most once; a second crash fails its requests.
    requeued: bool,
}

/// Lifecycle events flowing from workers (and resize callers) to the
/// supervisor, which owns every pool mutation so crash recovery and
/// grow/shrink never race.
enum WorkerEvent {
    /// Worker `worker` panicked; its in-flight slot may hold a batch.
    Crashed { worker: usize },
    /// Add one worker on a fresh slot ([`Service::grow`]).
    Grow,
    /// Retire the highest-index active worker ([`Service::shrink`]).
    /// Drain-on-shrink: the retire flag is honored *between* batches, never
    /// mid-batch, and the slot's statistics survive in the final report.
    Shrink,
    /// Stop supervising and join the pool.
    Shutdown,
}

/// Per-worker state shared between the worker thread, the supervisor, and
/// the service. Outlives any one incarnation of the worker thread, so stats
/// survive crashes and the in-flight batch survives an unwind.
struct WorkerShared {
    stats: Mutex<ExecStats>,
    /// The batch currently being executed. Parked here (rather than on the
    /// worker's stack) so the supervisor can recover it after a panic.
    in_flight: Mutex<Option<Batch>>,
    /// Retire flag set by shrink. The worker checks it only between
    /// batches (a parked in-flight batch is always drained first), so
    /// shrinking never abandons accepted work. Sticky: a respawn onto a
    /// retired slot drains the recovered batch and exits again.
    stop: AtomicBool,
}

impl WorkerShared {
    fn new() -> WorkerShared {
        WorkerShared {
            stats: Mutex::new(ExecStats::default()),
            in_flight: Mutex::new(None),
            stop: AtomicBool::new(false),
        }
    }
}

/// How often an idle worker re-checks its retire flag while waiting for
/// batches. Bounds shrink latency; disconnect (shutdown) still wakes the
/// worker immediately.
const STOP_POLL: Duration = Duration::from_millis(2);

/// Workers whose retire flag is unset.
fn active_workers(pool: &Mutex<Vec<Arc<WorkerShared>>>) -> usize {
    pool.lock()
        .iter()
        .filter(|s| !s.stop.load(std::sync::atomic::Ordering::Relaxed))
        .count()
}

/// Sends a crash event if the worker thread unwinds; disarmed on clean exit.
struct CrashGuard {
    worker: usize,
    events: Sender<WorkerEvent>,
    armed: bool,
}

impl Drop for CrashGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.events.send(WorkerEvent::Crashed {
                worker: self.worker,
            });
        }
    }
}

/// Everything a worker thread needs; cloned by the supervisor to respawn.
struct WorkerCtx {
    id: usize,
    rx: Receiver<Batch>,
    shared: Arc<WorkerShared>,
    device: DeviceProfile,
    thread_cap: usize,
    metrics: Arc<Metrics>,
    faults: Faults,
    events: Sender<WorkerEvent>,
    profile: Option<WorkerProfile>,
}

/// A worker's view of the execution profiler: the shared sampling decision
/// plus this worker's private lock-cheap sink. A respawned or grown worker
/// gets a fresh sink; the profiler retains every sink it ever minted, so
/// undrained samples from retired incarnations still reach the table.
struct WorkerProfile {
    profiler: Profiler,
    sink: Arc<ProfileSink>,
}

impl WorkerProfile {
    fn for_worker(profiler: Option<&Profiler>) -> Option<WorkerProfile> {
        profiler.map(|p| WorkerProfile {
            profiler: p.clone(),
            sink: p.sink(),
        })
    }
}

/// Bounded-retry policy for [`Service::submit_retry`]: transient errors
/// (queue sheds, cancellations from worker churn) are retried with
/// exponential backoff; typed failures surface immediately.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = no retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based): `base * 2^(n-1)`,
    /// capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        self.base_backoff
            .checked_mul(1u32 << shift)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff)
    }
}

/// Final accounting returned by [`Service::shutdown`].
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Execution statistics aggregated per worker slot, in slot order
    /// (stats survive worker respawns: a slot's numbers cover every
    /// incarnation of that worker).
    pub per_worker: Vec<ExecStats>,
    /// Sum over all workers.
    pub total: ExecStats,
    /// Metrics at shutdown.
    pub metrics: MetricsSnapshot,
}

/// The multi-threaded inference service. See the module docs for the
/// data path; construct with [`Service::new`], load models with
/// [`Service::load`], submit with [`Service::submit`], and finish with
/// [`Service::shutdown`] (or just drop it — the pool joins either way).
pub struct Service {
    cache: Arc<PlanCache>,
    plan_store: Option<Arc<PlanStore>>,
    metrics: Arc<Metrics>,
    registry: MetricsRegistry,
    tracer: Tracer,
    faults: Faults,
    queue_depth: usize,
    default_deadline: Option<Duration>,
    timeout_grace: Duration,
    degrade_enabled: bool,
    /// Bucket hit count past which a concrete shape earns a dedicated
    /// plan; `None` disables re-specialization.
    specialize_after: Option<u64>,
    /// Dedicated specializations retained per shape class.
    max_specializations: usize,
    /// Set by the dispatcher whenever its degrade controller re-evaluates;
    /// read by [`Service::is_degraded`] (readiness probes).
    degraded: Arc<AtomicBool>,
    /// Op-level execution profiler shared with every worker, when enabled.
    profiler: Option<Profiler>,
    admit_tx: Option<Sender<Request>>,
    events_tx: Sender<WorkerEvent>,
    dispatcher: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    /// Every worker slot ever created, shared with the supervisor (which
    /// appends on grow). Retired slots stay: their stats belong in the
    /// final report and their in-flight mutex must drain at shutdown.
    pool: Arc<Mutex<Vec<Arc<WorkerShared>>>>,
}

impl Service {
    /// Start the dispatcher, worker, and supervisor threads.
    pub fn new(config: ServeConfig) -> Service {
        let workers_n = config.workers.max(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let thread_cap = config
            .worker_parallel_threads
            .unwrap_or_else(|| (cores / workers_n).max(1));
        let cache = Arc::new(PlanCache::with_faults(
            config.cache_capacity,
            config.faults.clone(),
        ));
        let metrics = Arc::new(Metrics::new());
        let (admit_tx, admit_rx) = channel::bounded::<Request>(config.queue_depth.max(1));
        let (batch_tx, batch_rx) = channel::bounded::<Batch>(config.queue_depth.max(1));
        let (events_tx, events_rx) = channel::unbounded::<WorkerEvent>();

        // The dispatcher records every request's admission-to-dispatch wait
        // into this histogram; an adaptive degrade trigger reads its median
        // back, closing the loop without a hand-tuned threshold.
        let queue_wait = config.registry.histogram(
            "tssa_queue_wait_us",
            "Admission-to-dispatch queue wait (power-of-two buckets, µs)",
            &[],
        );
        let degrade = match config.degrade_adaptive {
            Some(policy) => Some(DegradeController::adaptive(
                queue_wait.clone(),
                policy,
                config.degrade_cooldown,
            )),
            None => config
                .degrade_p99
                .map(|p99| DegradeController::new(p99, config.degrade_cooldown)),
        };
        let degrade_enabled = degrade.is_some();
        let degraded = Arc::new(AtomicBool::new(false));
        let dispatcher = {
            let ctx = DispatcherCtx {
                max_batch: config.max_batch.max(1),
                max_wait: config.max_wait,
                metrics: Arc::clone(&metrics),
                degrade,
                degraded: Arc::clone(&degraded),
                queue_wait,
                registry: config.registry.clone(),
            };
            std::thread::spawn(move || dispatch_loop(&admit_rx, &batch_tx, ctx))
        };

        let pool: Arc<Mutex<Vec<Arc<WorkerShared>>>> = Arc::new(Mutex::new(
            (0..workers_n)
                .map(|_| Arc::new(WorkerShared::new()))
                .collect(),
        ));
        let handles: Vec<JoinHandle<()>> = pool
            .lock()
            .iter()
            .enumerate()
            .map(|(id, shared)| {
                spawn_worker(WorkerCtx {
                    id,
                    rx: batch_rx.clone(),
                    shared: Arc::clone(shared),
                    device: config.device.clone(),
                    thread_cap,
                    metrics: Arc::clone(&metrics),
                    faults: config.faults.clone(),
                    events: events_tx.clone(),
                    profile: WorkerProfile::for_worker(config.profiler.as_ref()),
                })
            })
            .collect();
        let pool_gauge = config.registry.gauge(
            "tssa_pool_workers",
            "Active executor workers (autoscaler grow/shrink adjusts this)",
            &[],
        );
        pool_gauge.set(workers_n as f64);

        let supervisor = {
            let ctx = SupervisorCtx {
                events_rx,
                batch_rx,
                device: config.device.clone(),
                thread_cap,
                metrics: Arc::clone(&metrics),
                faults: config.faults.clone(),
                events_tx: events_tx.clone(),
                pool: Arc::clone(&pool),
                handles,
                pool_gauge,
                profiler: config.profiler.clone(),
            };
            std::thread::spawn(move || supervisor_loop(ctx))
        };

        Service {
            cache,
            plan_store: config.plan_store,
            metrics,
            registry: config.registry,
            tracer: config.tracer,
            faults: config.faults,
            queue_depth: config.queue_depth.max(1),
            default_deadline: config.default_deadline,
            timeout_grace: config.timeout_grace,
            degrade_enabled,
            specialize_after: config.specialize_after,
            max_specializations: config.max_specializations.max(1),
            profiler: config.profiler,
            degraded,
            admit_tx: Some(admit_tx),
            events_tx,
            dispatcher: Some(dispatcher),
            supervisor: Some(supervisor),
            pool,
        }
    }

    /// Start loading a model: a [`ModelLoader`] builder over `source` —
    /// *the* model-loading entry point.
    ///
    /// ```ignore
    /// let model = service
    ///     .loader(SOURCE)
    ///     .named("default")
    ///     .pipeline(PipelineKind::TensorSsa)
    ///     .example(&example_inputs)
    ///     .batch(BatchSpec::stacked(1, 1))
    ///     .deadline(Duration::from_secs(5))
    ///     .warm_from_disk(true)
    ///     .load()?;
    /// ```
    pub fn loader(&self, source: &str) -> ModelLoader<'_> {
        ModelLoader {
            service: self,
            source: source.to_owned(),
            name: None,
            pipeline: PipelineKind::TensorSsa,
            example_inputs: Vec::new(),
            spec: None,
            deadline: None,
            warm_from_disk: true,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn load_inner(
        &self,
        name: Option<&str>,
        source: &str,
        pipeline: PipelineKind,
        example_inputs: &[RtValue],
        spec: BatchSpec,
        deadline: Option<Duration>,
        warm_from_disk: bool,
    ) -> Result<ModelHandle, ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        if spec.args.len() != example_inputs.len() {
            return Err(ServeError::invalid(format!(
                "batch spec covers {} arguments, model takes {}",
                spec.args.len(),
                example_inputs.len()
            )));
        }
        let started = Instant::now();
        let args_sig = signature_of(example_inputs);
        let coarse = coarse_class_hash(source, pipeline, &args_sig);
        // Class fast path: a resident shape class whose certified signature
        // admits this concrete signature serves the load without touching
        // the concrete-key machinery — any admitted batch size is a hit
        // against the one class plan.
        if let Some(entry) = self.cache.lookup_class(coarse, &args_sig) {
            return self.load_from_class(
                &entry,
                name,
                source,
                pipeline,
                example_inputs,
                spec,
                deadline,
                started,
            );
        }
        let key = PlanKey::new(source, pipeline, example_inputs);
        let mut span = self.tracer.root("request:load", "serve");
        let scope = span.scope();
        let before = self.cache.stats();
        let stalled = std::cell::Cell::new(false);
        // Disk interactions stay inside the single-flight closure, so when
        // M threads race on a cold key, exactly one touches the store — and
        // the key hashing itself is deferred to the miss path, keeping
        // in-memory warm hits free of it.
        let store = self.plan_store.as_deref();
        let store_key = std::cell::Cell::new(None::<(u64, u64)>);
        let disk_hit = std::cell::Cell::new(false);
        let disk_census = std::cell::RefCell::new(Vec::new());
        let compiled_fresh = std::cell::Cell::new(false);
        let plan = self.cache.get_or_compile(&key, || {
            // Injected compile panic: the cache's catch_unwind converts this
            // into the typed `ServeError::CompilePanic` and wakes any
            // single-flight followers to retry.
            if self.faults.fire(FaultKind::CompilePanic).is_some() {
                self.metrics.faults_injected.fetch_add(1, Relaxed);
                std::panic::panic_any(INJECTED_COMPILE_PANIC);
            }
            if let Some(FaultAction::Stall(pause)) = self.faults.fire(FaultKind::CompileStall) {
                self.metrics.faults_injected.fetch_add(1, Relaxed);
                stalled.set(true);
                std::thread::sleep(pause);
            }
            // Warm start: an intact, roster-matched entry bypasses
            // compilation entirely. Damaged or stale entries count their
            // typed counter inside the store and fall through to compile.
            if let Some(s) = store {
                let (content_hash, roster_fp) = (key.content_hash(), pipeline.roster_fingerprint());
                store_key.set(Some((content_hash, roster_fp)));
                if warm_from_disk {
                    // Class-aware probe: the exact entry first, then any
                    // same-coarse entry on disk whose certified signature
                    // admits this concrete signature — a warm restart at a
                    // batch size the previous process never saw still
                    // avoids the compile.
                    let admit = |decoded: &DecodedPlan| {
                        decoded.plan.signature.as_ref().is_some_and(|sig| {
                            ClassSignature::derive(source, pipeline, &args_sig, sig).is_some()
                        })
                    };
                    if let Some((decoded, _exact)) =
                        s.load_class(content_hash, coarse, roster_fp, admit)
                    {
                        disk_hit.set(true);
                        *disk_census.borrow_mut() = decoded.class.census;
                        return Ok(decoded.plan);
                    }
                }
            }
            let graph = tssa_frontend::compile(source)?;
            compiled_fresh.set(true);
            let mut plan = pipeline.compile_traced(&graph, &scope);
            // Certify shape polymorphism against the ranks this plan is
            // specialized to; the signature travels with the plan into the
            // in-memory cache and (via the v2 wire format) the disk store,
            // so warm loads get it back without re-running the analysis.
            let ranks: Vec<Option<usize>> = example_inputs
                .iter()
                .map(|v| match v {
                    RtValue::Tensor(t) => Some(t.rank()),
                    _ => None,
                })
                .collect();
            plan.signature = Some(tssa_lint::certify_shapes(&plan.graph, &ranks));
            Ok(plan)
        })?;
        if span.enabled() {
            let after = self.cache.stats();
            span.counter("cache_hit", i64::from(after.misses == before.misses));
            if disk_hit.get() {
                span.mark("warm_hit");
            }
            if stalled.get() {
                span.mark("fault:compile_stall");
            }
        }
        // Form (or join) the shape class this plan certifies: future loads
        // and requests at *any* admitted concrete shape reuse this one plan.
        // Plans with data-dependent dims derive no class and stay keyed by
        // concrete signature.
        let spec = Arc::new(spec);
        let class = plan
            .signature
            .as_ref()
            .and_then(|sig| ClassSignature::derive(source, pipeline, &args_sig, sig))
            .map(|class| {
                let entry = ClassEntry::new(
                    class,
                    source,
                    Arc::clone(&plan),
                    Arc::clone(&spec),
                    key.content_hash(),
                    pipeline.roster_fingerprint(),
                );
                // Warm restarts rebuild bucket heat from the persisted
                // census; the deriving example is a resident bucket from
                // birth (at zero hits) so persistence starts complete.
                entry.seed_census(&disk_census.borrow());
                entry.touch_bucket(&bucket_label_of(&args_sig), 0);
                entry.note_origin(key.clone());
                self.cache.insert_class(coarse, entry)
            });
        // Write-back is asynchronous (encode + write happen on the store's
        // writer thread): the load path never blocks on I/O. Class-eligible
        // plans carry their class hashes and census in the v3 header so a
        // restarted process can admit *new* shapes from this entry.
        if compiled_fresh.get() {
            if let (Some(store), Some((content_hash, roster_fp))) = (store, store_key.get()) {
                let meta = class
                    .as_ref()
                    .map_or_else(ClassMeta::default, |entry| ClassMeta {
                        class_hash: entry.key().class_hash(),
                        coarse_hash: entry.key().coarse_hash(),
                        census: entry.census(),
                    });
                store.save_async_with(content_hash, roster_fp, Arc::clone(&plan), meta);
            }
        }
        // Compile the degraded twin alongside the primary when degradation
        // is on, so the dispatcher can switch plans without a compile on the
        // hot path.
        let degraded = if self.degrade_enabled && pipeline != PipelineKind::Degraded {
            let dkey = PlanKey::new(source, PipelineKind::Degraded, example_inputs);
            Some(self.cache.get_or_compile(&dkey, || {
                let graph = tssa_frontend::compile(source)?;
                Ok(PipelineKind::Degraded.compile_traced(&graph, &scope))
            })?)
        } else {
            None
        };
        if let (Some(entry), Some(d)) = (class.as_ref(), degraded.as_ref()) {
            entry.set_degraded(d);
        }
        if let Some(limit) = deadline {
            let waited = started.elapsed();
            if waited > limit {
                // Reported synchronously to the caller, so not counted in
                // `metrics.timeouts` (that counter reconciles asynchronous
                // request outcomes).
                span.mark("timed_out");
                span.finish();
                return Err(ServeError::Timeout { waited });
            }
        }
        span.finish();
        let label = model_label(name, pipeline, source);
        if let Some(sig) = plan.signature.as_ref() {
            self.registry
                .gauge(
                    "tssa_plan_polymorphic_dims",
                    "Input dims the shape certifier proved batch-polymorphic, by plan",
                    &[("plan", &label)],
                )
                .set(sig.polymorphic_dims() as f64);
        }
        Ok(ModelHandle {
            plan,
            spec,
            label,
            degraded,
            class,
        })
    }

    /// Serve a load from a resident [`ClassEntry`]: no compile, no disk, no
    /// concrete-key slot — the class plan is the plan.
    #[allow(clippy::too_many_arguments)]
    fn load_from_class(
        &self,
        entry: &Arc<ClassEntry>,
        name: Option<&str>,
        source: &str,
        pipeline: PipelineKind,
        example_inputs: &[RtValue],
        spec: BatchSpec,
        deadline: Option<Duration>,
        started: Instant,
    ) -> Result<ModelHandle, ServeError> {
        let mut span = self.tracer.root("request:load", "serve");
        let scope = span.scope();
        if span.enabled() {
            span.counter("cache_hit", 1);
            span.mark("class_hit");
        }
        let plan = Arc::clone(entry.plan());
        // Reuse the class's spec allocation when the caller's contract is
        // identical (the common case: every load of a model passes the same
        // spec).
        let spec = if **entry.spec() == spec {
            Arc::clone(entry.spec())
        } else {
            Arc::new(spec)
        };
        let degraded = if self.degrade_enabled && pipeline != PipelineKind::Degraded {
            match entry.degraded() {
                Some(d) => Some(d),
                None => {
                    let dkey = PlanKey::new(source, PipelineKind::Degraded, example_inputs);
                    let d = self.cache.get_or_compile(&dkey, || {
                        let graph = tssa_frontend::compile(source)?;
                        Ok(PipelineKind::Degraded.compile_traced(&graph, &scope))
                    })?;
                    entry.set_degraded(&d);
                    Some(d)
                }
            }
        } else {
            None
        };
        if let Some(limit) = deadline {
            let waited = started.elapsed();
            if waited > limit {
                span.mark("timed_out");
                span.finish();
                return Err(ServeError::Timeout { waited });
            }
        }
        span.finish();
        let label = model_label(name, pipeline, source);
        if let Some(sig) = plan.signature.as_ref() {
            self.registry
                .gauge(
                    "tssa_plan_polymorphic_dims",
                    "Input dims the shape certifier proved batch-polymorphic, by plan",
                    &[("plan", &label)],
                )
                .set(sig.polymorphic_dims() as f64);
        }
        Ok(ModelHandle {
            plan,
            spec,
            label,
            degraded,
            class: Some(Arc::clone(entry)),
        })
    }

    /// Queue an asynchronous re-save of a class entry (refreshed census)
    /// when a persistent store is configured.
    fn persist_class(&self, entry: &ClassEntry) {
        if let Some(store) = self.plan_store.as_deref() {
            store.save_async_with(
                entry.content_hash(),
                entry.roster_fp(),
                Arc::clone(entry.plan()),
                ClassMeta {
                    class_hash: entry.key().class_hash(),
                    coarse_hash: entry.key().coarse_hash(),
                    census: entry.census(),
                },
            );
        }
    }

    /// Compile a dedicated plan for a hot concrete bucket of `entry` and
    /// install it, keeping the generic class plan as fallback for every
    /// other shape. Compile failures leave the bucket on the generic plan.
    fn specialize_bucket(&self, entry: &Arc<ClassEntry>, bucket: &str, inputs: &[RtValue]) {
        let pipeline = entry.key().pipeline;
        let key = PlanKey::new(entry.source(), pipeline, inputs);
        entry.note_origin(key.clone());
        let mut span = self.tracer.root("request:specialize", "serve");
        let scope = span.scope();
        let compiled = self.cache.get_or_compile(&key, || {
            let graph = tssa_frontend::compile(entry.source())?;
            let mut plan = pipeline.compile_traced(&graph, &scope);
            let ranks: Vec<Option<usize>> = inputs
                .iter()
                .map(|v| match v {
                    RtValue::Tensor(t) => Some(t.rank()),
                    _ => None,
                })
                .collect();
            plan.signature = Some(tssa_lint::certify_shapes(&plan.graph, &ranks));
            Ok(plan)
        });
        if span.enabled() {
            span.counter("installed", i64::from(compiled.is_ok()));
        }
        span.finish();
        if let Ok(plan) = compiled {
            if entry.install_specialization(bucket, plan, self.max_specializations) {
                self.cache.note_specialization();
            }
        }
    }

    /// Submit a request with the service's default deadline.
    ///
    /// # Errors
    ///
    /// See [`Service::submit_with`].
    pub fn submit(&self, model: &ModelHandle, inputs: Vec<RtValue>) -> Result<Ticket, ServeError> {
        self.submit_with(model, inputs, self.default_deadline)
    }

    /// Submit a request that must start executing within `deadline`.
    ///
    /// Admission is non-blocking: when the queue is full the request is shed
    /// *now* with [`ServeError::QueueFull`] rather than waiting — the
    /// backpressure contract that keeps overload latency bounded.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for malformed inputs,
    /// [`ServeError::QueueFull`] under overload, [`ServeError::ShuttingDown`]
    /// after shutdown began.
    pub fn submit_with(
        &self,
        model: &ModelHandle,
        inputs: Vec<RtValue>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        let rows = model.spec.rows(&inputs)?;
        self.metrics.submitted.fetch_add(1, Relaxed);
        let Some(tx) = self.admit_tx.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        // Injected admission pressure: shed as if the queue were full.
        if self.faults.fire(FaultKind::QueueFullBurst).is_some() {
            self.metrics.faults_injected.fetch_add(1, Relaxed);
            self.metrics.shed_queue_full.fetch_add(1, Relaxed);
            if self.tracer.enabled() {
                let mut span = self.tracer.root("request", "serve");
                span.mark("fault:queue_full_burst");
                span.mark("shed_queue_full");
            }
            return Err(ServeError::QueueFull {
                depth: self.queue_depth,
            });
        }
        let now = Instant::now();
        // Checked arithmetic: an absurdly large deadline degrades to an
        // unbounded wait instead of panicking at admission.
        let timeout_at = deadline.and_then(|d| {
            now.checked_add(d)
                .and_then(|at| at.checked_add(self.timeout_grace))
        });
        // Shape-class bookkeeping: bump the bucket census, export the
        // per-bucket hit counter, re-persist the class when a never-seen
        // bucket appears, and re-specialize a bucket that crossed the
        // configured heat threshold (the generic plan stays as fallback —
        // and keeps serving every other shape in the class).
        let mut plan = Arc::clone(&model.plan);
        if let Some(entry) = model.class.as_ref() {
            let bucket = bucket_label(&inputs);
            let (hits, is_new) = entry.touch_bucket(&bucket, 1);
            self.registry
                .counter(
                    "tssa_plan_class_hits_total",
                    "Requests served by a shape-class plan, by concrete shape bucket",
                    &[("plan", &model.label), ("bucket", &bucket)],
                )
                .inc();
            if is_new {
                self.persist_class(entry);
            }
            if let Some(threshold) = self.specialize_after {
                if hits >= threshold && entry.specialized_for(&bucket).is_none() {
                    self.specialize_bucket(entry, &bucket, &inputs);
                }
            }
            if let Some(dedicated) = entry.specialized_for(&bucket) {
                plan = dedicated;
            }
        }
        let (ticket, completer) = Completer::new(Arc::clone(&self.metrics), now, timeout_at);
        let (span, queue_span) = if self.tracer.enabled() {
            let mut span = self.tracer.root("request", "serve");
            span.counter("rows", rows as i64);
            let queue = span.child("queue", "serve");
            (Some(span), Some(queue))
        } else {
            (None, None)
        };
        let request = Request {
            plan,
            spec: Arc::clone(&model.spec),
            plan_label: Arc::clone(&model.label),
            inputs,
            rows,
            submitted: now,
            deadline: deadline.and_then(|d| now.checked_add(d)),
            completer,
            span,
            queue_span,
            degraded_plan: model.degraded.clone(),
            degrade: false,
        };
        match tx.try_send(request) {
            Ok(()) => Ok(ticket),
            Err(TrySendError::Full(mut request)) => {
                self.metrics.shed_queue_full.fetch_add(1, Relaxed);
                if let Some(s) = request.span.as_mut() {
                    s.mark("shed_queue_full");
                }
                request.completer.abandon();
                Err(ServeError::QueueFull {
                    depth: self.queue_depth,
                })
            }
            Err(TrySendError::Disconnected(request)) => {
                request.completer.abandon();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submit and wait, retrying transient failures (queue sheds,
    /// cancellations from worker churn) per `policy` with exponential
    /// backoff. Typed failures — deadline, timeout, execution errors —
    /// surface immediately.
    ///
    /// # Errors
    ///
    /// The final attempt's error when retries are exhausted, or the first
    /// non-transient error.
    pub fn submit_retry(
        &self,
        model: &ModelHandle,
        inputs: Vec<RtValue>,
        policy: &RetryPolicy,
    ) -> Result<Response, ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        let mut span = if self.tracer.enabled() {
            Some(self.tracer.root("request:retry", "serve"))
        } else {
            None
        };
        let mut attempt: u32 = 0;
        let result = loop {
            let outcome = match self.submit(model, inputs.clone()) {
                Ok(ticket) => ticket.wait(),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(response) => break Ok(response),
                Err(e) if e.is_transient() && attempt < policy.max_retries => {
                    attempt += 1;
                    self.metrics.retries.fetch_add(1, Relaxed);
                    if let Some(s) = span.as_mut() {
                        s.mark("retry");
                    }
                    let backoff = policy.backoff(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
                Err(e) => break Err(e),
            }
        };
        if let Some(mut s) = span.take() {
            s.counter("attempts", i64::from(attempt) + 1);
            s.counter("succeeded", i64::from(result.is_ok()));
            s.finish();
        }
        result
    }

    /// Ask the supervisor to add `n` worker slots. Asynchronous: the pool
    /// grows as the supervisor processes the events; observe the effect
    /// through [`Service::worker_count`] or the `tssa_pool_workers` gauge.
    pub fn grow(&self, n: usize) {
        for _ in 0..n {
            let _ = self.events_tx.send(WorkerEvent::Grow);
        }
    }

    /// Ask the supervisor to retire `n` workers (highest slots first),
    /// never going below one active worker. Drain-on-shrink: a retiring
    /// worker finishes its in-flight batch first, queued batches migrate to
    /// the surviving workers over the shared channel, and the retired
    /// slot's statistics remain in the final [`PoolReport`].
    pub fn shrink(&self, n: usize) {
        for _ in 0..n {
            let _ = self.events_tx.send(WorkerEvent::Shrink);
        }
    }

    /// Active (non-retired) workers right now.
    pub fn worker_count(&self) -> usize {
        active_workers(&self.pool)
    }

    /// Whether the dispatcher is currently in degraded mode (batching shed,
    /// `Degraded` plans preferred). Readiness probes report not-ready while
    /// this holds; always `false` when degradation is not configured.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The shared plan cache (exposed for cache-centric tests and tools).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let disk = self
            .plan_store
            .as_ref()
            .map(|s| s.stats())
            .unwrap_or_default();
        self.metrics.snapshot_with_disk(self.cache.stats(), disk)
    }

    /// The persistent plan store backing warm restarts, when configured.
    pub fn plan_store(&self) -> Option<&Arc<PlanStore>> {
        self.plan_store.as_ref()
    }

    /// The registry this service records first-class metrics into
    /// (queue-wait and per-plan batch-occupancy histograms).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// One consolidated Prometheus exposition: the current
    /// [`MetricsSnapshot`] is bridged into the service's registry
    /// ([`MetricsSnapshot::register_into`]) and the whole registry —
    /// snapshot counters, queue-wait and per-plan occupancy histograms, and
    /// anything else sharing the registry (e.g. `PassManager` pass timings)
    /// — renders as one document.
    pub fn prometheus(&self) -> String {
        self.metrics().register_into(&self.registry);
        if let Some(profiler) = &self.profiler {
            profiler.snapshot().register_into(&self.registry);
        }
        self.registry.prometheus_text()
    }

    /// The op-level execution profiler, when one was configured
    /// ([`ServeConfig::with_profiler`]). `GET /debug/profile` and the
    /// hotness tooling snapshot through this.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Stop admitting, drain every queued request to a terminal state, join
    /// all threads, and report per-worker statistics.
    pub fn shutdown(mut self) -> PoolReport {
        self.join_pool();
        let slots: Vec<Arc<WorkerShared>> = self.pool.lock().clone();
        let per_worker: Vec<ExecStats> = slots.iter().map(|shared| *shared.stats.lock()).collect();
        let mut total = ExecStats::default();
        for s in &per_worker {
            total.merge(s);
        }
        PoolReport {
            per_worker,
            total,
            metrics: self.metrics(),
        }
    }

    fn join_pool(&mut self) {
        // Ordered, lossless shutdown: dropping the admission sender
        // disconnects the dispatcher, which flushes its bins and drops the
        // batch sender; the supervisor is then told to stop, drops its own
        // channel handles, and joins the (drained) workers. Any batch left
        // in a crashed worker's slot terminates here.
        drop(self.admit_tx.take());
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        if let Some(s) = self.supervisor.take() {
            let _ = self.events_tx.send(WorkerEvent::Shutdown);
            let _ = s.join();
        }
        let slots: Vec<Arc<WorkerShared>> = self.pool.lock().clone();
        for shared in &slots {
            if let Some(batch) = shared.in_flight.lock().take() {
                for request in batch.requests {
                    request.finish_with(Err(ServeError::Canceled));
                }
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.join_pool();
    }
}

/// Everything the dispatcher thread owns besides its channel ends.
struct DispatcherCtx {
    max_batch: usize,
    max_wait: Duration,
    metrics: Arc<Metrics>,
    degrade: Option<DegradeController>,
    /// Published degrade state, re-stored on every controller evaluation so
    /// readiness probes see mode changes promptly.
    degraded: Arc<AtomicBool>,
    /// Long-run queue-wait histogram; every dispatched request records
    /// here, and an adaptive [`DegradeController`] reads its median back.
    queue_wait: HistogramMetric,
    /// Registry the per-plan batch-occupancy histograms register into.
    registry: MetricsRegistry,
}

fn dispatch_loop(rx: &Receiver<Request>, tx: &Sender<Batch>, ctx: DispatcherCtx) {
    use std::sync::atomic::Ordering::Relaxed;
    let DispatcherCtx {
        max_batch,
        max_wait,
        metrics,
        mut degrade,
        degraded,
        queue_wait,
        registry,
    } = ctx;
    struct Bin {
        requests: Vec<Request>,
        opened: Instant,
    }
    let mut bins: HashMap<usize, Bin> = HashMap::new();
    // Occupancy handle per plan label, cached so steady-state flushes skip
    // the registry lock (RefCell: the flush closure is only ever called
    // from this thread, never reentrantly).
    let occupancy: std::cell::RefCell<HashMap<Arc<str>, HistogramMetric>> =
        std::cell::RefCell::new(HashMap::new());
    let flush = |requests: Vec<Request>| {
        if requests.is_empty() {
            return;
        }
        metrics.record_batch(requests.len());
        let mut handles = occupancy.borrow_mut();
        let hist = match handles.get(&requests[0].plan_label) {
            Some(h) => h,
            None => {
                let label = Arc::clone(&requests[0].plan_label);
                let h = registry.histogram(
                    "tssa_batch_occupancy",
                    "Requests coalesced per dispatched batch, by plan",
                    &[("plan", &label)],
                );
                handles.entry(label).or_insert(h)
            }
        };
        hist.observe(requests.len() as u64);
        drop(handles);
        // A send error means every worker is gone; dropping the batch here
        // completes its tickets with Canceled via the completion guards.
        let _ = tx.send(Batch {
            requests,
            requeued: false,
        });
    };
    loop {
        let now = Instant::now();
        let timeout = bins
            .values()
            .map(|b| (b.opened + max_wait).saturating_duration_since(now))
            .min()
            .unwrap_or(max_wait);
        match rx.recv_timeout(timeout) {
            Ok(request) => {
                let now = Instant::now();
                if request.expired(now) {
                    request.expire();
                    continue;
                }
                let wait = now.saturating_duration_since(request.submitted);
                // Traced requests pin the observation as the histogram's
                // exemplar: the scrape links back to the request's trace.
                let trace_id = request.span.as_ref().map_or(0, tssa_obs::Span::root_id);
                queue_wait.observe_with_exemplar(
                    wait.as_micros().min(u128::from(u64::MAX)) as u64,
                    trace_id,
                );
                // Degradation check: track the admission-to-dispatch wait
                // and, when the sliding p99 blows the budget, shed batching
                // and route through the degraded plan immediately.
                if let Some(ctl) = degrade.as_mut() {
                    ctl.observe(wait);
                    let on = ctl.degraded(now);
                    degraded.store(on, Relaxed);
                    if on {
                        let mut request = request;
                        request.degrade = true;
                        metrics.degraded_requests.fetch_add(1, Relaxed);
                        if let Some(s) = request.span.as_mut() {
                            s.mark("degraded");
                        }
                        flush(vec![request]);
                        continue;
                    }
                }
                if !request.spec.batchable() || max_batch == 1 {
                    flush(vec![request]);
                    continue;
                }
                let key = Arc::as_ptr(&request.plan) as usize;
                if let Some(bin) = bins.get_mut(&key) {
                    let head = &bin.requests[0];
                    let compatible = Arc::ptr_eq(&head.spec, &request.spec)
                        && head.spec.compatible(&head.inputs, &request.inputs);
                    if !compatible {
                        let old = std::mem::replace(
                            bin,
                            Bin {
                                requests: vec![request],
                                opened: now,
                            },
                        );
                        flush(old.requests);
                    } else {
                        bin.requests.push(request);
                    }
                } else {
                    bins.insert(
                        key,
                        Bin {
                            requests: vec![request],
                            opened: now,
                        },
                    );
                }
                if bins
                    .get(&key)
                    .is_some_and(|b| b.requests.len() >= max_batch)
                {
                    if let Some(bin) = bins.remove(&key) {
                        flush(bin.requests);
                    }
                }
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let due: Vec<usize> = bins
                    .iter()
                    .filter(|(_, b)| now.saturating_duration_since(b.opened) >= max_wait)
                    .map(|(k, _)| *k)
                    .collect();
                for k in due {
                    if let Some(bin) = bins.remove(&k) {
                        flush(bin.requests);
                    }
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => {
                for (_, bin) in bins.drain() {
                    flush(bin.requests);
                }
                return;
            }
        }
    }
}

/// Spawn a worker thread on `ctx`'s slot. If a batch is already parked in
/// the slot (the re-queued batch from a crashed predecessor), it is
/// processed before any channel work.
fn spawn_worker(ctx: WorkerCtx) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut guard = CrashGuard {
            worker: ctx.id,
            events: ctx.events.clone(),
            armed: true,
        };
        if ctx.shared.in_flight.lock().is_some() {
            process_in_flight(&ctx);
        }
        loop {
            // Retire check between batches only — never mid-batch, so a
            // shrink drains accepted work instead of dropping it.
            if ctx.shared.stop.load(std::sync::atomic::Ordering::Relaxed) {
                break;
            }
            match ctx.rx.recv_timeout(STOP_POLL) {
                Ok(batch) => {
                    // Park the batch in the shared slot before touching it
                    // so a panic anywhere below leaves it recoverable by
                    // the supervisor.
                    *ctx.shared.in_flight.lock() = Some(batch);
                    process_in_flight(&ctx);
                }
                Err(channel::RecvTimeoutError::Timeout) => {}
                Err(channel::RecvTimeoutError::Disconnected) => break,
            }
        }
        guard.armed = false;
    })
}

/// Everything staged out of the in-flight slot for execution; requests
/// themselves stay parked in the slot until completion.
type Staged = (
    Arc<CompiledProgram>,
    Arc<BatchSpec>,
    Result<Vec<RtValue>, ServeError>,
    usize,
    Vec<Option<Span>>,
    Arc<str>,
);

fn process_in_flight(ctx: &WorkerCtx) {
    use std::sync::atomic::Ordering::Relaxed;
    let now = Instant::now();

    // Phase 1 — under the slot lock: expire stale requests and snapshot
    // everything execution needs (plan, stacked inputs, spans). The
    // requests stay in the slot so a crash during phase 2 can re-queue them.
    let mut expired: Vec<Request> = Vec::new();
    let staged: Option<Staged> = {
        let mut slot = ctx.shared.in_flight.lock();
        let Some(batch) = slot.as_mut() else {
            return;
        };
        let mut i = 0;
        while i < batch.requests.len() {
            if batch.requests[i].expired(now) {
                expired.push(batch.requests.remove(i));
            } else {
                i += 1;
            }
        }
        if batch.requests.is_empty() {
            *slot = None;
            None
        } else {
            // The queueing phase ends here: close each request's `queue`
            // span and open its `batch` child covering the shared execution.
            let coalesced = batch.requests.len();
            let requeued = batch.requeued;
            let batch_spans: Vec<Option<Span>> = batch
                .requests
                .iter_mut()
                .map(|request| {
                    if let Some(queue) = request.queue_span.take() {
                        queue.finish();
                    }
                    request.span.as_ref().map(|span| {
                        let mut batch_span = span.child("batch", "serve");
                        batch_span.counter("coalesced", coalesced as i64);
                        if requeued {
                            batch_span.mark("requeue_attempt");
                        }
                        batch_span
                    })
                })
                .collect();
            let head = &batch.requests[0];
            let plan = if head.degrade {
                head.degraded_plan
                    .clone()
                    .unwrap_or_else(|| Arc::clone(&head.plan))
            } else {
                Arc::clone(&head.plan)
            };
            let spec = Arc::clone(&head.spec);
            let plan_label = Arc::clone(&head.plan_label);
            let inputs: Result<Vec<RtValue>, ServeError> = if coalesced == 1 {
                Ok(batch.requests[0].inputs.clone())
            } else {
                let arg_lists: Vec<&[RtValue]> =
                    batch.requests.iter().map(|r| r.inputs.as_slice()).collect();
                spec.stack(&arg_lists)
            };
            Some((plan, spec, inputs, coalesced, batch_spans, plan_label))
        }
    };
    for request in expired {
        request.expire();
    }
    let Some((plan, spec, inputs, coalesced, mut batch_spans, plan_label)) = staged else {
        return;
    };
    let inputs = match inputs {
        Ok(inputs) => inputs,
        Err(e) => {
            if let Some(batch) = ctx.shared.in_flight.lock().take() {
                for request in batch.requests {
                    request.finish_with(Err(e.clone()));
                }
            }
            return;
        }
    };

    // Phase 2 — panic-prone execution, with no lock held. Injected faults
    // land here: a slow execution delays the batch; a worker panic unwinds
    // this frame (recording the batch spans) and trips the crash guard.
    if let Some(FaultAction::Stall(pause)) = ctx.faults.fire(FaultKind::SlowExec) {
        ctx.metrics.faults_injected.fetch_add(1, Relaxed);
        for span in batch_spans.iter_mut().flatten() {
            span.mark("fault:slow_exec");
        }
        std::thread::sleep(pause);
    }
    if let Some(FaultAction::Panic) = ctx.faults.fire(FaultKind::WorkerPanic) {
        ctx.metrics.faults_injected.fetch_add(1, Relaxed);
        for span in batch_spans.iter_mut().flatten() {
            span.mark("fault:worker_panic");
        }
        std::panic::panic_any(INJECTED_PANIC);
    }

    // The head request's batch span hosts the execution trace (`exec` with a
    // `batch[0]` child); followers' spans still delimit the shared run.
    let exec_scope = batch_spans
        .first()
        .and_then(Option::as_ref)
        .map_or_else(tssa_obs::TraceScope::disabled, Span::scope);
    let mut scratch = ExecStats::default();
    let result = {
        let mut session = plan
            .session()
            .on_device(ctx.device.clone())
            .cap_parallel_threads(ctx.thread_cap)
            .traced(&exec_scope);
        // Per-op profiling, when this batch drew a keep from the sampler:
        // one sample per executed op into this worker's private sink.
        if let Some(profile) = ctx.profile.as_ref().filter(|p| p.profiler.should_profile()) {
            session = session.observed(Arc::new(ProfileRecorder::new(
                Arc::clone(&plan_label),
                Arc::clone(&profile.sink),
            )));
        }
        session.run_collect(&inputs, &mut scratch)
        // The session drops here, recording the `exec` span before the
        // batch spans below close over it.
    };
    for batch_span in batch_spans.drain(..).flatten() {
        batch_span.finish();
    }
    ctx.shared.stats.lock().merge(&scratch);

    // Phase 3 — completion: lift the batch out of the slot (execution is
    // past the crash window) and deliver each terminal result.
    let Some(batch) = ctx.shared.in_flight.lock().take() else {
        return;
    };
    let mut live = batch.requests;
    match result {
        Ok((outputs, stats)) => {
            if coalesced == 1 {
                if let Some(request) = live.pop() {
                    request.finish_with(Ok(Response {
                        outputs,
                        coalesced: 1,
                        stats,
                    }));
                }
                return;
            }
            let rows: Vec<usize> = live.iter().map(|r| r.rows).collect();
            match spec.split(&outputs, &rows) {
                Ok(per_request) => {
                    for (request, outs) in live.into_iter().zip(per_request) {
                        request.finish_with(Ok(Response {
                            outputs: outs,
                            coalesced,
                            stats,
                        }));
                    }
                }
                Err(e) => {
                    for request in live {
                        request.finish_with(Err(e.clone()));
                    }
                }
            }
        }
        Err(e) => {
            for request in live {
                request.finish_with(Err(ServeError::Exec(e.clone())));
            }
        }
    }
}

/// State owned by the supervisor thread: worker handles for respawning, the
/// shared slot vector (appended on grow), and the channel ends needed to
/// rebuild a crashed worker's context.
struct SupervisorCtx {
    events_rx: Receiver<WorkerEvent>,
    batch_rx: Receiver<Batch>,
    device: DeviceProfile,
    thread_cap: usize,
    metrics: Arc<Metrics>,
    faults: Faults,
    events_tx: Sender<WorkerEvent>,
    /// Slot vector shared with the service (`Service::pool`). Indexes here
    /// match `handles` below; retired slots keep their entry.
    pool: Arc<Mutex<Vec<Arc<WorkerShared>>>>,
    handles: Vec<JoinHandle<()>>,
    pool_gauge: Gauge,
    /// Shared execution profiler; respawned and grown workers mint fresh
    /// sinks from it.
    profiler: Option<Profiler>,
}

fn supervisor_loop(mut ctx: SupervisorCtx) {
    use std::sync::atomic::Ordering::Relaxed;
    // Runs until a Shutdown event or the last event sender drops.
    loop {
        match ctx.events_rx.recv() {
            Ok(WorkerEvent::Crashed { worker }) => {
                let shared = Arc::clone(&ctx.pool.lock()[worker]);
                // Recover the batch the crashed worker left in its slot:
                // re-queue it once; on a second crash fail its requests.
                // (Take in its own statement — an `if let` scrutinee would
                // hold the slot lock across the re-park below.)
                let recovered = shared.in_flight.lock().take();
                if let Some(mut batch) = recovered {
                    if batch.requeued {
                        for request in batch.requests {
                            request.finish_with(Err(ServeError::Canceled));
                        }
                    } else {
                        batch.requeued = true;
                        ctx.metrics.requeues.fetch_add(1, Relaxed);
                        for request in batch.requests.iter_mut() {
                            if let Some(s) = request.span.as_mut() {
                                s.mark("requeued");
                            }
                        }
                        // Hand the batch straight to the replacement
                        // worker's slot rather than back through the batch
                        // channel: the dispatcher owns the only batch
                        // sender, and keeping it that way preserves the
                        // ordered drop-to-drain shutdown.
                        *shared.in_flight.lock() = Some(batch);
                    }
                }
                // Respawn a replacement on the same slot; it first drains
                // any batch parked in the slot, then resumes channel work
                // (or exits immediately if the slot was retired meanwhile).
                let new_ctx = WorkerCtx {
                    id: worker,
                    rx: ctx.batch_rx.clone(),
                    shared: Arc::clone(&shared),
                    device: ctx.device.clone(),
                    thread_cap: ctx.thread_cap,
                    metrics: Arc::clone(&ctx.metrics),
                    faults: ctx.faults.clone(),
                    events: ctx.events_tx.clone(),
                    profile: WorkerProfile::for_worker(ctx.profiler.as_ref()),
                };
                let replacement = spawn_worker(new_ctx);
                let crashed = std::mem::replace(&mut ctx.handles[worker], replacement);
                let _ = crashed.join();
                ctx.metrics.worker_respawns.fetch_add(1, Relaxed);
            }
            Ok(WorkerEvent::Grow) => {
                let shared = Arc::new(WorkerShared::new());
                let id = {
                    let mut pool = ctx.pool.lock();
                    pool.push(Arc::clone(&shared));
                    pool.len() - 1
                };
                ctx.handles.push(spawn_worker(WorkerCtx {
                    id,
                    rx: ctx.batch_rx.clone(),
                    shared,
                    device: ctx.device.clone(),
                    thread_cap: ctx.thread_cap,
                    metrics: Arc::clone(&ctx.metrics),
                    faults: ctx.faults.clone(),
                    events: ctx.events_tx.clone(),
                    profile: WorkerProfile::for_worker(ctx.profiler.as_ref()),
                }));
                ctx.pool_gauge.set(active_workers(&ctx.pool) as f64);
            }
            Ok(WorkerEvent::Shrink) => {
                {
                    let pool = ctx.pool.lock();
                    // Retire the highest-index active worker — but never
                    // the last one: a serving pool must keep serving.
                    let active: Vec<usize> = pool
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| !s.stop.load(Relaxed))
                        .map(|(i, _)| i)
                        .collect();
                    if active.len() > 1 {
                        if let Some(&victim) = active.last() {
                            pool[victim].stop.store(true, Relaxed);
                        }
                    }
                }
                ctx.pool_gauge.set(active_workers(&ctx.pool) as f64);
            }
            Ok(WorkerEvent::Shutdown) | Err(_) => break,
        }
    }
    // Release our receiver handle and reap the workers; by now the
    // dispatcher has dropped the only batch sender, so workers drain the
    // queue and exit cleanly.
    drop(ctx.batch_rx);
    for handle in ctx.handles {
        let _ = handle.join();
    }
}
