//! Shape classes: one cached plan per `ShapeSignature` equivalence class.
//!
//! The concrete-shape [`PlanKey`](crate::PlanKey) specializes a plan per
//! exact input signature, so every new batch size recompiles even though the
//! shape certifier (PR 8) proves the plan generic over the batch dim. This
//! module introduces the class-level identity:
//!
//! * [`ArgKey`] — one argument's skeleton: polymorphic dims erased to `None`,
//!   specialized dims pinned to their constant;
//! * [`PlanClassKey`] — *(source, pipeline, skeleton)*: the identity of a
//!   whole shape class. Two concrete signatures map to the same key iff they
//!   agree on every pinned dim (and rank/dtype/arity), which by construction
//!   of the skeleton means the same compiled plan serves both;
//! * [`ClassSignature`] — a key plus the certifying [`ShapeSignature`];
//!   [`ClassSignature::admits`] is the gate a lookup passes before reusing
//!   the class plan (pinned dims equal + the signature's constraints hold);
//! * [`ClassEntry`] — the cached class: the generic plan, its batch spec,
//!   the degraded twin, a per-bucket hit census, and up to K hot-bucket
//!   specializations with the generic plan as fallback.
//!
//! Classes are only formed for signatures with zero data-dependent dims:
//! those are exactly the plans whose output shapes are affine in the input
//! dims, so any admitted concrete shape executes identically to a fresh
//! compile at that shape (certified end-to-end by the cross-shape
//! differential suite).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use tssa_backend::RtValue;
use tssa_ir::{DimClass, ShapeSignature};
use tssa_pipelines::CompiledProgram;
use tssa_tensor::DType;

use crate::batch::BatchSpec;
use crate::cache::{source_hash, ArgSig, PipelineKind, PlanKey};

/// One argument's shape skeleton within a [`PlanClassKey`]: `None` dims are
/// polymorphic (any extent admitted), `Some(n)` dims are pinned.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArgKey {
    /// A tensor with per-dim pins.
    Tensor {
        /// One entry per dimension: `None` = polymorphic, `Some(n)` = pinned.
        dims: Vec<Option<usize>>,
        /// Element type (always part of the class identity).
        dtype: DType,
    },
    /// A host integer (value-erased, like [`ArgSig::Int`]).
    Int,
    /// A host float.
    Float,
    /// A host boolean.
    Bool,
    /// A host list of skeletons.
    List(Vec<ArgKey>),
}

impl ArgKey {
    /// Fully pinned skeleton of a concrete signature (every dim `Some`).
    fn pinned(sig: &ArgSig) -> ArgKey {
        match sig {
            ArgSig::Tensor { shape, dtype } => ArgKey::Tensor {
                dims: shape.iter().map(|&n| Some(n)).collect(),
                dtype: *dtype,
            },
            ArgSig::Int => ArgKey::Int,
            ArgSig::Float => ArgKey::Float,
            ArgSig::Bool => ArgKey::Bool,
            ArgSig::List(items) => ArgKey::List(items.iter().map(ArgKey::pinned).collect()),
        }
    }

    /// Fully erased skeleton (every dim `None`): rank + dtype only.
    fn erased(sig: &ArgSig) -> ArgKey {
        match sig {
            ArgSig::Tensor { shape, dtype } => ArgKey::Tensor {
                dims: vec![None; shape.len()],
                dtype: *dtype,
            },
            ArgSig::Int => ArgKey::Int,
            ArgSig::Float => ArgKey::Float,
            ArgSig::Bool => ArgKey::Bool,
            ArgSig::List(items) => ArgKey::List(items.iter().map(ArgKey::erased).collect()),
        }
    }

    /// Erase every pin (used to derive the coarse pre-compile hash from a
    /// full skeleton).
    fn erase(&self) -> ArgKey {
        match self {
            ArgKey::Tensor { dims, dtype } => ArgKey::Tensor {
                dims: vec![None; dims.len()],
                dtype: *dtype,
            },
            ArgKey::List(items) => ArgKey::List(items.iter().map(ArgKey::erase).collect()),
            other => other.clone(),
        }
    }

    /// Does a concrete argument match this skeleton (kind, dtype, rank and
    /// every pinned dim)?
    fn matches(&self, sig: &ArgSig) -> bool {
        match (self, sig) {
            (ArgKey::Tensor { dims, dtype }, ArgSig::Tensor { shape, dtype: dt }) => {
                dtype == dt
                    && dims.len() == shape.len()
                    && dims
                        .iter()
                        .zip(shape)
                        .all(|(pin, &n)| pin.is_none() || *pin == Some(n))
            }
            (ArgKey::Int, ArgSig::Int)
            | (ArgKey::Float, ArgSig::Float)
            | (ArgKey::Bool, ArgSig::Bool) => true,
            (ArgKey::List(ks), ArgSig::List(items)) => {
                ks.len() == items.len() && ks.iter().zip(items).all(|(k, a)| k.matches(a))
            }
            _ => false,
        }
    }
}

/// Identity of a shape class: which program, compiled how, with which dims
/// pinned. Polymorphic dims are erased, so every concrete signature the
/// class admits derives the *same* key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanClassKey {
    /// FNV-1a hash of the DSL source.
    pub source_hash: u64,
    /// Pipeline used to compile.
    pub pipeline: PipelineKind,
    /// Per-argument skeletons.
    pub skeleton: Vec<ArgKey>,
}

impl PlanClassKey {
    /// Content hash naming this *class* on disk and in the store header.
    /// Mirrors [`PlanKey::content_hash`]: FNV-1a over (source hash, pipeline
    /// name, skeleton, execution profile).
    pub fn class_hash(&self) -> u64 {
        hash_identity(self.source_hash, self.pipeline, &self.skeleton)
    }

    /// The coarse (pre-compile) hash of this class: every pin erased, so it
    /// can be computed from concrete inputs *before* any plan exists and
    /// used to index candidate classes.
    pub fn coarse_hash(&self) -> u64 {
        let erased: Vec<ArgKey> = self.skeleton.iter().map(ArgKey::erase).collect();
        hash_identity(self.source_hash, self.pipeline, &erased)
    }

    /// Human-readable skeleton in [`bucket_label_of`]'s grammar, with `*`
    /// marking erased (polymorphic) dims — e.g. `*x512x4,i` for a class
    /// pinning everything but the batch dim of its first argument.
    pub fn render(&self) -> String {
        fn one(key: &ArgKey) -> String {
            match key {
                ArgKey::Tensor { dims, .. } => dims
                    .iter()
                    .map(|d| d.map_or_else(|| "*".into(), |n| n.to_string()))
                    .collect::<Vec<_>>()
                    .join("x"),
                ArgKey::Int => "i".into(),
                ArgKey::Float => "f".into(),
                ArgKey::Bool => "b".into(),
                ArgKey::List(items) => {
                    format!("({})", items.iter().map(one).collect::<Vec<_>>().join(","))
                }
            }
        }
        self.skeleton.iter().map(one).collect::<Vec<_>>().join(",")
    }
}

/// The coarse class hash of a concrete request: rank + dtype skeleton with
/// every dim erased. Computable before compiling; equal to
/// [`PlanClassKey::coarse_hash`] for any class that could admit the request.
pub fn coarse_class_hash(source: &str, pipeline: PipelineKind, args: &[ArgSig]) -> u64 {
    let erased: Vec<ArgKey> = args.iter().map(ArgKey::erased).collect();
    hash_identity(source_hash(source), pipeline, &erased)
}

fn hash_identity(source_hash: u64, pipeline: PipelineKind, skeleton: &[ArgKey]) -> u64 {
    let mut bytes = Vec::with_capacity(128);
    bytes.extend_from_slice(&source_hash.to_le_bytes());
    bytes.extend_from_slice(pipeline.name().as_bytes());
    bytes.push(0xFE);
    // ArgKey's derived Debug output is deterministic and covers every
    // pin/dtype field — the same stable textual encoding PlanKey uses.
    bytes.extend_from_slice(format!("{skeleton:?}").as_bytes());
    bytes.push(0xFE);
    let cfg = pipeline.exec_profile();
    bytes.extend_from_slice(cfg.device.name.as_bytes());
    for v in [
        cfg.device.launch_overhead_ns,
        cfg.device.bytes_per_ns,
        cfg.device.flops_per_ns,
        cfg.host_dispatch_ns,
        cfg.host_scalar_ns,
        cfg.control_entry_ns,
        cfg.sync_ns,
    ] {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    tssa_store::fnv64(&bytes)
}

/// A class key together with the [`ShapeSignature`] that certifies it.
#[derive(Debug, Clone)]
pub struct ClassSignature {
    /// The class identity.
    pub key: PlanClassKey,
    /// The certifying signature (constraints gate admission).
    pub signature: ShapeSignature,
}

impl ClassSignature {
    /// Derive the class of a compiled plan from its certified signature and
    /// the example it was compiled against. Returns `None` when the plan is
    /// not class-eligible: any data-dependent dim (input or output), or a
    /// signature that fails to admit its own example (an inconsistency we
    /// refuse to generalize from).
    pub fn derive(
        source: &str,
        pipeline: PipelineKind,
        example: &[ArgSig],
        signature: &ShapeSignature,
    ) -> Option<ClassSignature> {
        if signature.data_dependent_output_dims() > 0 || signature.data_dependent_input_dims() > 0 {
            return None;
        }
        let skeleton = example
            .iter()
            .enumerate()
            .map(|(i, arg)| match arg {
                ArgSig::Tensor { shape, dtype } => {
                    match signature.inputs.get(i).and_then(|o| o.as_ref()) {
                        Some(classes) if classes.len() == shape.len() => ArgKey::Tensor {
                            dims: classes
                                .iter()
                                .zip(shape)
                                .map(|(c, &n)| match c {
                                    DimClass::Polymorphic => None,
                                    DimClass::Specialized(k) => Some(*k),
                                    // Unreachable behind the gate above; pin
                                    // conservatively if it ever isn't.
                                    DimClass::DataDependent => Some(n),
                                })
                                .collect(),
                            dtype: *dtype,
                        },
                        // Rank not certified: pin the whole shape.
                        _ => ArgKey::pinned(arg),
                    }
                }
                other => ArgKey::pinned(other),
            })
            .collect();
        // Drop constraints the deriving example itself violates. The
        // example demonstrably executes this plan, so a constraint it fails
        // is an artifact of the symbolic analysis over-approximating (e.g.
        // broadcasting rendered as dim equality), not a true precondition;
        // constraints the example satisfies stay enforced on admission.
        let example_shapes: Vec<Option<Vec<usize>>> = example
            .iter()
            .map(|a| match a {
                ArgSig::Tensor { shape, .. } => Some(shape.clone()),
                _ => None,
            })
            .collect();
        let mut signature = signature.clone();
        signature
            .constraints
            .retain(|c| ShapeSignature::constraint_admits(c, &example_shapes));
        let class = ClassSignature {
            key: PlanClassKey {
                source_hash: source_hash(source),
                pipeline,
                skeleton,
            },
            signature,
        };
        class.admits(example).then_some(class)
    }

    /// Does a concrete signature belong to this class? Arity, kind, dtype,
    /// rank and every pinned dim must match, and the certifying signature's
    /// constraints must hold on the concrete shapes.
    pub fn admits(&self, args: &[ArgSig]) -> bool {
        if args.len() != self.key.skeleton.len() {
            return false;
        }
        if !self
            .key
            .skeleton
            .iter()
            .zip(args)
            .all(|(k, a)| k.matches(a))
        {
            return false;
        }
        let shapes: Vec<Option<Vec<usize>>> = args
            .iter()
            .map(|a| match a {
                ArgSig::Tensor { shape, .. } => Some(shape.clone()),
                _ => None,
            })
            .collect();
        self.signature.constraints_admit(&shapes)
    }
}

/// The canonical bucket label of a concrete signature: per-argument dims
/// (`2x4`), `i`/`f`/`b` for host scalars, parenthesized lists; arguments
/// joined by `,`. Used as the census key and the `bucket` label on
/// `tssa_plan_class_hits_total`.
pub fn bucket_label_of(args: &[ArgSig]) -> String {
    fn one(sig: &ArgSig) -> String {
        match sig {
            ArgSig::Tensor { shape, .. } => shape
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("x"),
            ArgSig::Int => "i".into(),
            ArgSig::Float => "f".into(),
            ArgSig::Bool => "b".into(),
            ArgSig::List(items) => {
                format!("({})", items.iter().map(one).collect::<Vec<_>>().join(","))
            }
        }
    }
    args.iter().map(one).collect::<Vec<_>>().join(",")
}

/// The bucket label of concrete runtime inputs.
pub fn bucket_label(inputs: &[RtValue]) -> String {
    bucket_label_of(&crate::cache::signature_of(inputs))
}

/// Touches between sliding-window epoch advances: every `CENSUS_WINDOW`
/// bucket touches across a class, the window shifts (`prev ← recent`,
/// `recent ← 0`) and specializations of buckets with no hits in either
/// half are retired — traffic drift stops pinning dead plans.
const CENSUS_WINDOW: u64 = 256;

#[derive(Debug, Default)]
struct BucketState {
    /// All-time hits; persisted with the class and kept for reporting.
    hits: u64,
    /// Hits in the current window half.
    recent: u64,
    /// Hits in the previous window half.
    prev: u64,
    specialized: Option<Arc<CompiledProgram>>,
}

impl BucketState {
    /// Sliding-window heat: the last one-to-two windows of traffic. This —
    /// not the all-time count — drives specialization and eviction, so a
    /// bucket that was hot last week cannot hold a slot against today's
    /// traffic.
    fn windowed(&self) -> u64 {
        self.recent + self.prev
    }
}

/// The census under one lock: per-bucket states plus the window clock.
#[derive(Debug, Default)]
struct Census {
    buckets: BTreeMap<String, BucketState>,
    /// Touches since the last epoch advance.
    window_touches: u64,
    /// Epoch advances so far.
    epochs: u64,
}

impl Census {
    /// Shift the window: current half becomes previous, specializations of
    /// buckets that went fully cold (no hits in either half) are retired —
    /// the generic class plan keeps serving those shapes.
    fn advance_epoch(&mut self) {
        self.epochs += 1;
        self.window_touches = 0;
        for state in self.buckets.values_mut() {
            state.prev = state.recent;
            state.recent = 0;
            if state.windowed() == 0 {
                state.specialized = None;
            }
        }
    }
}

/// A resident shape class: the generic plan plus per-bucket heat and hot
/// specializations. Shared (via `Arc`) between the cache, every
/// [`ModelHandle`](crate::ModelHandle) that loaded into the class, and the
/// dispatcher.
#[derive(Debug)]
pub struct ClassEntry {
    class: ClassSignature,
    source: String,
    plan: Arc<CompiledProgram>,
    spec: Arc<BatchSpec>,
    content_hash: u64,
    roster_fp: u64,
    degraded: Mutex<Option<Arc<CompiledProgram>>>,
    census: Mutex<Census>,
    origin_keys: Mutex<Vec<PlanKey>>,
}

impl ClassEntry {
    pub(crate) fn new(
        class: ClassSignature,
        source: &str,
        plan: Arc<CompiledProgram>,
        spec: Arc<BatchSpec>,
        content_hash: u64,
        roster_fp: u64,
    ) -> ClassEntry {
        ClassEntry {
            class,
            source: source.to_string(),
            plan,
            spec,
            content_hash,
            roster_fp,
            degraded: Mutex::new(None),
            census: Mutex::new(Census::default()),
            origin_keys: Mutex::new(Vec::new()),
        }
    }

    /// The class identity.
    pub fn key(&self) -> &PlanClassKey {
        &self.class.key
    }

    /// The certifying signature.
    pub fn signature(&self) -> &ShapeSignature {
        &self.class.signature
    }

    pub(crate) fn admits(&self, args: &[ArgSig]) -> bool {
        self.class.admits(args)
    }

    pub(crate) fn source(&self) -> &str {
        &self.source
    }

    pub(crate) fn plan(&self) -> &Arc<CompiledProgram> {
        &self.plan
    }

    pub(crate) fn spec(&self) -> &Arc<BatchSpec> {
        &self.spec
    }

    /// Content hash of the origin concrete plan (the on-disk file name).
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    pub(crate) fn roster_fp(&self) -> u64 {
        self.roster_fp
    }

    pub(crate) fn degraded(&self) -> Option<Arc<CompiledProgram>> {
        self.degraded.lock().clone()
    }

    pub(crate) fn set_degraded(&self, plan: &Arc<CompiledProgram>) {
        *self.degraded.lock() = Some(Arc::clone(plan));
    }

    /// Record a concrete [`PlanKey`] that resolved into this class, so a
    /// poison eviction of the class can also evict its concrete slots.
    pub(crate) fn note_origin(&self, key: PlanKey) {
        let mut keys = self.origin_keys.lock();
        if !keys.contains(&key) {
            keys.push(key);
        }
    }

    pub(crate) fn origin_keys(&self) -> Vec<PlanKey> {
        self.origin_keys.lock().clone()
    }

    /// The per-bucket *all-time* hit census, sorted by bucket label. This is
    /// what persists into plan files; the sliding window drives
    /// specialization decisions instead.
    pub fn census(&self) -> Vec<(String, u64)> {
        self.census
            .lock()
            .buckets
            .iter()
            .map(|(k, v)| (k.clone(), v.hits))
            .collect()
    }

    /// The per-bucket *sliding-window* census (hits in the last one-to-two
    /// windows), sorted by bucket label — the heat specialization and
    /// eviction actually act on.
    pub fn windowed_census(&self) -> Vec<(String, u64)> {
        self.census
            .lock()
            .buckets
            .iter()
            .map(|(k, v)| (k.clone(), v.windowed()))
            .collect()
    }

    /// Window epochs elapsed (one per [`CENSUS_WINDOW`] touches).
    pub fn census_epochs(&self) -> u64 {
        self.census.lock().epochs
    }

    /// Merge a persisted census (from a plan file) into the live one,
    /// keeping the larger count per bucket — warm restarts rebuild bucket
    /// heat from this. Seeded heat lands in the *previous* window half: it
    /// keeps a restored bucket warm for one window, then expires unless
    /// live traffic confirms it.
    pub(crate) fn seed_census(&self, census: &[(String, u64)]) {
        let mut guard = self.census.lock();
        for (label, hits) in census {
            let state = guard.buckets.entry(label.clone()).or_default();
            state.hits = state.hits.max(*hits);
            state.prev = state.prev.max(*hits);
        }
    }

    /// Bump a bucket by `inc` hits, advancing the sliding window every
    /// [`CENSUS_WINDOW`] touches. Returns `(windowed_hits_after,
    /// is_new_bucket)` — windowed, not all-time, so the caller's
    /// specialization threshold tracks current traffic.
    pub(crate) fn touch_bucket(&self, label: &str, inc: u64) -> (u64, bool) {
        let mut guard = self.census.lock();
        guard.window_touches += inc;
        if guard.window_touches >= CENSUS_WINDOW {
            guard.advance_epoch();
        }
        let is_new = !guard.buckets.contains_key(label);
        let state = guard.buckets.entry(label.to_string()).or_default();
        state.hits += inc;
        state.recent += inc;
        (state.windowed(), is_new)
    }

    /// The dedicated plan for a bucket, when one was specialized.
    pub(crate) fn specialized_for(&self, label: &str) -> Option<Arc<CompiledProgram>> {
        self.census
            .lock()
            .buckets
            .get(label)
            .and_then(|s| s.specialized.clone())
    }

    /// Buckets currently holding a dedicated plan, sorted by label.
    pub fn specialized_buckets(&self) -> Vec<String> {
        self.census
            .lock()
            .buckets
            .iter()
            .filter(|(_, s)| s.specialized.is_some())
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of buckets holding a dedicated plan.
    pub fn specialization_count(&self) -> usize {
        self.census
            .lock()
            .buckets
            .values()
            .filter(|s| s.specialized.is_some())
            .count()
    }

    /// Install a dedicated plan for `label`, evicting the existing
    /// specialization with the least *windowed* heat when the class already
    /// holds `max_k` — all-time heat is irrelevant once traffic drifts.
    /// Returns whether the plan was installed (false when the bucket
    /// already has one, or `max_k` is 0).
    pub(crate) fn install_specialization(
        &self,
        label: &str,
        plan: Arc<CompiledProgram>,
        max_k: usize,
    ) -> bool {
        if max_k == 0 {
            return false;
        }
        let guard = &mut *self.census.lock();
        let buckets = &mut guard.buckets;
        if buckets.get(label).is_some_and(|s| s.specialized.is_some()) {
            return false;
        }
        let resident = buckets.values().filter(|s| s.specialized.is_some()).count();
        if resident >= max_k {
            // Evict the specialized bucket coldest in the window (the
            // generic plan keeps serving it).
            let victim = buckets
                .iter()
                .filter(|(_, s)| s.specialized.is_some())
                .min_by_key(|(_, s)| s.windowed())
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                if let Some(state) = buckets.get_mut(&victim) {
                    state.specialized = None;
                }
            }
        }
        buckets.entry(label.to_string()).or_default().specialized = Some(plan);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(shape: &[usize]) -> ArgSig {
        ArgSig::Tensor {
            shape: shape.to_vec(),
            dtype: DType::F32,
        }
    }

    fn poly_sig(ranks: &[usize]) -> ShapeSignature {
        ShapeSignature {
            inputs: ranks
                .iter()
                .map(|&r| Some(vec![DimClass::Polymorphic; r]))
                .collect(),
            outputs: vec![],
            constraints: vec![],
        }
    }

    #[test]
    fn polymorphic_dims_erase_and_admit_any_extent() {
        let sig = poly_sig(&[2]);
        let class =
            ClassSignature::derive("src", PipelineKind::TensorSsa, &[tensor(&[2, 4])], &sig)
                .expect("eligible");
        assert_eq!(
            class.key.skeleton,
            vec![ArgKey::Tensor {
                dims: vec![None, None],
                dtype: DType::F32,
            }]
        );
        assert!(class.admits(&[tensor(&[7, 9])]));
        assert!(!class.admits(&[tensor(&[7])]), "rank mismatch");
        assert!(!class.admits(&[tensor(&[7, 9]), tensor(&[1])]), "arity");
        // Same key regardless of the deriving example.
        let other =
            ClassSignature::derive("src", PipelineKind::TensorSsa, &[tensor(&[9, 1])], &sig)
                .unwrap();
        assert_eq!(class.key, other.key);
        assert_eq!(class.key.class_hash(), other.key.class_hash());
    }

    #[test]
    fn specialized_dims_pin_and_split_classes() {
        let sig = ShapeSignature {
            inputs: vec![Some(vec![DimClass::Polymorphic, DimClass::Specialized(4)])],
            outputs: vec![],
            constraints: vec![],
        };
        let class =
            ClassSignature::derive("src", PipelineKind::TensorSsa, &[tensor(&[2, 4])], &sig)
                .expect("eligible");
        assert_eq!(class.key.render(), "*x4");
        assert!(class.admits(&[tensor(&[9, 4])]));
        assert!(!class.admits(&[tensor(&[9, 5])]), "pinned dim differs");
        // An example violating its own pin is refused.
        assert!(
            ClassSignature::derive("src", PipelineKind::TensorSsa, &[tensor(&[2, 5])], &sig)
                .is_none()
        );
        // A differently pinned signature is a different class.
        let sig8 = ShapeSignature {
            inputs: vec![Some(vec![DimClass::Polymorphic, DimClass::Specialized(8)])],
            outputs: vec![],
            constraints: vec![],
        };
        let class8 =
            ClassSignature::derive("src", PipelineKind::TensorSsa, &[tensor(&[2, 8])], &sig8)
                .unwrap();
        assert_ne!(class.key, class8.key);
        assert_ne!(class.key.class_hash(), class8.key.class_hash());
        // Both share the coarse (rank + dtype) hash.
        assert_eq!(class.key.coarse_hash(), class8.key.coarse_hash());
        assert_eq!(
            class.key.coarse_hash(),
            coarse_class_hash("src", PipelineKind::TensorSsa, &[tensor(&[3, 7])])
        );
    }

    #[test]
    fn data_dependence_disqualifies_a_class() {
        let tainted = ShapeSignature {
            inputs: vec![Some(vec![DimClass::DataDependent])],
            outputs: vec![],
            constraints: vec![],
        };
        assert!(
            ClassSignature::derive("src", PipelineKind::TensorSsa, &[tensor(&[2])], &tainted)
                .is_none()
        );
    }

    #[test]
    fn constraints_gate_admission() {
        let mut sig = poly_sig(&[2, 2]);
        sig.constraints = vec!["in0.d1 = in1.d0".into()];
        let class = ClassSignature::derive(
            "src",
            PipelineKind::TensorSsa,
            &[tensor(&[2, 3]), tensor(&[3, 5])],
            &sig,
        )
        .expect("eligible");
        assert!(class.admits(&[tensor(&[9, 6]), tensor(&[6, 5])]));
        assert!(!class.admits(&[tensor(&[9, 6]), tensor(&[7, 5])]));
    }

    fn entry() -> ClassEntry {
        let g = tssa_frontend::compile("def f(x: Tensor):\n    y = x + 1.0\n    return y\n")
            .expect("trivial source compiles");
        let plan = Arc::new(PipelineKind::Eager.compile(&g));
        let class = ClassSignature::derive(
            "src",
            PipelineKind::Eager,
            &[tensor(&[2, 4])],
            &poly_sig(&[2]),
        )
        .expect("eligible class");
        ClassEntry::new(class, "src", plan, Arc::new(BatchSpec::stacked(1, 1)), 1, 2)
    }

    #[test]
    fn traffic_drift_retires_window_cold_specializations() {
        let entry = entry();
        let plan = Arc::clone(entry.plan());
        entry.touch_bucket("2x4", 10);
        assert!(entry.install_specialization("2x4", Arc::clone(&plan), 4));

        // Traffic drifts entirely to another bucket. After one window the
        // old bucket is still warm (its heat sits in the previous half)...
        entry.touch_bucket("8x4", CENSUS_WINDOW);
        assert!(entry.specialized_for("2x4").is_some());
        // ...after a second full window it has no hits in either half, so
        // the epoch advance retires its specialization.
        entry.touch_bucket("8x4", CENSUS_WINDOW);
        assert!(entry.census_epochs() >= 2);
        assert!(entry.specialized_for("2x4").is_none());
        assert_eq!(entry.specialization_count(), 0);

        // The all-time census still remembers the history; only the
        // windowed census went cold.
        assert!(entry.census().iter().any(|(l, h)| l == "2x4" && *h == 10));
        assert!(entry
            .windowed_census()
            .iter()
            .any(|(l, h)| l == "2x4" && *h == 0));
    }

    #[test]
    fn eviction_picks_the_window_coldest_not_the_all_time_coldest() {
        let entry = entry();
        let plan = Arc::clone(entry.plan());
        // "2x4" accumulates a huge all-time count, then its traffic stops:
        // two epoch advances later its windowed heat is down to 1.
        entry.touch_bucket("2x4", CENSUS_WINDOW - 1);
        entry.touch_bucket("2x4", 1);
        entry.touch_bucket("9x9", CENSUS_WINDOW);
        // "3x4" is a newcomer: tiny all-time count, but all of it recent.
        entry.touch_bucket("3x4", 5);
        let census: BTreeMap<_, _> = entry.census().into_iter().collect();
        assert!(census["2x4"] > census["3x4"], "2x4 dominates all-time");

        assert!(entry.install_specialization("2x4", Arc::clone(&plan), 2));
        assert!(entry.install_specialization("3x4", Arc::clone(&plan), 2));
        // At capacity, the victim is the bucket coldest *in the window* —
        // the all-time champion "2x4", not the newcomer "3x4".
        assert!(entry.install_specialization("5x4", Arc::clone(&plan), 2));
        assert!(entry.specialized_for("2x4").is_none(), "evicted");
        assert!(entry.specialized_for("3x4").is_some());
        assert!(entry.specialized_for("5x4").is_some());
        assert_eq!(entry.specialization_count(), 2);
    }

    #[test]
    fn bucket_labels_are_canonical() {
        let args = vec![
            tensor(&[2, 4]),
            ArgSig::Int,
            ArgSig::List(vec![tensor(&[3])]),
        ];
        assert_eq!(bucket_label_of(&args), "2x4,i,(3)");
    }
}
