//! `tssa-serve`: a concurrent inference service over the TensorSSA
//! compilation pipelines.
//!
//! The compiler stack in this repository answers "how fast is one program,
//! compiled one way, run once?". This crate answers the production question
//! layered on top: many clients, many programs, one machine. It is built
//! from four cooperating parts:
//!
//! 1. **Plan cache** ([`PlanCache`]) — compiled programs keyed by
//!    *(source hash, pipeline, input signature)*, with LRU eviction and
//!    single-flight compilation so a thundering herd on a cold model
//!    compiles exactly once.
//! 2. **Dynamic batcher** (the dispatcher inside [`Service`]) — requests
//!    for the same plan are coalesced from a bounded queue into one batched
//!    execution, up to `max_batch` requests or `max_wait`, whichever comes
//!    first. The [`BatchSpec`] contract ([`ArgRole::Stacked`] /
//!    [`ArgRole::Shared`]) makes coalescing sound, and bit-for-bit exact
//!    for models elementwise over the batch dimension.
//! 3. **Worker pool** — N executor threads drain batches, each holding its
//!    own [`tssa_backend::ExecStats`] aggregate (reported by
//!    [`Service::shutdown`]), with the machine's cores divided among
//!    workers to avoid oversubscription.
//! 4. **Admission & metrics** — bounded-queue backpressure that sheds with
//!    typed [`ServeError`]s instead of blocking or dropping, plus a
//!    [`MetricsSnapshot`] with throughput, fixed-bucket latency quantiles,
//!    cache and batch-occupancy counters (exportable as Prometheus text via
//!    [`MetricsSnapshot::prometheus_text`]). The service also records
//!    first-class series — a queue-wait histogram and per-plan
//!    `tssa_batch_occupancy{plan=...}` histograms — into a
//!    [`MetricsRegistry`] ([`ServeConfig::with_registry`]), and
//!    [`Service::prometheus`] renders the registry plus the bridged
//!    snapshot as one consolidated exposition.
//! 5. **Fault tolerance** ([`fault`], plus the recovery paths in
//!    [`service`]) — a supervisor re-queues a crashed worker's in-flight
//!    batch exactly once and respawns the worker; deadline-carrying waiters
//!    time out with [`ServeError::Timeout`] instead of hanging;
//!    [`Service::submit_retry`] retries transient sheds with exponential
//!    backoff; and an overloaded dispatcher degrades to unbatched,
//!    unoptimized execution ([`ServeConfig::with_degrade_p99`], or with a
//!    threshold derived from the workload's own queue-wait distribution via
//!    [`ServeConfig::with_adaptive_degrade`]). All of it
//!    is exercised deterministically by seeded [`FaultPlan`] schedules
//!    ([`ServeConfig::with_faults`]) — zero-cost when disabled.
//!
//! Install a [`Tracer`] with [`ServeConfig::with_tracer`] and every request
//! leaves a span tree — `request` → `queue`/`batch` → `exec` → `batch[i]`,
//! and `request:load` → `compile:<pipeline>` → `pass:*` on the load path —
//! exportable as Chrome-trace JSON ([`tssa_obs::chrome_trace_json`]).
//!
//! # Examples
//!
//! ```
//! use tssa_serve::{ArgRole, BatchSpec, PipelineKind, ServeConfig, Service};
//! use tssa_backend::RtValue;
//! use tssa_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = Service::new(ServeConfig::default().with_workers(2));
//! let source = "def f(x: Tensor):\n    y = x.clone()\n    y[:, 0:1] = sigmoid(x[:, 0:1])\n    return y\n";
//! let example = [RtValue::Tensor(Tensor::ones(&[2, 4]))];
//! let model = service
//!     .loader(source)
//!     .pipeline(PipelineKind::TensorSsa)
//!     .example(&example)
//!     .batch(BatchSpec::stacked(1, 1))
//!     .load()?;
//! let ticket = service.submit(&model, example.to_vec())?;
//! let response = ticket.wait()?;
//! assert_eq!(response.outputs[0].as_tensor()?.shape(), &[2, 4]);
//! let report = service.shutdown();
//! assert_eq!(report.metrics.completed, 1);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod cache;
pub mod class;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod service;

pub use batch::{AdaptiveDegrade, ArgRole, BatchSpec, DegradeController};
pub use cache::{signature_of, source_hash, ArgSig, CacheStats, PipelineKind, PlanCache, PlanKey};
pub use class::{
    bucket_label, bucket_label_of, coarse_class_hash, ArgKey, ClassEntry, ClassSignature,
    PlanClassKey,
};
pub use error::ServeError;
pub use fault::{
    silence_injected_panics_for_tests, FaultAction, FaultKind, FaultPlan, Faults,
    INJECTED_COMPILE_PANIC, INJECTED_PANIC,
};
pub use metrics::{Histogram, Metrics, MetricsSnapshot};
pub use service::{
    ModelHandle, ModelLoader, PoolReport, Response, RetryPolicy, ServeConfig, Service, Ticket,
};
// Re-exported so warm-restart callers can open a store and read its stats
// without naming `tssa-store`.
pub use tssa_store::{PlanStore, StoreStats};
// Re-exported so callers can configure tracing and metrics without naming
// `tssa-obs`.
pub use tssa_obs::{
    MetricsRegistry, ProfileSnapshot, Profiler, RingSink, Sampler, SamplerStats, StreamSink,
    TraceSink, Tracer,
};

// The service moves plans, tensors and tickets across threads; these
// assertions pin the Send + Sync guarantees at compile time so a future
// `Rc`/`RefCell` creeping into the graph or tensor stack fails loudly here
// rather than racing at runtime.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<tssa_pipelines::CompiledProgram>();
    assert_send_sync::<tssa_ir::Graph>();
    assert_send_sync::<tssa_tensor::Tensor>();
    assert_send_sync::<tssa_backend::RtValue>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<ClassEntry>();
    assert_send_sync::<Service>();
    assert_send_sync::<Ticket>();
    assert_send_sync::<ModelHandle>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<Faults>();
    assert_send_sync::<FaultPlan>();
};
