//! The plan cache: compiled programs keyed by *(source, pipeline, input
//! signature)* with LRU eviction and single-flight compilation.
//!
//! Compilation is the expensive step of serving a model (the whole pipeline
//! of conversion, optimization passes and fusion runs again), so the cache
//! guarantees two properties:
//!
//! * **single-flight** — when M threads request the same uncached plan
//!   concurrently, exactly one runs the compiler; the others block on a
//!   condition variable and share the result (counted as *coalesced*);
//! * **bounded residency** — at most `capacity` ready plans are retained;
//!   inserting past that evicts the least-recently-used ready entry
//!   (in-flight compilations are never evicted).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use tssa_backend::RtValue;
use tssa_ir::Graph;
use tssa_obs::TraceScope;
use tssa_pipelines::{
    CompiledProgram, Degraded, DynamoInductor, Eager, Pipeline, TensorSsa, TorchScriptNnc,
    TorchScriptNvfuser,
};
use tssa_tensor::DType;

use crate::class::ClassEntry;
use crate::fault::{FaultKind, Faults};
use crate::ServeError;

/// Which compilation pipeline a plan was (or will be) built with.
///
/// A `Copy + Eq + Hash` mirror of the pipeline structs in `tssa-pipelines`,
/// so it can live inside a [`PlanKey`] and cross thread boundaries freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineKind {
    /// PyTorch eager baseline.
    Eager,
    /// TorchScript with the NNC fuser.
    TorchScriptNnc,
    /// TorchScript with nvFuser.
    TorchScriptNvfuser,
    /// TorchDynamo + TorchInductor.
    DynamoInductor,
    /// The paper's holistic TensorSSA pipeline.
    TensorSsa,
    /// The degradation fallback: no optimization passes, direct
    /// interpretation. Not part of the paper's comparison
    /// ([`PipelineKind::all`]); the service compiles it alongside a model's
    /// primary plan when latency-triggered degradation is enabled.
    Degraded,
}

impl PipelineKind {
    /// Display name matching [`Pipeline::name`].
    pub fn name(self) -> &'static str {
        match self {
            PipelineKind::Eager => Eager.name(),
            PipelineKind::TorchScriptNnc => TorchScriptNnc.name(),
            PipelineKind::TorchScriptNvfuser => TorchScriptNvfuser.name(),
            PipelineKind::DynamoInductor => DynamoInductor.name(),
            PipelineKind::TensorSsa => TensorSsa::default().name(),
            PipelineKind::Degraded => Degraded.name(),
        }
    }

    /// Compile `graph` with this pipeline.
    pub fn compile(self, graph: &Graph) -> CompiledProgram {
        self.compile_traced(graph, &TraceScope::disabled())
    }

    /// Compile `graph` with this pipeline, emitting the pipeline's
    /// `compile:<name>` span (with per-pass children) under `scope`.
    pub fn compile_traced(self, graph: &Graph, scope: &TraceScope) -> CompiledProgram {
        match self {
            PipelineKind::Eager => Eager.compile_traced(graph, scope),
            PipelineKind::TorchScriptNnc => TorchScriptNnc.compile_traced(graph, scope),
            PipelineKind::TorchScriptNvfuser => TorchScriptNvfuser.compile_traced(graph, scope),
            PipelineKind::DynamoInductor => DynamoInductor.compile_traced(graph, scope),
            PipelineKind::TensorSsa => TensorSsa::default().compile_traced(graph, scope),
            PipelineKind::Degraded => Degraded.compile_traced(graph, scope),
        }
    }

    /// The pass roster this pipeline would run, in order, without
    /// compiling anything — the identity the persistent plan store
    /// fingerprints for invalidation.
    pub fn roster(self) -> Vec<&'static str> {
        match self {
            PipelineKind::Eager => Eager.roster(),
            PipelineKind::TorchScriptNnc => TorchScriptNnc.roster(),
            PipelineKind::TorchScriptNvfuser => TorchScriptNvfuser.roster(),
            PipelineKind::DynamoInductor => DynamoInductor.roster(),
            PipelineKind::TensorSsa => TensorSsa::default().roster(),
            PipelineKind::Degraded => Degraded.roster(),
        }
    }

    /// FNV-1a fingerprint of [`PipelineKind::roster`]. A plan file whose
    /// header carries a different fingerprint was compiled by a different
    /// optimizer and is treated as stale.
    pub fn roster_fingerprint(self) -> u64 {
        tssa_store::roster_fingerprint(self.roster().iter().copied())
    }

    /// The [`ExecConfig`](tssa_backend::ExecConfig) this pipeline would
    /// stamp on a compiled plan (part of the on-disk content identity).
    pub fn exec_profile(self) -> tssa_backend::ExecConfig {
        match self {
            PipelineKind::Eager => Eager.plan().1,
            PipelineKind::TorchScriptNnc => TorchScriptNnc.plan().1,
            PipelineKind::TorchScriptNvfuser => TorchScriptNvfuser.plan().1,
            PipelineKind::DynamoInductor => DynamoInductor.plan().1,
            PipelineKind::TensorSsa => TensorSsa::default().plan().1,
            PipelineKind::Degraded => Degraded.plan().1,
        }
    }

    /// The paper's five pipelines, in the paper's order (excludes
    /// [`PipelineKind::Degraded`], which is a serving fallback, not an
    /// evaluated configuration).
    pub fn all() -> [PipelineKind; 5] {
        [
            PipelineKind::Eager,
            PipelineKind::TorchScriptNnc,
            PipelineKind::TorchScriptNvfuser,
            PipelineKind::DynamoInductor,
            PipelineKind::TensorSsa,
        ]
    }
}

/// Shape/dtype signature of one runtime argument.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArgSig {
    /// A tensor of this shape and dtype.
    Tensor {
        /// Full shape, including the batch dimension.
        shape: Vec<usize>,
        /// Element type.
        dtype: DType,
    },
    /// A host integer.
    Int,
    /// A host float.
    Float,
    /// A host boolean.
    Bool,
    /// A host list of signatures.
    List(Vec<ArgSig>),
}

impl ArgSig {
    /// Signature of one runtime value.
    pub fn of(value: &RtValue) -> ArgSig {
        match value {
            RtValue::Tensor(t) => ArgSig::Tensor {
                shape: t.shape().to_vec(),
                dtype: t.dtype(),
            },
            RtValue::Int(_) => ArgSig::Int,
            RtValue::Float(_) => ArgSig::Float,
            RtValue::Bool(_) => ArgSig::Bool,
            RtValue::List(vs) => ArgSig::List(vs.iter().map(ArgSig::of).collect()),
        }
    }
}

/// Signature of an argument list (one [`ArgSig`] per argument).
pub fn signature_of(inputs: &[RtValue]) -> Vec<ArgSig> {
    inputs.iter().map(ArgSig::of).collect()
}

/// FNV-1a hash of the model source, the cheap stand-in for content identity.
pub fn source_hash(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cache key: which program, compiled how, for which input signature.
///
/// The engine specializes plans per input signature (as shape-specializing
/// serving systems do), so resizing the batch dimension compiles — and
/// caches — a fresh plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// FNV-1a hash of the DSL source.
    pub source_hash: u64,
    /// Pipeline used to compile.
    pub pipeline: PipelineKind,
    /// Shape/dtype signature of the inputs the plan is specialized for.
    pub signature: Vec<ArgSig>,
}

impl PlanKey {
    /// Build a key from source text, pipeline and exemplar inputs.
    pub fn new(source: &str, pipeline: PipelineKind, inputs: &[RtValue]) -> PlanKey {
        PlanKey {
            source_hash: source_hash(source),
            pipeline,
            signature: signature_of(inputs),
        }
    }

    /// Content hash naming this plan on disk: FNV-1a over (source hash,
    /// pipeline name, input signature, execution profile). Machine-local
    /// knobs (`parallel_threads`) are deliberately excluded so a cache
    /// directory survives a core-count change.
    pub fn content_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(128);
        bytes.extend_from_slice(&self.source_hash.to_le_bytes());
        bytes.extend_from_slice(self.pipeline.name().as_bytes());
        bytes.push(0xFF);
        // ArgSig's derived Debug output is deterministic and covers every
        // shape/dtype field — a stable textual encoding of the signature.
        bytes.extend_from_slice(format!("{:?}", self.signature).as_bytes());
        bytes.push(0xFF);
        let cfg = self.pipeline.exec_profile();
        bytes.extend_from_slice(cfg.device.name.as_bytes());
        for v in [
            cfg.device.launch_overhead_ns,
            cfg.device.bytes_per_ns,
            cfg.device.flops_per_ns,
            cfg.host_dispatch_ns,
            cfg.host_scalar_ns,
            cfg.control_entry_ns,
            cfg.sync_ns,
        ] {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        tssa_store::fnv64(&bytes)
    }
}

/// Monotonic counters exposed by [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served immediately from a ready entry.
    pub hits: u64,
    /// Lookups that ran the compiler.
    pub misses: u64,
    /// Lookups that blocked on another thread's in-flight compilation and
    /// shared its result (single-flight coalescing).
    pub coalesced: u64,
    /// Ready entries discarded to stay within capacity.
    pub evictions: u64,
    /// Ready entries evicted because an injected [`FaultKind::CachePoison`]
    /// marked them corrupt on a hit (each one recompiles; always 0 without
    /// an armed fault plan).
    pub poisoned: u64,
    /// Ready entries currently resident.
    pub entries: usize,
    /// Loads served by an existing shape class (no compile, no disk probe):
    /// the concrete signature differed from the class's example but was
    /// admitted by its [`ShapeSignature`](tssa_ir::ShapeSignature).
    pub class_hits: u64,
    /// Hot buckets promoted to a dedicated specialized plan.
    pub specializations: u64,
    /// Shape classes currently resident.
    pub class_entries: usize,
}

enum Slot {
    /// A thread is compiling this key right now.
    InFlight,
    Ready {
        plan: Arc<CompiledProgram>,
        last_used: u64,
    },
}

struct Inner {
    slots: HashMap<PlanKey, Slot>,
    tick: u64,
}

/// See the module documentation.
pub struct PlanCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
    faults: Faults,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    poisoned: AtomicU64,
    /// Shape classes, indexed by coarse (rank + dtype) hash. Each coarse
    /// bucket holds the classes whose admission must be checked in turn —
    /// normally exactly one.
    classes: Mutex<HashMap<u64, Vec<Arc<ClassEntry>>>>,
    class_hits: AtomicU64,
    specializations: AtomicU64,
}

/// Removes the in-flight marker if the compiling thread unwinds or errors,
/// so waiters retry instead of blocking forever.
struct InFlightCleanup<'a> {
    cache: &'a PlanCache,
    key: &'a PlanKey,
    armed: bool,
}

impl Drop for InFlightCleanup<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut guard = self.cache.inner.lock();
            guard.slots.remove(self.key);
            drop(guard);
            self.cache.ready.notify_all();
        }
    }
}

impl PlanCache {
    /// A cache retaining at most `capacity` ready plans (minimum 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache::with_faults(capacity, Faults::disabled())
    }

    /// As [`PlanCache::new`], consulting `faults` on every hit: an injected
    /// [`FaultKind::CachePoison`] makes the hit behave as if the entry were
    /// corrupt — it is evicted (counted in [`CacheStats::poisoned`]) and
    /// the caller recompiles.
    pub fn with_faults(capacity: usize, faults: Faults) -> PlanCache {
        PlanCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            faults,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            classes: Mutex::new(HashMap::new()),
            class_hits: AtomicU64::new(0),
            specializations: AtomicU64::new(0),
        }
    }

    /// Fetch the plan for `key`, running `compile` at most once per
    /// residency no matter how many threads race on the same key.
    ///
    /// # Errors
    ///
    /// Propagates `compile`'s error to the compiling caller; waiting callers
    /// retry compilation themselves (errors are not cached).
    pub fn get_or_compile<F>(
        &self,
        key: &PlanKey,
        compile: F,
    ) -> Result<Arc<CompiledProgram>, ServeError>
    where
        F: FnOnce() -> Result<CompiledProgram, ServeError>,
    {
        let mut counted_wait = false;
        let mut guard = self.inner.lock();
        loop {
            let ready_plan = match guard.slots.get(key) {
                Some(Slot::Ready { plan, .. }) => Some(Arc::clone(plan)),
                Some(Slot::InFlight) => {
                    if !counted_wait {
                        counted_wait = true;
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    self.ready.wait(&mut guard);
                    continue;
                }
                None => None,
            };
            match ready_plan {
                Some(plan) => {
                    // A poisoned hit models a corrupt cache entry: evict it
                    // and fall through to the recompile path, exactly as a
                    // real corruption detector would recover.
                    if self.faults.fire(FaultKind::CachePoison).is_some() {
                        guard.slots.remove(key);
                        self.poisoned.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    guard.tick += 1;
                    let now = guard.tick;
                    if let Some(Slot::Ready { last_used, .. }) = guard.slots.get_mut(key) {
                        *last_used = now;
                    }
                    if !counted_wait {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(plan);
                }
                None => break,
            }
        }
        // This thread compiles. Mark the key in-flight and drop the lock so
        // concurrent lookups of *other* keys proceed during compilation.
        guard.slots.insert(key.clone(), Slot::InFlight);
        self.misses.fetch_add(1, Ordering::Relaxed);
        drop(guard);

        let mut cleanup = InFlightCleanup {
            cache: self,
            key,
            armed: true,
        };
        // Compilation may unwind (an injected CompilePanic or a genuine
        // compiler bug). Catch it here so the leader gets a typed error and
        // the cleanup guard retracts the in-flight marker normally — waking
        // followers to retry — instead of unwinding through their wait.
        let plan = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(compile)) {
            Ok(Ok(compiled)) => Arc::new(compiled),
            Ok(Err(e)) => return Err(e),
            Err(_payload) => return Err(ServeError::CompilePanic),
        };
        // Success: publish the plan before the cleanup guard could retract it.
        cleanup.armed = false;
        drop(cleanup);

        let mut guard = self.inner.lock();
        guard.tick += 1;
        let now = guard.tick;
        guard.slots.insert(
            key.clone(),
            Slot::Ready {
                plan: Arc::clone(&plan),
                last_used: now,
            },
        );
        self.evict_over_capacity(&mut guard);
        drop(guard);
        self.ready.notify_all();
        Ok(plan)
    }

    fn evict_over_capacity(&self, guard: &mut parking_lot::MutexGuard<'_, Inner>) {
        loop {
            let ready = guard
                .slots
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
                .count();
            if ready <= self.capacity {
                return;
            }
            let victim = guard
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, k.clone())),
                    Slot::InFlight => None,
                })
                .min_by_key(|(last_used, _)| *last_used)
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    guard.slots.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }

    /// Find the resident shape class admitting a concrete signature, if any.
    ///
    /// Consults the fault plan exactly like a concrete hit: an injected
    /// [`FaultKind::CachePoison`] evicts the whole class *and* its origin
    /// concrete slots (counted once in [`CacheStats::poisoned`]), and the
    /// caller recompiles.
    pub fn lookup_class(&self, coarse: u64, args: &[ArgSig]) -> Option<Arc<ClassEntry>> {
        let mut classes = self.classes.lock();
        let bucket = classes.get_mut(&coarse)?;
        let pos = bucket.iter().position(|entry| entry.admits(args))?;
        if self.faults.fire(FaultKind::CachePoison).is_some() {
            let entry = bucket.remove(pos);
            if bucket.is_empty() {
                classes.remove(&coarse);
            }
            drop(classes);
            // Evict the concrete slots that fed the class, so the recompile
            // is a genuine one (a poisoned class must not be resurrected
            // from a stale concrete entry).
            let mut guard = self.inner.lock();
            for key in entry.origin_keys() {
                guard.slots.remove(&key);
            }
            drop(guard);
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let entry = Arc::clone(&bucket[pos]);
        drop(classes);
        self.class_hits.fetch_add(1, Ordering::Relaxed);
        Some(entry)
    }

    /// Insert a freshly derived class. When an equal class key is already
    /// resident (two threads compiled the same class concurrently), the
    /// existing entry wins and is returned, so census and specializations
    /// stay consolidated.
    pub fn insert_class(&self, coarse: u64, entry: ClassEntry) -> Arc<ClassEntry> {
        let mut classes = self.classes.lock();
        let bucket = classes.entry(coarse).or_default();
        if let Some(existing) = bucket.iter().find(|e| e.key() == entry.key()) {
            let existing = Arc::clone(existing);
            drop(classes);
            for key in entry.origin_keys() {
                existing.note_origin(key);
            }
            return existing;
        }
        let entry = Arc::new(entry);
        bucket.push(Arc::clone(&entry));
        entry
    }

    /// Count one hot-bucket specialization (the entry itself holds the plan).
    pub fn note_specialization(&self) {
        self.specializations.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        let guard = self.inner.lock();
        let entries = guard
            .slots
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
            .count();
        drop(guard);
        let class_entries = self.classes.lock().values().map(Vec::len).sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            entries,
            class_hits: self.class_hits.load(Ordering::Relaxed),
            specializations: self.specializations.load(Ordering::Relaxed),
            class_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_tensor::Tensor;

    fn key(tag: u64) -> PlanKey {
        PlanKey {
            source_hash: tag,
            pipeline: PipelineKind::Eager,
            signature: vec![ArgSig::Int],
        }
    }

    fn trivial_plan() -> Result<CompiledProgram, ServeError> {
        let g = tssa_frontend::compile("def f(x: Tensor):\n    y = x + 1.0\n    return y\n")
            .map_err(ServeError::Frontend)?;
        Ok(PipelineKind::Eager.compile(&g))
    }

    #[test]
    fn hit_after_miss() {
        let cache = PlanCache::new(4);
        let k = key(1);
        cache.get_or_compile(&k, trivial_plan).unwrap();
        cache
            .get_or_compile(&k, || panic!("must not recompile"))
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.get_or_compile(&key(1), trivial_plan).unwrap();
        cache.get_or_compile(&key(2), trivial_plan).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        cache.get_or_compile(&key(1), || panic!("cached")).unwrap();
        cache.get_or_compile(&key(3), trivial_plan).unwrap();
        let s = cache.stats();
        assert_eq!((s.evictions, s.entries), (1, 2));
        // 1 survived; 2 was evicted and recompiles.
        cache.get_or_compile(&key(1), || panic!("cached")).unwrap();
        cache.get_or_compile(&key(2), trivial_plan).unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = PlanCache::new(2);
        let k = key(9);
        let err = cache.get_or_compile(&k, || Err(ServeError::invalid("boom")));
        assert!(matches!(err, Err(ServeError::InvalidRequest(_))));
        // The slot was retracted; a later call compiles for real.
        cache.get_or_compile(&k, trivial_plan).unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn signature_distinguishes_shape_and_dtype() {
        let a = signature_of(&[RtValue::Tensor(Tensor::zeros(&[2, 3]))]);
        let b = signature_of(&[RtValue::Tensor(Tensor::zeros(&[4, 3]))]);
        assert_ne!(a, b);
        assert_eq!(a, signature_of(&[RtValue::Tensor(Tensor::zeros(&[2, 3]))]));
    }

    #[test]
    fn source_hash_is_content_sensitive() {
        assert_ne!(source_hash("a"), source_hash("b"));
        assert_eq!(source_hash("same"), source_hash("same"));
    }

    #[test]
    fn pipeline_kind_names_match_structs() {
        for k in PipelineKind::all() {
            assert!(!k.name().is_empty());
        }
        assert_eq!(PipelineKind::TensorSsa.name(), "TensorSSA");
        assert_eq!(PipelineKind::Degraded.name(), "Degraded");
    }

    #[test]
    fn compile_panic_is_a_typed_error_and_is_not_cached() {
        crate::fault::silence_injected_panics_for_tests();
        let cache = PlanCache::new(2);
        let k = key(11);
        let err = cache.get_or_compile(&k, || {
            std::panic::panic_any(crate::fault::INJECTED_COMPILE_PANIC)
        });
        assert_eq!(err.unwrap_err(), ServeError::CompilePanic);
        // The in-flight marker was retracted: a later call compiles cleanly.
        cache.get_or_compile(&k, trivial_plan).unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn followers_survive_a_leader_compile_panic() {
        crate::fault::silence_injected_panics_for_tests();
        let cache = Arc::new(PlanCache::new(4));
        let k = key(12);
        // Every racing thread's own compile attempt panics; each must come
        // back with the typed error — none may hang on the condition
        // variable waiting for a result that will never be published.
        let outcomes: Vec<_> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let k = k.clone();
                    s.spawn(move || {
                        cache.get_or_compile(&k, || {
                            std::panic::panic_any(crate::fault::INJECTED_COMPILE_PANIC)
                        })
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("waiter thread must not itself panic"))
                .collect()
        });
        for outcome in outcomes {
            assert_eq!(outcome.unwrap_err(), ServeError::CompilePanic);
        }
        // Nothing was cached; a clean compile succeeds afterwards.
        cache.get_or_compile(&k, trivial_plan).unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn poisoned_hit_evicts_and_recompiles() {
        use crate::fault::{FaultKind, FaultPlan};
        // Poison the first hit (arrival 0 at the cache-poison site).
        let faults = FaultPlan::script().at(FaultKind::CachePoison, 0).faults();
        let cache = PlanCache::with_faults(4, faults.clone());
        let k = key(1);
        cache.get_or_compile(&k, trivial_plan).unwrap();
        // First hit is poisoned: the entry is evicted and recompiled.
        cache.get_or_compile(&k, trivial_plan).unwrap();
        // Second hit is clean and must not recompile.
        cache
            .get_or_compile(&k, || panic!("poison fired twice"))
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.misses, s.poisoned, s.hits, s.entries), (2, 1, 1, 1));
        assert_eq!(faults.plan().unwrap().injected(FaultKind::CachePoison), 1);
    }
}
