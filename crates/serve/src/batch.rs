//! Dynamic-batching data plane: how K requests for the same plan become one
//! execution and how its outputs are handed back out.
//!
//! A [`BatchSpec`] labels every argument (and output) of a model with an
//! [`ArgRole`]:
//!
//! * [`ArgRole::Stacked`] arguments carry per-request data along dimension 0
//!   (the batch dimension); coalescing concatenates them, and stacked
//!   outputs are split back by each request's row count;
//! * [`ArgRole::Shared`] arguments are common to every request in the batch
//!   (weights, anchor points, sequence lengths); the dispatcher only
//!   coalesces requests whose shared arguments are identical, so sharing is
//!   sound by construction.
//!
//! For programs that are elementwise over the batch dimension — the CV
//! post-processing workloads — batched execution is *bit-for-bit* equal to
//! running each request alone, which the integration tests assert.

use tssa_backend::RtValue;
use tssa_tensor::concat;

use crate::ServeError;

/// How one argument (or output) participates in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgRole {
    /// Per-request rows along dimension 0; concatenated on entry, split on
    /// exit.
    Stacked,
    /// Identical across the batch; passed through once.
    Shared,
}

/// Batch roles for a model's arguments and outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSpec {
    /// One role per graph argument.
    pub args: Vec<ArgRole>,
    /// One role per graph output. Outputs beyond this list default to
    /// [`ArgRole::Stacked`].
    pub outputs: Vec<ArgRole>,
}

impl BatchSpec {
    /// All arguments stacked, all outputs stacked: the shape of a model
    /// whose every tensor is batched along dimension 0.
    pub fn stacked(n_args: usize, n_outputs: usize) -> BatchSpec {
        BatchSpec {
            args: vec![ArgRole::Stacked; n_args],
            outputs: vec![ArgRole::Stacked; n_outputs],
        }
    }

    /// No argument is batched: every request runs alone (no coalescing).
    pub fn unbatched(n_args: usize) -> BatchSpec {
        BatchSpec {
            args: vec![ArgRole::Shared; n_args],
            outputs: Vec::new(),
        }
    }

    /// Whether this spec permits coalescing at all.
    pub fn batchable(&self) -> bool {
        self.args.contains(&ArgRole::Stacked)
    }

    /// The number of batch rows `inputs` contributes, validating the shape
    /// contract: every stacked argument must be a tensor of rank ≥ 1 and
    /// all must agree on dimension 0.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] on arity mismatch, a non-tensor
    /// stacked argument, or disagreeing row counts.
    pub fn rows(&self, inputs: &[RtValue]) -> Result<usize, ServeError> {
        if inputs.len() != self.args.len() {
            return Err(ServeError::invalid(format!(
                "expected {} arguments, got {}",
                self.args.len(),
                inputs.len()
            )));
        }
        let mut rows: Option<usize> = None;
        for (i, (role, value)) in self.args.iter().zip(inputs).enumerate() {
            if *role != ArgRole::Stacked {
                continue;
            }
            let t = match value {
                RtValue::Tensor(t) if !t.shape().is_empty() => t,
                _ => {
                    return Err(ServeError::invalid(format!(
                        "stacked argument {i} must be a tensor of rank >= 1"
                    )))
                }
            };
            let r = t.shape()[0];
            match rows {
                None => rows = Some(r),
                Some(prev) if prev != r => {
                    return Err(ServeError::invalid(format!(
                        "stacked arguments disagree on batch rows: {prev} vs {r} (argument {i})"
                    )))
                }
                Some(_) => {}
            }
        }
        // An unbatchable request still occupies one logical row.
        Ok(rows.unwrap_or(1))
    }

    /// Whether two requests may share a batch: their [`ArgRole::Shared`]
    /// arguments must be structurally identical, and their
    /// [`ArgRole::Stacked`] arguments must concatenate cleanly along the
    /// batch dim — same dtype and same trailing dims, with *any* batch
    /// extent. Requests from different concrete shapes of one shape class
    /// therefore stack pad-free when only the batch dim varies, and refuse
    /// to mix otherwise.
    pub fn compatible(&self, a: &[RtValue], b: &[RtValue]) -> bool {
        a.len() == b.len()
            && self
                .args
                .iter()
                .zip(a.iter().zip(b))
                .all(|(role, (x, y))| match role {
                    ArgRole::Shared => rt_eq(x, y),
                    ArgRole::Stacked => match (x, y) {
                        (RtValue::Tensor(tx), RtValue::Tensor(ty)) => {
                            tx.dtype() == ty.dtype()
                                && tx.rank() == ty.rank()
                                && tx.rank() >= 1
                                && tx.shape()[1..] == ty.shape()[1..]
                        }
                        _ => rt_eq(x, y),
                    },
                })
    }

    /// Concatenate K requests' inputs into one batched argument list.
    ///
    /// # Errors
    ///
    /// [`ServeError`] if `requests` is empty or tensor concatenation fails
    /// (shape/dtype disagreement outside dimension 0).
    pub fn stack(&self, requests: &[&[RtValue]]) -> Result<Vec<RtValue>, ServeError> {
        let first = requests
            .first()
            .ok_or_else(|| ServeError::invalid("cannot stack an empty batch"))?;
        if requests.len() == 1 {
            return Ok(first.to_vec());
        }
        let mut out = Vec::with_capacity(self.args.len());
        for (i, role) in self.args.iter().enumerate() {
            match role {
                ArgRole::Shared => out.push(first[i].clone()),
                ArgRole::Stacked => {
                    let parts: Result<Vec<_>, ServeError> = requests
                        .iter()
                        .map(|r| r[i].as_tensor().map_err(ServeError::from))
                        .collect();
                    let parts = parts?;
                    let t = concat(&parts, 0).map_err(|e| ServeError::Exec(e.into()))?;
                    out.push(RtValue::Tensor(t));
                }
            }
        }
        Ok(out)
    }

    /// Split one batched execution's outputs back into per-request outputs,
    /// where request `j` contributed `rows[j]` batch rows.
    ///
    /// Stacked outputs are narrowed to each request's row range and
    /// materialized (so responses do not pin the batch buffer); shared
    /// outputs are cloned to every request.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] when a stacked output is not a tensor
    /// or its dimension 0 does not equal the total row count.
    pub fn split(
        &self,
        outputs: &[RtValue],
        rows: &[usize],
    ) -> Result<Vec<Vec<RtValue>>, ServeError> {
        let total: usize = rows.iter().sum();
        let mut per_request: Vec<Vec<RtValue>> =
            vec![Vec::with_capacity(outputs.len()); rows.len()];
        for (j, value) in outputs.iter().enumerate() {
            let role = self.outputs.get(j).copied().unwrap_or(ArgRole::Stacked);
            match role {
                ArgRole::Shared => {
                    for out in &mut per_request {
                        out.push(value.clone());
                    }
                }
                ArgRole::Stacked => {
                    let t = value.as_tensor().map_err(|_| {
                        ServeError::invalid(format!("stacked output {j} is not a tensor"))
                    })?;
                    if t.shape().first() != Some(&total) {
                        return Err(ServeError::invalid(format!(
                            "stacked output {j} has {:?} rows, batch carried {total}",
                            t.shape().first()
                        )));
                    }
                    let mut offset = 0usize;
                    for (req, &r) in per_request.iter_mut().zip(rows) {
                        let slice = t
                            .narrow(0, offset as isize, r)
                            .map_err(|e| ServeError::Exec(e.into()))?;
                        req.push(RtValue::Tensor(slice.clone_data()));
                        offset += r;
                    }
                }
            }
        }
        Ok(per_request)
    }
}

/// How the adaptive degrade trigger derives its threshold from the
/// service's long-run queue-wait histogram (`tssa_queue_wait_us` in the
/// [`tssa_obs::MetricsRegistry`]): the threshold is
/// `max(floor, factor × median queue wait)`, and the trigger stays inactive
/// until the histogram holds at least `min_samples` observations — a cold
/// service never degrades off a handful of warmup waits.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveDegrade {
    /// Multiple of the long-run median queue wait that counts as overload.
    pub factor: f64,
    /// Threshold never drops below this, however fast the median is.
    pub floor: std::time::Duration,
    /// Histogram observations required before the trigger arms.
    pub min_samples: u64,
}

impl Default for AdaptiveDegrade {
    fn default() -> Self {
        AdaptiveDegrade {
            factor: 8.0,
            floor: std::time::Duration::from_micros(200),
            min_samples: 64,
        }
    }
}

/// Where a [`DegradeController`]'s threshold comes from.
#[derive(Debug)]
enum Trigger {
    /// A fixed operator-chosen threshold ([`DegradeController::new`]).
    Fixed(std::time::Duration),
    /// Derived from the long-run queue-wait distribution
    /// ([`DegradeController::adaptive`]).
    Adaptive {
        hist: tssa_obs::HistogramMetric,
        policy: AdaptiveDegrade,
    },
}

/// Latency-triggered degradation policy: when the p99 queue wait over a
/// sliding window of recent requests exceeds the threshold, the
/// dispatcher sheds batching — each request is flushed alone and marked to
/// run on its model's degraded plan (no optimization pipeline, direct
/// interpretation), trading per-request efficiency for immediate dispatch
/// until the queue drains.
///
/// The threshold is either fixed ([`DegradeController::new`]) or adaptive
/// ([`DegradeController::adaptive`]): a multiple of the long-run median
/// queue wait read from the registry histogram the dispatcher records into,
/// so the knob scales with the workload instead of being tuned per model.
///
/// Owned by the dispatcher thread (no internal synchronization). Once
/// entered, degraded mode is held for a cooldown before the window is
/// re-evaluated, so the service does not flap at the threshold.
#[derive(Debug)]
pub struct DegradeController {
    trigger: Trigger,
    cooldown: std::time::Duration,
    /// Recent queue waits, µs, oldest first (bounded ring).
    window: std::collections::VecDeque<u64>,
    capacity: usize,
    /// While set, degraded mode is held regardless of the window.
    hold_until: Option<std::time::Instant>,
}

impl DegradeController {
    /// Window size the p99 estimate is computed over.
    pub const WINDOW: usize = 64;

    /// A controller that degrades when windowed p99 queue wait exceeds
    /// `threshold`, holding the mode for `cooldown` once entered.
    pub fn new(threshold: std::time::Duration, cooldown: std::time::Duration) -> DegradeController {
        DegradeController {
            trigger: Trigger::Fixed(threshold),
            cooldown,
            window: std::collections::VecDeque::with_capacity(Self::WINDOW),
            capacity: Self::WINDOW,
            hold_until: None,
        }
    }

    /// A controller whose threshold tracks the workload: degraded mode trips
    /// when windowed p99 exceeds `max(policy.floor, policy.factor × median)`
    /// of `hist` — the long-run queue-wait histogram the dispatcher records
    /// every request into — and never before `hist` holds
    /// `policy.min_samples` observations.
    pub fn adaptive(
        hist: tssa_obs::HistogramMetric,
        policy: AdaptiveDegrade,
        cooldown: std::time::Duration,
    ) -> DegradeController {
        DegradeController {
            trigger: Trigger::Adaptive { hist, policy },
            cooldown,
            window: std::collections::VecDeque::with_capacity(Self::WINDOW),
            capacity: Self::WINDOW,
            hold_until: None,
        }
    }

    /// The current trip threshold in µs, or `None` while an adaptive
    /// trigger is still unarmed (fewer than `min_samples` long-run waits).
    pub fn threshold_us(&self) -> Option<u64> {
        match &self.trigger {
            Trigger::Fixed(d) => Some(d.as_micros().min(u128::from(u64::MAX)) as u64),
            Trigger::Adaptive { hist, policy } => {
                if hist.count() < policy.min_samples {
                    return None;
                }
                let floor = policy.floor.as_micros().min(u128::from(u64::MAX)) as u64;
                let scaled = (policy.factor * hist.quantile(0.50) as f64).round();
                Some(floor.max(if scaled >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    scaled as u64
                }))
            }
        }
    }

    /// Record one request's admission-to-dispatch wait.
    pub fn observe(&mut self, wait: std::time::Duration) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window
            .push_back(wait.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// The p99 queue wait (µs) over the current window (0 when empty).
    pub fn p99_us(&self) -> u64 {
        if self.window.is_empty() {
            return 0;
        }
        let mut sorted: Vec<u64> = self.window.iter().copied().collect();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Whether the service should run in degraded mode right now.
    pub fn degraded(&mut self, now: std::time::Instant) -> bool {
        if let Some(until) = self.hold_until {
            if now < until {
                return true;
            }
            self.hold_until = None;
            // Leaving the hold: judge afresh on a clean window so stale
            // pre-degradation waits cannot re-trigger immediately.
            self.window.clear();
            return false;
        }
        let Some(threshold) = self.threshold_us() else {
            return false;
        };
        if self.p99_us() > threshold {
            self.hold_until = Some(now + self.cooldown);
            return true;
        }
        false
    }
}

/// Structural equality over runtime values (tensor contents compared
/// logically; floats compared by bits via `PartialEq`).
fn rt_eq(a: &RtValue, b: &RtValue) -> bool {
    match (a, b) {
        (RtValue::Tensor(x), RtValue::Tensor(y)) => x == y,
        (RtValue::Int(x), RtValue::Int(y)) => x == y,
        (RtValue::Float(x), RtValue::Float(y)) => x.to_bits() == y.to_bits(),
        (RtValue::Bool(x), RtValue::Bool(y)) => x == y,
        (RtValue::List(x), RtValue::List(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| rt_eq(u, v))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_tensor::Tensor;

    fn t(shape: &[usize], seed: u64) -> RtValue {
        RtValue::Tensor(Tensor::rand_uniform(shape, -1.0, 1.0, seed))
    }

    #[test]
    fn rows_validates_shape_contract() {
        let spec = BatchSpec {
            args: vec![ArgRole::Stacked, ArgRole::Shared],
            outputs: vec![ArgRole::Stacked],
        };
        assert_eq!(spec.rows(&[t(&[3, 4], 0), RtValue::Int(7)]).unwrap(), 3);
        assert!(spec.rows(&[RtValue::Int(1), RtValue::Int(7)]).is_err());
        assert!(spec.rows(&[t(&[3, 4], 0)]).is_err());
        let two_stacked = BatchSpec {
            args: vec![ArgRole::Stacked, ArgRole::Stacked],
            outputs: vec![],
        };
        assert!(two_stacked.rows(&[t(&[3, 4], 0), t(&[2, 4], 1)]).is_err());
    }

    #[test]
    fn stack_then_split_round_trips() {
        let spec = BatchSpec {
            args: vec![ArgRole::Stacked],
            outputs: vec![ArgRole::Stacked],
        };
        let a = t(&[2, 3], 1);
        let b = t(&[3, 3], 2);
        let stacked = spec
            .stack(&[std::slice::from_ref(&a), std::slice::from_ref(&b)])
            .unwrap();
        assert_eq!(stacked[0].as_tensor().unwrap().shape(), &[5, 3]);
        let split = spec.split(&stacked, &[2, 3]).unwrap();
        assert!(rt_eq(&split[0][0], &a));
        assert!(rt_eq(&split[1][0], &b));
    }

    #[test]
    fn shared_outputs_fan_out() {
        let spec = BatchSpec {
            args: vec![ArgRole::Stacked],
            outputs: vec![ArgRole::Shared],
        };
        let out = [RtValue::Int(42)];
        let split = spec.split(&out, &[1, 2]).unwrap();
        assert_eq!(split.len(), 2);
        assert!(rt_eq(&split[0][0], &split[1][0]));
    }

    #[test]
    fn split_rejects_row_mismatch() {
        let spec = BatchSpec::stacked(1, 1);
        let out = [t(&[4, 2], 3)];
        assert!(spec.split(&out, &[2, 3]).is_err());
        assert!(spec.split(&[RtValue::Int(1)], &[1]).is_err());
    }

    #[test]
    fn compatibility_checks_shared_args_only() {
        let spec = BatchSpec {
            args: vec![ArgRole::Stacked, ArgRole::Shared],
            outputs: vec![],
        };
        let shared = t(&[4, 2], 9);
        let a = [t(&[1, 2], 1), shared.clone()];
        let b = [t(&[2, 2], 2), shared.clone()];
        let c = [t(&[2, 2], 2), t(&[4, 2], 10)];
        assert!(spec.compatible(&a, &b), "batch dims may differ");
        assert!(!spec.compatible(&a, &c), "shared args must be identical");
        // Stacked args must agree past the batch dim: [2,3] never shares a
        // batch with [2,4] even when the shared args match.
        let d = [t(&[2, 3], 2), shared.clone()];
        assert!(!spec.compatible(&a, &d), "trailing dims must match");
    }

    #[test]
    fn degrade_controller_trips_holds_and_recovers() {
        use std::time::{Duration, Instant};
        let mut ctl = DegradeController::new(Duration::from_millis(1), Duration::from_millis(5));
        let now = Instant::now();
        // Healthy waits: no degradation.
        for _ in 0..16 {
            ctl.observe(Duration::from_micros(50));
        }
        assert!(!ctl.degraded(now));
        assert_eq!(ctl.p99_us(), 50);
        // One slow outlier in a window of 64 pushes p99 over 1ms.
        ctl.observe(Duration::from_millis(20));
        assert!(ctl.degraded(now));
        // Held through the cooldown even if the window looks healthy again.
        for _ in 0..DegradeController::WINDOW {
            ctl.observe(Duration::from_micros(10));
        }
        assert!(ctl.degraded(now + Duration::from_millis(4)));
        // Past the cooldown the cleared window must re-trip before
        // degrading again.
        assert!(!ctl.degraded(now + Duration::from_millis(6)));
        ctl.observe(Duration::from_micros(10));
        assert!(!ctl.degraded(now + Duration::from_millis(7)));
    }

    #[test]
    fn adaptive_trigger_is_inert_until_min_samples() {
        use std::time::{Duration, Instant};
        let reg = tssa_obs::MetricsRegistry::new();
        let hist = reg.histogram("tssa_queue_wait_us", "h", &[]);
        let policy = AdaptiveDegrade {
            factor: 8.0,
            floor: Duration::from_micros(200),
            min_samples: 64,
        };
        let mut ctl = DegradeController::adaptive(hist.clone(), policy, Duration::from_millis(5));
        // Too few long-run samples: no threshold, no degradation — even
        // with an atrocious window.
        for _ in 0..16 {
            hist.observe(100);
            ctl.observe(Duration::from_millis(50));
        }
        assert_eq!(ctl.threshold_us(), None);
        assert!(!ctl.degraded(Instant::now()));
    }

    #[test]
    fn adaptive_threshold_tracks_median_with_floor() {
        use std::time::Duration;
        let reg = tssa_obs::MetricsRegistry::new();
        let hist = reg.histogram("tssa_queue_wait_us", "h", &[]);
        let policy = AdaptiveDegrade {
            factor: 8.0,
            floor: Duration::from_micros(200),
            min_samples: 64,
        };
        let ctl = DegradeController::adaptive(hist.clone(), policy, Duration::from_millis(5));
        // Sub-floor medians clamp to the floor (fast services must not end
        // up with a microscopic trip point).
        for _ in 0..64 {
            hist.observe(10); // bucket upper bound 16 → 8×16 = 128 < 200
        }
        assert_eq!(ctl.threshold_us(), Some(200));
        // A slower long-run median raises the threshold proportionally.
        for _ in 0..640 {
            hist.observe(100); // median bucket upper bound 128 → 8×128
        }
        assert_eq!(ctl.threshold_us(), Some(1024));
    }

    #[test]
    fn adaptive_controller_trips_holds_and_recovers() {
        use std::time::{Duration, Instant};
        let reg = tssa_obs::MetricsRegistry::new();
        let hist = reg.histogram("tssa_queue_wait_us", "h", &[]);
        let policy = AdaptiveDegrade {
            factor: 8.0,
            floor: Duration::from_micros(200),
            min_samples: 64,
        };
        let mut ctl = DegradeController::adaptive(hist.clone(), policy, Duration::from_millis(5));
        let now = Instant::now();
        // Healthy traffic: 100µs waits → threshold 8×128 = 1024µs.
        for _ in 0..64 {
            hist.observe(100);
            ctl.observe(Duration::from_micros(100));
        }
        assert!(!ctl.degraded(now));
        // A queue spike blows the windowed p99 past the adaptive threshold.
        ctl.observe(Duration::from_millis(20));
        assert!(ctl.degraded(now));
        // Hysteresis: held through the cooldown despite a healthy window...
        for _ in 0..DegradeController::WINDOW {
            ctl.observe(Duration::from_micros(10));
        }
        assert!(ctl.degraded(now + Duration::from_millis(4)));
        // ...and past it, the cleared window must re-trip before degrading
        // again.
        assert!(!ctl.degraded(now + Duration::from_millis(6)));
        ctl.observe(Duration::from_micros(10));
        assert!(!ctl.degraded(now + Duration::from_millis(7)));
    }

    #[test]
    fn unbatched_spec_is_not_batchable() {
        assert!(!BatchSpec::unbatched(3).batchable());
        assert!(BatchSpec::stacked(2, 1).batchable());
        let ints = vec![RtValue::Int(0), RtValue::Int(1), RtValue::Int(2)];
        assert_eq!(BatchSpec::unbatched(3).rows(&ints).unwrap(), 1);
    }
}
