//! Property tests for [`PlanClassKey`] derivation: two concrete signatures
//! derive the same key exactly when the same certified signature admits
//! both, and keys never collide across pipeline-roster or pinned-dim
//! differences.

use proptest::prelude::*;
use tssa_ir::{DimClass, ShapeSignature};
use tssa_serve::{coarse_class_hash, ArgSig, ClassSignature, PipelineKind};
use tssa_tensor::DType;

fn tensor(shape: &[usize]) -> ArgSig {
    ArgSig::Tensor {
        shape: shape.to_vec(),
        dtype: DType::F32,
    }
}

/// Tiny deterministic generator so each case is a pure function of its
/// seed (the vendored proptest shim reports the failing case index).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A random case: a certified signature over one tensor input (each dim
/// independently polymorphic or pinned), the concrete shape it was derived
/// from, and a second concrete shape that perturbs some dims.
fn case(seed: u64) -> (ShapeSignature, Vec<usize>, Vec<usize>) {
    let mut rng = Mix(seed);
    let rank = 1 + rng.below(4) as usize;
    let shape_a: Vec<usize> = (0..rank).map(|_| 1 + rng.below(6) as usize).collect();
    let classes: Vec<DimClass> = shape_a
        .iter()
        .map(|&n| {
            if rng.below(3) == 0 {
                DimClass::Specialized(n)
            } else {
                DimClass::Polymorphic
            }
        })
        .collect();
    let shape_b: Vec<usize> = shape_a
        .iter()
        .map(|&n| {
            if rng.below(2) == 0 {
                n
            } else {
                1 + rng.below(6) as usize
            }
        })
        .collect();
    let sig = ShapeSignature {
        inputs: vec![Some(classes)],
        outputs: vec![],
        constraints: vec![],
    };
    (sig, shape_a, shape_b)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Keys agree ⇔ the signature admits both concrete shapes: derivation
    /// from any admitted example lands on the identical class.
    #[test]
    fn key_agreement_iff_both_admitted(seed in 0u64..1_000_000) {
        let (sig, shape_a, shape_b) = case(seed);
        let a = ClassSignature::derive(
            "src", PipelineKind::TensorSsa, &[tensor(&shape_a)], &sig,
        );
        prop_assert!(a.is_some(), "the deriving example always belongs");
        let a = a.unwrap();
        let b = ClassSignature::derive(
            "src", PipelineKind::TensorSsa, &[tensor(&shape_b)], &sig,
        );
        let b_admitted = a.admits(&[tensor(&shape_b)]);
        prop_assert_eq!(b.is_some(), b_admitted, "derivation succeeds exactly for admitted shapes");
        if let Some(b) = b {
            prop_assert_eq!(&a.key, &b.key, "admitted shapes derive the identical key");
            prop_assert_eq!(a.key.class_hash(), b.key.class_hash());
            prop_assert!(b.admits(&[tensor(&shape_a)]), "admission is symmetric across the class");
        }
        // The coarse hash erases pins entirely: equal for every same-rank
        // shape, admitted or not.
        prop_assert_eq!(
            a.key.coarse_hash(),
            coarse_class_hash("src", PipelineKind::TensorSsa, &[tensor(&shape_b)]),
        );
    }

    /// No collisions: a different pipeline (different pass roster) or a
    /// different pinned extent is always a different class hash.
    #[test]
    fn no_collisions_across_roster_or_pins(seed in 0u64..1_000_000) {
        let (sig, shape_a, _) = case(seed);
        let a = ClassSignature::derive(
            "src", PipelineKind::TensorSsa, &[tensor(&shape_a)], &sig,
        ).unwrap();
        for pipeline in PipelineKind::all() {
            if pipeline == PipelineKind::TensorSsa {
                continue;
            }
            let other = ClassSignature::derive("src", pipeline, &[tensor(&shape_a)], &sig).unwrap();
            prop_assert!(a.key.class_hash() != other.key.class_hash(), "roster split");
            prop_assert_ne!(a.key.coarse_hash(), other.key.coarse_hash());
        }
        // Bump every pinned dim (in signature and example together): each
        // perturbation is a distinct class with a distinct hash.
        let Some(classes) = sig.inputs[0].as_ref() else { unreachable!() };
        for (i, class) in classes.iter().enumerate() {
            let DimClass::Specialized(k) = class else { continue };
            let mut bumped_classes = classes.clone();
            bumped_classes[i] = DimClass::Specialized(k + 1);
            let mut bumped_shape = shape_a.clone();
            bumped_shape[i] = k + 1;
            let bumped_sig = ShapeSignature {
                inputs: vec![Some(bumped_classes)],
                outputs: vec![],
                constraints: vec![],
            };
            let other = ClassSignature::derive(
                "src", PipelineKind::TensorSsa, &[tensor(&bumped_shape)], &bumped_sig,
            ).unwrap();
            prop_assert!(
                a.key.class_hash() != other.key.class_hash(),
                "pin split (dim {i})"
            );
            prop_assert_eq!(
                a.key.coarse_hash(), other.key.coarse_hash(),
                "pins never leak into the coarse hash"
            );
            prop_assert!(!a.admits(&[tensor(&bumped_shape)]), "a's pin rejects the bump");
        }
        // A different source is a different class (and coarse) hash.
        let renamed = ClassSignature::derive(
            "other-src", PipelineKind::TensorSsa, &[tensor(&shape_a)], &sig,
        ).unwrap();
        prop_assert_ne!(a.key.class_hash(), renamed.key.class_hash());
    }
}
