//! End-to-end tracing through the service: one TensorSSA request must
//! produce a span tree at least three levels deep (request → compile/exec →
//! per-pass/per-batch), exportable as valid Chrome-trace JSON.

use std::collections::HashMap;

use tssa_obs::{chrome_trace_json, json, SpanRecord, Tracer};
use tssa_serve::{BatchSpec, PipelineKind, ServeConfig, Service};
use tssa_workloads::Workload;

/// Depth of `record` in the span forest (roots are depth 0).
fn depth(by_id: &HashMap<u64, &SpanRecord>, record: &SpanRecord) -> usize {
    let mut d = 0;
    let mut cursor = record.parent;
    while let Some(id) = cursor {
        d += 1;
        cursor = by_id.get(&id).and_then(|r| r.parent);
    }
    d
}

fn children<'a>(records: &'a [SpanRecord], parent: &SpanRecord) -> Vec<&'a SpanRecord> {
    records
        .iter()
        .filter(|r| r.parent == Some(parent.id))
        .collect()
}

#[test]
fn single_request_traces_three_levels_deep() {
    let (tracer, sink) = Tracer::ring(4096);
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_tracer(tracer.clone()),
    );
    let workload = Workload::by_name("attention").unwrap();
    let inputs = workload.inputs(2, 24, 7);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::unbatched(inputs.len()))
        .load()
        .unwrap();
    let response = service.submit(&model, inputs).unwrap().wait().unwrap();
    assert_eq!(response.coalesced, 1);
    service.shutdown();

    let records = sink.snapshot();
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();

    // Load path: request:load → compile:TensorSSA → pass:* children.
    let load = records.iter().find(|r| r.name == "request:load").unwrap();
    assert_eq!(load.counter("cache_hit"), Some(0));
    let compile = records
        .iter()
        .find(|r| r.name == "compile:TensorSSA")
        .unwrap();
    assert_eq!(compile.parent, Some(load.id));
    let pass_children: Vec<_> = children(&records, compile)
        .into_iter()
        .filter(|r| r.category == "pass")
        .collect();
    assert!(
        pass_children.len() >= 5,
        "expected the TensorSSA pass sequence under the compile span, got {:?}",
        pass_children.iter().map(|r| &r.name).collect::<Vec<_>>()
    );
    assert!(pass_children
        .iter()
        .any(|r| r.name == "pass:tensorssa-convert"));
    assert!(pass_children.iter().any(|r| r.name == "pass:fuse-vertical"));

    // Submit path: request → queue + batch; batch → exec → batch[0].
    let request = records.iter().find(|r| r.name == "request").unwrap();
    assert!(request.parent.is_none());
    let request_children = children(&records, request);
    assert!(request_children.iter().any(|r| r.name == "queue"));
    let batch = request_children.iter().find(|r| r.name == "batch").unwrap();
    assert_eq!(batch.counter("coalesced"), Some(1));
    let exec = records
        .iter()
        .find(|r| r.name == "exec" && r.parent == Some(batch.id))
        .unwrap();
    let batch0 = records
        .iter()
        .find(|r| r.name == "batch[0]" && r.parent == Some(exec.id))
        .unwrap();
    assert!(batch0.counter("kernel_launches").unwrap_or(0) > 0);
    assert!(depth(&by_id, batch0) >= 3, "request trace too shallow");

    // Parents must contain their children in time.
    for r in &records {
        if let Some(parent) = r.parent.and_then(|id| by_id.get(&id)) {
            assert!(
                r.start_ns >= parent.start_ns,
                "{} starts before {}",
                r.name,
                parent.name
            );
            assert!(
                r.end_ns() <= parent.end_ns(),
                "{} ends after {}",
                r.name,
                parent.name
            );
        }
    }

    // The whole trace must round-trip through the Chrome exporter as valid
    // JSON with one event per span.
    let chrome = chrome_trace_json(&records);
    let parsed = json::parse(&chrome).expect("chrome trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(json::JsonValue::as_array)
        .unwrap();
    assert_eq!(events.len(), records.len());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(json::JsonValue::as_str))
        .collect();
    for expected in [
        "request",
        "request:load",
        "compile:TensorSSA",
        "exec",
        "batch[0]",
    ] {
        assert!(
            names.contains(&expected),
            "missing {expected} in chrome trace"
        );
    }
}
