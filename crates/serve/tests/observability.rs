//! First-class metrics wiring: the service records queue-wait and per-plan
//! batch-occupancy histograms into its [`MetricsRegistry`], and
//! [`Service::prometheus`] renders them together with the bridged
//! [`tssa_serve::MetricsSnapshot`] as one exposition.

use std::time::Duration;

use tssa_serve::{
    AdaptiveDegrade, BatchSpec, MetricsRegistry, PipelineKind, Profiler, ServeConfig, Service,
};
use tssa_workloads::Workload;

#[test]
fn registry_collects_queue_wait_and_per_plan_occupancy() {
    const SUBMITTED: usize = 12;
    let registry = MetricsRegistry::new();
    let workload = Workload::by_name("yolov3").unwrap();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(4)
            .with_registry(registry.clone()),
    );
    let inputs = workload.inputs(2, 0, 3);
    let model = service
        .loader(workload.source)
        .named("yolo-post")
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    assert_eq!(model.label(), "yolo-post");
    let tickets: Vec<_> = (0..SUBMITTED)
        .map(|_| service.submit(&model, inputs.clone()).unwrap())
        .collect();
    for t in tickets {
        t.wait().expect("request completes");
    }

    // The dispatcher recorded every request's wait and every flush's
    // occupancy into the service's registry.
    let queue_wait = registry.histogram("tssa_queue_wait_us", "", &[]);
    assert_eq!(queue_wait.count(), SUBMITTED as u64);
    let occupancy = registry.histogram("tssa_batch_occupancy", "", &[("plan", "yolo-post")]);
    assert!(occupancy.count() > 0, "at least one batch was dispatched");
    assert_eq!(
        occupancy.sum(),
        SUBMITTED as u64,
        "occupancy sums to the requests dispatched"
    );

    // One consolidated exposition: registry series plus the bridged
    // snapshot.
    let text = service.prometheus();
    assert!(text.contains("tssa_queue_wait_us_bucket"));
    assert!(text.contains("tssa_batch_occupancy_bucket{plan=\"yolo-post\",le="));
    assert!(text.contains(&format!(
        "tssa_batch_occupancy_sum{{plan=\"yolo-post\"}} {SUBMITTED}"
    )));
    assert!(text.contains("tssa_requests_completed_total"));
    assert!(text.contains("tssa_request_latency_us_bucket"));
    assert!(service.registry().same_as(&registry));

    // After shutdown every outcome counter is settled; re-bridging the
    // final snapshot overwrites the earlier bridge with exact values.
    let report = service.shutdown();
    report.metrics.register_into(&registry);
    let text = registry.prometheus_text();
    assert!(text.contains(&format!("tssa_requests_completed_total {SUBMITTED}")));
}

#[test]
fn profiled_service_attributes_op_self_time_per_plan() {
    let profiler = Profiler::new();
    let workload = Workload::by_name("lstm").unwrap();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(2)
            .with_profiler(Some(profiler.clone())),
    );
    let inputs = workload.inputs(1, 4, 7);
    let model = service
        .loader(workload.source)
        .named("lstm")
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::unbatched(inputs.len()))
        .load()
        .unwrap();
    let tickets: Vec<_> = (0..6)
        .map(|_| service.submit(&model, inputs.clone()).unwrap())
        .collect();
    for t in tickets {
        t.wait().expect("request completes");
    }

    // Every executed op landed in the table under the model's plan label,
    // with a resolved op name and non-zero invocation counts.
    let snap = profiler.snapshot();
    assert!(!snap.entries.is_empty(), "profiler saw no ops");
    for (key, stat) in &snap.entries {
        assert_eq!(&*key.plan, "lstm");
        assert!(!stat.op.is_empty());
        assert!(stat.count > 0);
    }

    // The exposition carries the per-op self-time series and the
    // profiler's own merge cost.
    let text = service.prometheus();
    assert!(text.contains("tssa_op_self_us{"));
    assert!(text.contains("plan=\"lstm\""));
    assert!(text.contains("tssa_obs_profile_merge_us"));

    // Totals are monotone across scrapes even while workers churn sinks.
    let before = profiler.snapshot().total_self_ns();
    let more: Vec<_> = (0..4)
        .map(|_| service.submit(&model, inputs.clone()).unwrap())
        .collect();
    for t in more {
        t.wait().expect("request completes");
    }
    assert!(profiler.snapshot().total_self_ns() >= before);
    service.shutdown();
}

#[test]
fn default_plan_labels_name_pipeline_and_source() {
    let workload = Workload::by_name("yolact").unwrap();
    let service = Service::new(ServeConfig::default().with_workers(1));
    let inputs = workload.inputs(2, 0, 5);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    let label = model.label().to_string();
    assert!(
        label.starts_with("TensorSSA:"),
        "default label names the pipeline: {label}"
    );
    assert_eq!(label.len(), "TensorSSA:".len() + 8, "8-hex-digit suffix");
    // Same source, same pipeline → same label; the label is derived, not
    // random.
    let again = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    assert_eq!(again.label(), label);
}

#[test]
fn adaptive_degrade_compiles_the_fallback_plan() {
    let workload = Workload::by_name("yolov3").unwrap();
    // Adaptive degradation (no fixed p99) must still provision the
    // zero-pass fallback at load time, like the fixed trigger does.
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_adaptive_degrade(Some(AdaptiveDegrade::default()))
            .with_degrade_cooldown(Duration::from_millis(1)),
    );
    let inputs = workload.inputs(2, 0, 9);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    assert!(
        model.degraded_plan().is_some(),
        "adaptive degradation provisions the degraded twin"
    );
    // And the service still serves normally while the trigger is unarmed.
    let ticket = service.submit(&model, inputs).unwrap();
    ticket.wait().expect("request completes");
    assert_eq!(service.metrics().degraded_requests, 0);
}
