//! Chaos suite: 200+ deterministic seeded fault schedules driven through
//! the full service. Under every schedule — worker panics, compile stalls,
//! cache poisoning, admission bursts, slow executions, degradation, retry —
//! the invariants must hold:
//!
//! - **No silent drops.** Every accepted ticket reaches a terminal state
//!   (a hang here fails the suite by timeout), and the metric ledger
//!   reconciles: `resolved() == submitted`.
//! - **Fault accounting.** `faults_injected` in the snapshot equals the
//!   plan's own injection count, batch re-queues never exceed panics, and
//!   observed successes equal the `completed` counter.
//! - **Pool integrity.** Per-worker stats keep full pool strength through
//!   crashes and respawns.
//! - **Observability under chaos.** Every round runs fully traced into one
//!   shared [`StreamSink`] (NDJSON spans on disk, as a long production run
//!   would), and the sink must come out healthy: spans written, zero
//!   dropped to backpressure.
//! - **No cross-shape mixing.** Traffic is heterogeneous — batch sizes 2–4
//!   interleave through one class plan — and every successful response must
//!   carry exactly the rows of the shape it submitted. A CachePoison fault
//!   evicts the whole class (not one concrete shape), and the next load
//!   recompiles it.

use std::io::BufWriter;
use std::sync::Arc;
use std::time::Duration;

use tssa_backend::RtValue;
use tssa_serve::{
    silence_injected_panics_for_tests, BatchSpec, FaultKind, FaultPlan, PipelineKind, RetryPolicy,
    ServeConfig, ServeError, Service, StreamSink, TraceSink, Tracer,
};
use tssa_tensor::Tensor;

const SEEDS: u64 = 210;
const SOURCE: &str =
    "def f(x: Tensor):\n    y = x.clone()\n    y[:, 0:1] = sigmoid(x[:, 0:1])\n    return y\n";

fn inputs_at(b: usize) -> Vec<RtValue> {
    vec![RtValue::Tensor(Tensor::ones(&[b, 4]))]
}

/// Per-round tallies accumulated across the whole suite.
#[derive(Default)]
struct SuiteTotals {
    injected_by_kind: [u64; 6],
    requeues: u64,
    respawns: u64,
    retries: u64,
    degraded: u64,
    completed: u64,
    /// Deadline sheds plus waiter timeouts, from the deadline-mode rounds.
    deadline_outcomes: u64,
    /// Mid-round re-loads admitted by the resident shape class.
    class_hits: u64,
}

fn chaos_round(seed: u64, tracer: &Tracer, totals: &mut SuiteTotals) {
    let mode = seed % 4;
    let mut plan = FaultPlan::seeded(seed)
        .with_rate(FaultKind::WorkerPanic, 0.06, 48)
        .with_rate(FaultKind::QueueFullBurst, 0.10, 48)
        .with_rate(FaultKind::CachePoison, 0.25, 16)
        .with_rate(FaultKind::CompileStall, 0.30, 8)
        .with_rate(FaultKind::CompilePanic, 0.25, 4)
        .with_stall(Duration::from_micros(300))
        .with_slow_exec(Duration::from_micros(500));
    // Degradation and deadline rounds lean on slow executions to build a
    // queue backlog.
    plan = if mode == 1 || mode == 3 {
        plan.with_rate(FaultKind::SlowExec, 0.50, 64)
    } else {
        plan.with_rate(FaultKind::SlowExec, 0.12, 48)
    };
    if mode == 3 {
        // A slow execution must outlive every deadline (max 2.4ms) plus the
        // 2ms grace even in release builds, where the un-faulted path is
        // microseconds — otherwise deadline outcomes depend on the build
        // profile and host load instead of the schedule.
        plan = plan.with_slow_exec(Duration::from_millis(6));
    }
    let faults = plan.faults();

    let mut config = ServeConfig::default()
        .with_workers(2)
        .with_queue_depth(8)
        .with_max_batch(4)
        .with_max_wait(Duration::from_micros(500))
        .with_tracer(tracer.clone())
        .with_faults(faults.clone());
    if mode == 1 {
        config = config
            .with_degrade_p99(Some(Duration::from_micros(100)))
            .with_degrade_cooldown(Duration::from_millis(1));
    }
    if mode == 3 {
        // Tight grace so stalled executions resolve as waiter timeouts.
        config = config.with_timeout_grace(Duration::from_millis(2));
    }
    let service = Service::new(config);
    // An injected CompilePanic surfaces as a typed error on the leading
    // load; retry until a non-faulted arrival compiles (the schedule's
    // horizon is finite, so this terminates).
    let load = |b: usize| loop {
        match service
            .loader(SOURCE)
            .pipeline(PipelineKind::TensorSsa)
            .example(&inputs_at(b))
            .batch(BatchSpec::stacked(1, 1))
            .load()
        {
            Err(ServeError::CompilePanic) => continue,
            other => return other,
        }
    };
    let model = load(2).unwrap_or_else(|e| panic!("seed {seed}: load failed: {e}"));

    let mut observed_ok = 0u64;
    let mut observed_shed = 0u64;
    match mode {
        // Modes 0 and 1: raw submit/wait traffic over mixed batch sizes,
        // with periodic re-loads at never-yet-loaded shapes so class hits
        // (and therefore poison injections) happen mid-round.
        0 | 1 => {
            let mut tickets = Vec::new();
            for i in 0..18usize {
                if i % 6 == 5 {
                    // A class hit unless poisoned; poison evicts the whole
                    // class and the retry recompiles it — either way the
                    // load must succeed.
                    load(2 + (i / 6) % 3)
                        .unwrap_or_else(|e| panic!("seed {seed}: re-load failed: {e}"));
                }
                let b = 2 + i % 3;
                match service.submit(&model, inputs_at(b)) {
                    Ok(t) => tickets.push((b, t)),
                    Err(ServeError::QueueFull { .. }) => observed_shed += 1,
                    Err(other) => panic!("seed {seed}: unexpected admission error: {other}"),
                }
            }
            for (b, t) in tickets {
                match t.wait() {
                    Ok(resp) => {
                        observed_ok += 1;
                        let out = resp.outputs[0].as_tensor().expect("tensor output");
                        assert_eq!(
                            out.shape(),
                            [b, 4],
                            "seed {seed}: response rows must match the submitted shape"
                        );
                    }
                    // Canceled: batch crashed twice, or drained at shutdown.
                    Err(ServeError::Canceled) => {}
                    Err(other) => panic!("seed {seed}: unexpected terminal state: {other}"),
                }
            }
        }
        // Mode 2: the retry path. Transient sheds and cancellations are
        // absorbed by bounded retry; only typed failures surface.
        2 => {
            let policy = RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(2),
            };
            for i in 0..10usize {
                let b = 2 + i % 3;
                match service.submit_retry(&model, inputs_at(b), &policy) {
                    Ok(resp) => {
                        observed_ok += 1;
                        assert_eq!(
                            resp.outputs[0].as_tensor().expect("tensor output").shape(),
                            [b, 4],
                            "seed {seed}: retried response rows must match the submitted shape"
                        );
                    }
                    Err(ServeError::QueueFull { .. }) | Err(ServeError::Canceled) => {}
                    Err(other) => panic!("seed {seed}: unexpected retry outcome: {other}"),
                }
            }
        }
        // Mode 3: deadline-carrying traffic over the same fault schedule.
        // Requests that miss their deadline shed as DeadlineExceeded;
        // executions that outlive deadline + grace resolve as Timeout. The
        // ledger must still reconcile exactly — no silent drops.
        _ => {
            let mut tickets = Vec::new();
            for i in 0..18usize {
                let deadline = Duration::from_micros(1200 + 300 * (i % 5) as u64);
                let b = 2 + i % 3;
                match service.submit_with(&model, inputs_at(b), Some(deadline)) {
                    Ok(t) => tickets.push((b, t)),
                    Err(ServeError::QueueFull { .. }) => observed_shed += 1,
                    Err(other) => panic!("seed {seed}: unexpected admission error: {other}"),
                }
            }
            for (b, t) in tickets {
                match t.wait() {
                    Ok(resp) => {
                        observed_ok += 1;
                        let out = resp.outputs[0].as_tensor().expect("tensor output");
                        assert_eq!(
                            out.shape(),
                            [b, 4],
                            "seed {seed}: response rows must match the submitted shape"
                        );
                    }
                    Err(ServeError::DeadlineExceeded { .. })
                    | Err(ServeError::Timeout { .. })
                    | Err(ServeError::Canceled) => {}
                    Err(other) => panic!("seed {seed}: unexpected terminal state: {other}"),
                }
            }
        }
    }

    let report = service.shutdown();
    let metrics = &report.metrics;
    let plan = faults.plan().expect("plan is installed");

    // Ledger reconciliation: nothing dropped, nothing double-counted.
    assert_eq!(
        metrics.resolved(),
        metrics.submitted,
        "seed {seed}: ledger must reconcile\n{metrics}"
    );
    assert_eq!(
        metrics.completed, observed_ok,
        "seed {seed}: observed successes disagree with the completed counter"
    );
    if mode != 2 {
        assert_eq!(
            metrics.shed_queue_full, observed_shed,
            "seed {seed}: observed sheds disagree with the shed counter"
        );
    }
    // Fault accounting: the snapshot agrees with the plan's own count.
    assert_eq!(
        metrics.faults_injected,
        plan.injected_total(),
        "seed {seed}: snapshot and plan disagree on injected faults"
    );
    assert_eq!(
        metrics.cache.poisoned,
        plan.injected(FaultKind::CachePoison),
        "seed {seed}: cache poison accounting"
    );
    // Recovery bounds: at most one re-queue (and one respawn) per panic.
    let panics = plan.injected(FaultKind::WorkerPanic);
    assert!(
        metrics.requeues <= panics,
        "seed {seed}: {} requeues from {panics} panics",
        metrics.requeues
    );
    assert!(
        metrics.worker_respawns <= panics,
        "seed {seed}: {} respawns from {panics} panics",
        metrics.worker_respawns
    );
    assert_eq!(report.per_worker.len(), 2, "seed {seed}: pool strength");
    if mode != 1 {
        assert_eq!(metrics.degraded_requests, 0, "seed {seed}: degradation off");
    }
    if mode != 3 {
        assert_eq!(
            metrics.timeouts, 0,
            "seed {seed}: no deadlines, no timeouts"
        );
        assert_eq!(
            metrics.shed_deadline, 0,
            "seed {seed}: no deadlines, no deadline sheds"
        );
    }

    for kind in FaultKind::ALL {
        totals.injected_by_kind[kind.index()] += plan.injected(kind);
    }
    totals.requeues += metrics.requeues;
    totals.respawns += metrics.worker_respawns;
    totals.retries += metrics.retries;
    totals.degraded += metrics.degraded_requests;
    totals.completed += metrics.completed;
    totals.deadline_outcomes += metrics.shed_deadline + metrics.timeouts;
    totals.class_hits += metrics.cache.class_hits;
}

#[test]
fn two_hundred_seeded_schedules_never_drop_or_miscount() {
    silence_injected_panics_for_tests();
    // The whole suite streams spans to one NDJSON file, like a production
    // deployment shipping traces to disk for rotation.
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("chaos_spans.ndjson");
    let file = std::fs::File::create(&path).expect("create span stream");
    let sink = Arc::new(StreamSink::with_flush_every(BufWriter::new(file), 256));
    let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let mut totals = SuiteTotals::default();
    for seed in 0..SEEDS {
        chaos_round(seed, &tracer, &mut totals);
    }
    // The suite must actually exercise every fault kind and every recovery
    // path — a schedule that never fires proves nothing.
    for kind in FaultKind::ALL {
        assert!(
            totals.injected_by_kind[kind.index()] > 0,
            "suite never injected {}",
            kind.name()
        );
    }
    assert!(totals.requeues > 0, "suite never exercised batch re-queue");
    assert!(totals.respawns > 0, "suite never exercised worker respawn");
    assert!(totals.retries > 0, "suite never exercised bounded retry");
    assert!(totals.degraded > 0, "suite never entered degraded mode");
    assert!(
        totals.deadline_outcomes > 0,
        "suite never exercised deadlines/timeouts"
    );
    assert!(
        totals.class_hits > 0,
        "suite never re-loaded through a shape class"
    );
    assert!(
        totals.completed > SEEDS * 5,
        "most traffic completes despite the chaos"
    );

    // Sink health: the streaming sink absorbed every span the suite
    // produced — nothing lost to write errors or backpressure — and the
    // stream on disk is parseable NDJSON cut at line boundaries.
    sink.flush().expect("flush span stream");
    assert_eq!(sink.dropped(), 0, "chaos suite dropped spans");
    assert!(
        sink.written() > SEEDS * 10,
        "chaos suite wrote only {} spans",
        sink.written()
    );
    let text = std::fs::read_to_string(&path).expect("read span stream");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, sink.written());
    for line in lines.iter().step_by(97) {
        tssa_obs::json::parse(line).expect("span stream line is valid JSON");
    }
}

/// Determinism spot-check: the same seed drives the same injection schedule
/// (the scheduling decision is a pure function of seed and arrival index,
/// independent of thread interleaving).
#[test]
fn same_seed_same_schedule() {
    let a = FaultPlan::seeded(7)
        .with_rate(FaultKind::WorkerPanic, 0.2, 32)
        .with_rate(FaultKind::SlowExec, 0.4, 32);
    let b = FaultPlan::seeded(7)
        .with_rate(FaultKind::WorkerPanic, 0.2, 32)
        .with_rate(FaultKind::SlowExec, 0.4, 32);
    for kind in [FaultKind::WorkerPanic, FaultKind::SlowExec] {
        assert_eq!(a.scheduled(kind), b.scheduled(kind));
    }
}
