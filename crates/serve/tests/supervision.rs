//! Worker supervision: a panic mid-batch must not lose the batch or shrink
//! the pool. The supervisor re-queues the in-flight batch exactly once,
//! respawns the worker on the same slot, and graceful shutdown still drains
//! clean with full per-worker accounting.

use std::sync::Once;
use std::time::Duration;

use tssa_serve::{
    BatchSpec, FaultKind, FaultPlan, PipelineKind, ServeConfig, ServeError, Service, Tracer,
    INJECTED_PANIC,
};
use tssa_workloads::Workload;

/// Keep injected worker panics out of the test output; real panics still
/// print through the default hook.
fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains(INJECTED_PANIC))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains(INJECTED_PANIC));
            if !injected {
                default(info);
            }
        }));
    });
}

#[test]
fn panicked_worker_requeues_batch_once_and_pool_recovers() {
    silence_injected_panics();
    const FOLLOW_UPS: usize = 6;
    let workload = Workload::by_name("yolov3").unwrap();
    // The very first batch any worker picks up panics mid-execution; every
    // later batch (including the re-queued first one) runs normally.
    let faults = FaultPlan::script().at(FaultKind::WorkerPanic, 0).faults();
    let (tracer, sink) = Tracer::ring(256);
    let service = Service::new(
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(1)
            .with_tracer(tracer)
            .with_faults(faults.clone()),
    );
    let inputs = workload.inputs(2, 0, 3);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();

    // The request whose batch gets the panic still completes successfully —
    // through the re-queue, on the respawned worker.
    let first = service.submit(&model, inputs.clone()).unwrap();
    let response = first.wait().expect("re-queued batch completes");
    assert_eq!(response.coalesced, 1);

    // The pool is back to full strength: follow-up traffic flows.
    let tickets: Vec<_> = (0..FOLLOW_UPS)
        .map(|_| service.submit(&model, inputs.clone()).unwrap())
        .collect();
    for t in tickets {
        t.wait().expect("pool serves normally after respawn");
    }

    let report = service.shutdown();
    assert_eq!(report.metrics.completed, 1 + FOLLOW_UPS as u64);
    assert_eq!(report.metrics.resolved(), 1 + FOLLOW_UPS as u64);
    assert_eq!(report.metrics.requeues, 1, "batch re-queued exactly once");
    assert_eq!(report.metrics.worker_respawns, 1);
    assert_eq!(report.metrics.faults_injected, 1);
    assert_eq!(faults.plan().unwrap().injected(FaultKind::WorkerPanic), 1);
    assert_eq!(
        report.per_worker.len(),
        2,
        "a slot's stats survive its worker's crash"
    );

    // The trace records both the fault and the recovery.
    let records = sink.snapshot();
    assert!(
        records
            .iter()
            .any(|r| r.name == "batch" && r.is_marked("fault:worker_panic")),
        "panicked batch span carries the fault mark"
    );
    assert!(
        records
            .iter()
            .any(|r| r.name == "request" && r.is_marked("requeued")),
        "re-queued request span carries the recovery mark"
    );
    assert!(
        records
            .iter()
            .any(|r| r.name == "batch" && r.is_marked("requeue_attempt")),
        "second batch attempt is marked as a requeue"
    );
}

#[test]
fn second_crash_on_same_batch_fails_typed_not_hangs() {
    silence_injected_panics();
    let workload = Workload::by_name("yolov3").unwrap();
    // Occurrences 0 and 1: the original attempt panics, then the re-queued
    // attempt panics too. The batch must terminate with Canceled, not loop
    // or hang.
    let faults = FaultPlan::script()
        .at(FaultKind::WorkerPanic, 0)
        .at(FaultKind::WorkerPanic, 1)
        .faults();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_faults(faults),
    );
    let inputs = workload.inputs(2, 0, 3);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    let ticket = service.submit(&model, inputs.clone()).unwrap();
    match ticket.wait() {
        Err(ServeError::Canceled) => {}
        other => panic!("expected Canceled after double crash, got {other:?}"),
    }
    // Service still works for fresh traffic afterwards.
    let ok = service.submit(&model, inputs).unwrap();
    ok.wait().expect("pool recovers after double crash");
    let report = service.shutdown();
    assert_eq!(report.metrics.requeues, 1);
    assert_eq!(report.metrics.worker_respawns, 2);
    assert_eq!(report.metrics.canceled, 1);
    assert_eq!(report.metrics.completed, 1);
    assert_eq!(report.metrics.resolved(), 2, "{}", report.metrics);
    // Shutdown drains clean even with panics in the history.
    std::thread::sleep(Duration::from_millis(1));
}
