//! Cross-shape differential suite: one cached class plan must serve every
//! admitted batch size with outputs indistinguishable from a per-shape cold
//! compile.
//!
//! This is the certification the shape-class cache rests on. The class key
//! erases polymorphic dims, so a plan compiled at batch 2 serves batch 7 —
//! but only legitimately if the certifier's polymorphism claim is *true*.
//! For each paper workload the suite sweeps ≥ 6 batch sizes through one
//! service (asserting exactly one compile for the whole sweep) and checks
//! every output against a fresh service that cold-compiles at that exact
//! shape.

use tssa_backend::RtValue;
use tssa_serve::{ArgRole, BatchSpec, PipelineKind, ServeConfig, Service, Tracer};
use tssa_workloads::{all_workloads, Workload};

// Batch 1 included deliberately: a class plan must not silently assume a
// batch dim ≥ the deriving example's.
const BATCHES: [usize; 6] = [1, 2, 3, 4, 6, 8];

/// All-Shared spec: every request runs unbatched, so the differential
/// comparison exercises the plan itself rather than the batcher.
fn shared_spec(w: &Workload) -> BatchSpec {
    BatchSpec {
        args: vec![ArgRole::Shared; w.inputs(0, 0, 1).len()],
        outputs: Vec::new(),
    }
}

fn rt_close(a: &RtValue, b: &RtValue) -> bool {
    match (a, b) {
        (RtValue::Tensor(x), RtValue::Tensor(y)) => x.shape() == y.shape() && x.allclose(y, 1e-6),
        (RtValue::Int(x), RtValue::Int(y)) => x == y,
        (RtValue::Bool(x), RtValue::Bool(y)) => x == y,
        (RtValue::Float(x), RtValue::Float(y)) => (x - y).abs() <= 1e-9,
        (RtValue::List(xs), RtValue::List(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| rt_close(x, y))
        }
        _ => false,
    }
}

/// Run `inputs` through a fresh service that compiles at exactly this
/// shape — the ground truth the class plan is compared against.
fn cold_reference(w: &Workload, inputs: &[RtValue]) -> Vec<RtValue> {
    let service = Service::new(ServeConfig::default().with_workers(1));
    let model = service
        .loader(w.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(inputs)
        .batch(shared_spec(w))
        .load()
        .expect("reference load");
    let out = service
        .submit(&model, inputs.to_vec())
        .expect("reference submit")
        .wait()
        .expect("reference wait")
        .outputs;
    service.shutdown();
    out
}

#[test]
fn one_class_plan_serves_every_batch_size() {
    for w in all_workloads() {
        let (tracer, sink) = Tracer::ring(8192);
        let service = Service::new(ServeConfig::default().with_workers(1).with_tracer(tracer));
        let mut sweep: Vec<(usize, Vec<RtValue>, Vec<RtValue>)> = Vec::new();
        for &b in &BATCHES {
            let inputs = w.inputs(b, 0, 9);
            let model = service
                .loader(w.source)
                .pipeline(PipelineKind::TensorSsa)
                .example(&inputs)
                .batch(shared_spec(&w))
                .load()
                .unwrap_or_else(|e| panic!("{} @ batch {b}: {e}", w.name));
            assert!(
                model.class().is_some(),
                "{}: class-eligible (fully polymorphic signature)",
                w.name
            );
            let outputs = service
                .submit(&model, inputs.clone())
                .unwrap()
                .wait()
                .unwrap_or_else(|e| panic!("{} @ batch {b}: {e}", w.name))
                .outputs;
            sweep.push((b, inputs, outputs));
        }
        let stats = service.cache().stats();
        assert_eq!(
            stats.misses, 1,
            "{}: one compile serves the whole sweep: {stats:?}",
            w.name
        );
        assert!(
            stats.class_hits >= (BATCHES.len() - 1) as u64,
            "{}: every later load is a class hit: {stats:?}",
            w.name
        );
        service.shutdown();
        let compiles = sink
            .snapshot()
            .iter()
            .filter(|r| r.name.starts_with("compile:"))
            .count();
        assert_eq!(compiles, 1, "{}: exactly one compile span", w.name);

        // Differential check: the class plan's outputs at every batch size
        // must match a cold compile specialized to that exact shape.
        for (b, inputs, outputs) in sweep {
            let want = cold_reference(&w, &inputs);
            assert_eq!(
                outputs.len(),
                want.len(),
                "{} @ batch {b}: output arity",
                w.name
            );
            for (i, (got, want)) in outputs.iter().zip(&want).enumerate() {
                assert!(
                    rt_close(got, want),
                    "{} @ batch {b}: output {i} diverges from per-shape cold compile",
                    w.name
                );
            }
        }
    }
}

#[test]
fn hot_bucket_respecializes_with_generic_fallback() {
    let w = Workload::by_name("yolact").unwrap();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_specialize_after(Some(3))
            .with_max_specializations(2),
    );
    let model = service
        .loader(w.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&w.inputs(2, 0, 5))
        .batch(shared_spec(&w))
        .load()
        .unwrap();
    let entry = model.class().expect("class-eligible").clone();
    assert_eq!(entry.specialization_count(), 0);

    let run = |b: usize, seed: u64| {
        let inputs = w.inputs(b, 0, seed);
        let out = service
            .submit(&model, inputs.clone())
            .unwrap()
            .wait()
            .unwrap()
            .outputs;
        (inputs, out)
    };

    // Three hits on batch 4 cross the threshold: a dedicated plan lands,
    // and the generic plan stays resident as fallback.
    run(4, 11);
    run(4, 12);
    let (hot_in, hot_out) = run(4, 13);
    assert_eq!(entry.specialization_count(), 1);
    assert_eq!(entry.specialized_buckets(), vec!["4x48x48".to_string()]);
    assert_eq!(service.cache().stats().specializations, 1);

    // The specialized route must agree with a per-shape cold compile.
    let want = cold_reference(&w, &hot_in);
    for (got, want) in hot_out.iter().zip(&want) {
        assert!(rt_close(got, want), "specialized plan diverges");
    }

    // A shape with no dedicated plan rides the generic fallback.
    let (cold_in, cold_out) = run(6, 21);
    let want = cold_reference(&w, &cold_in);
    for (got, want) in cold_out.iter().zip(&want) {
        assert!(rt_close(got, want), "generic fallback diverges");
    }

    // Heat a second bucket to its own plan, then a third: the cap (K = 2)
    // evicts the coldest specialization, never the generic plan.
    run(6, 22);
    run(6, 23);
    assert_eq!(entry.specialization_count(), 2);
    run(8, 31);
    run(8, 32);
    run(8, 33);
    assert_eq!(
        entry.specialization_count(),
        2,
        "cap holds: {:?}",
        entry.specialized_buckets()
    );
    assert!(
        entry.specialized_buckets().contains(&"8x48x48".to_string()),
        "the newly hot bucket owns a plan"
    );
    assert_eq!(service.cache().stats().specializations, 3);

    // Every bucket — specialized, evicted, never-specialized — still serves.
    for b in [2, 4, 6, 8] {
        run(b, 40 + b as u64);
    }
    let census = entry.census();
    assert!(census
        .iter()
        .any(|(label, hits)| label == "4x48x48" && *hits >= 4));
    service.shutdown();
}

#[test]
fn compatible_shapes_stack_pad_free_in_one_batch() {
    let w = Workload::by_name("yolact").unwrap();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(4)
            .with_max_wait(std::time::Duration::from_millis(100)),
    );
    let model = service
        .loader(w.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&w.inputs(2, 0, 5))
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    // Two requests from *different* concrete shapes of the class — only the
    // batch dim differs, so they concatenate with zero padding.
    let small = w.inputs(2, 0, 61);
    let large = w.inputs(3, 0, 62);
    let t_small = service.submit(&model, small.clone()).unwrap();
    let t_large = service.submit(&model, large.clone()).unwrap();
    let r_small = t_small.wait().unwrap();
    let r_large = t_large.wait().unwrap();
    assert_eq!(
        r_small.outputs[0].as_tensor().unwrap().shape()[0],
        2,
        "each request gets its own rows back"
    );
    assert_eq!(r_large.outputs[0].as_tensor().unwrap().shape()[0], 3);
    assert_eq!(
        r_small.coalesced + r_large.coalesced,
        4,
        "both requests shared one two-request batch"
    );
    for (inputs, response) in [(&small, &r_small), (&large, &r_large)] {
        let want = cold_reference(&w, inputs);
        for (got, want) in response.outputs.iter().zip(&want) {
            assert!(rt_close(got, want), "stacked execution diverges");
        }
    }
    let metrics = service.shutdown().metrics;
    assert_eq!(metrics.batches, 1, "one batch executed both shapes");
    assert_eq!(metrics.max_batch, 2);
}
