//! Single-flight contract of the plan cache: M concurrent threads asking
//! for the same cold plan run the compiler exactly once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use tssa_backend::RtValue;
use tssa_serve::{ArgSig, BatchSpec, PipelineKind, PlanCache, PlanKey, ServeConfig, Service};
use tssa_tensor::Tensor;
use tssa_workloads::Workload;

fn key(tag: u64) -> PlanKey {
    PlanKey {
        source_hash: tag,
        pipeline: PipelineKind::TensorSsa,
        signature: vec![ArgSig::Int],
    }
}

#[test]
fn m_threads_compile_once() {
    const THREADS: usize = 8;
    let cache = Arc::new(PlanCache::new(4));
    let compiles = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let workload = Workload::by_name("yolov3").unwrap();

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let compiles = Arc::clone(&compiles);
            let barrier = Arc::clone(&barrier);
            let source = workload.source;
            std::thread::spawn(move || {
                barrier.wait();
                cache
                    .get_or_compile(&key(1), || {
                        compiles.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window: every other thread must
                        // arrive while this compilation is still in flight.
                        std::thread::sleep(Duration::from_millis(100));
                        let graph = tssa_frontend::compile(source)?;
                        Ok(PipelineKind::TensorSsa.compile(&graph))
                    })
                    .unwrap()
            })
        })
        .collect();

    let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(compiles.load(Ordering::SeqCst), 1, "compiler must run once");
    for p in &plans {
        assert!(Arc::ptr_eq(p, &plans[0]), "all threads share one plan");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(
        stats.coalesced + stats.hits,
        (THREADS - 1) as u64,
        "everyone else waited on or reused the single flight: {stats:?}"
    );
    assert_eq!(stats.entries, 1);
}

#[test]
fn service_load_coalesces_concurrent_loads() {
    const THREADS: usize = 6;
    let service = Arc::new(Service::new(ServeConfig::default().with_workers(1)));
    let workload = Workload::by_name("yolact").unwrap();
    let example = workload.inputs(2, 0, 7);
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let example = example.clone();
            let source = workload.source;
            std::thread::spawn(move || {
                barrier.wait();
                service
                    .loader(source)
                    .pipeline(PipelineKind::TensorSsa)
                    .example(&example)
                    .batch(BatchSpec::stacked(1, 1))
                    .load()
                    .unwrap()
            })
        })
        .collect();
    let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for m in &models {
        assert!(Arc::ptr_eq(m.plan(), models[0].plan()));
    }
    let stats = service.cache().stats();
    assert_eq!(stats.misses, 1, "{stats:?}");

    // A different batch size is *not* a different plan: the certified
    // shape class admits it, so the load is a class hit, not a compile.
    let other = workload.inputs(4, 0, 7);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&other)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    assert!(Arc::ptr_eq(model.plan(), models[0].plan()));
    let stats = service.cache().stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert!(stats.class_hits >= 1, "{stats:?}");
}

#[test]
fn eviction_recompiles_cold_plans() {
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_cache_capacity(1),
    );
    let spec = || BatchSpec::stacked(1, 1);
    let example = [RtValue::Tensor(Tensor::ones(&[2, 4]))];
    let src_a =
        "def a(x: Tensor):\n    y = x.clone()\n    y[:, 0:2] = sigmoid(x[:, 0:2])\n    return y\n";
    let src_b =
        "def b(x: Tensor):\n    y = x.clone()\n    y[:, 0:2] = tanh(x[:, 0:2])\n    return y\n";
    let load = |src: &str| {
        service
            .loader(src)
            .pipeline(PipelineKind::TensorSsa)
            .example(&example)
            .batch(spec())
            .load()
            .unwrap()
    };
    load(src_a);
    load(src_b);
    let stats = service.cache().stats();
    assert_eq!(
        (stats.misses, stats.evictions, stats.entries),
        (2, 1, 1),
        "{stats:?}"
    );
    // `a`'s concrete slot was evicted by `b`, but its shape class (which
    // the LRU does not govern) still admits the reload — no third compile.
    load(src_a);
    let stats = service.cache().stats();
    assert_eq!(stats.misses, 2, "{stats:?}");
    assert!(stats.class_hits >= 1, "{stats:?}");
}
