//! Always-on sampled tracing through the full service: with head-sampling
//! at rate 0 every plain trace is dropped, yet the tail-keep rules retain
//! the complete span tree of every fault-marked and timed-out request —
//! the traces an operator actually needs are never sampled away.

use std::sync::Arc;
use std::time::Duration;

use tssa_backend::RtValue;
use tssa_obs::{RingSink, SpanRecord, DEFAULT_KEEP_MARKS};
use tssa_serve::{
    BatchSpec, FaultKind, FaultPlan, PipelineKind, Sampler, ServeConfig, ServeError, Service,
    TraceSink, Tracer,
};
use tssa_tensor::Tensor;

const SOURCE: &str =
    "def f(x: Tensor):\n    y = x.clone()\n    y[:, 0:1] = sigmoid(x[:, 0:1])\n    return y\n";

fn example() -> Vec<RtValue> {
    vec![RtValue::Tensor(Tensor::ones(&[2, 4]))]
}

fn has_keep_mark(r: &SpanRecord) -> bool {
    r.counters.iter().any(|(name, value)| {
        *value != 0 && (name.starts_with("fault:") || DEFAULT_KEEP_MARKS.contains(&name.as_str()))
    })
}

#[test]
fn rate_zero_retains_fault_marked_request_trees_in_full() {
    let sink = Arc::new(RingSink::new(4096));
    let tracer = Tracer::sampled(
        Arc::clone(&sink) as Arc<dyn TraceSink>,
        Sampler::new(42, 0.0),
    );
    // The first execution stalls and marks its batch span `fault:slow_exec`;
    // every other request (and the load) is clean.
    let faults = FaultPlan::script()
        .at(FaultKind::SlowExec, 0)
        .with_slow_exec(Duration::from_micros(200))
        .faults();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_tracer(tracer.clone())
            .with_faults(faults),
    );
    let inputs = example();
    let model = service
        .loader(SOURCE)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    for _ in 0..6 {
        service
            .submit(&model, inputs.clone())
            .unwrap()
            .wait()
            .expect("request completes");
    }
    drop(service);

    let stats = tracer.sampler_stats().expect("sampled tracer");
    assert_eq!(stats.head_kept, 0, "rate 0 head-keeps nothing");
    assert_eq!(stats.tail_kept, 1, "exactly the faulted trace is kept");
    assert!(
        stats.dropped_traces >= 6,
        "clean requests and the load trace are dropped"
    );

    // The kept trace is the faulted request's *whole* tree: one root, and
    // the queue/batch/exec children all chained to it.
    let spans = sink.snapshot();
    let roots: Vec<&SpanRecord> = spans.iter().filter(|r| r.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "one kept root in {} spans", spans.len());
    let root = roots[0];
    assert_eq!(root.name, "request");
    for r in &spans {
        assert_eq!(r.root, root.id, "kept spans all belong to the kept trace");
    }
    for name in ["queue", "batch", "exec"] {
        assert!(
            spans.iter().any(|r| r.name == name),
            "kept tree is missing its `{name}` span"
        );
    }
    assert!(
        spans.iter().any(has_keep_mark),
        "kept trace carries the fault mark that saved it"
    );
}

#[test]
fn rate_zero_retains_timed_out_request_trees() {
    let sink = Arc::new(RingSink::new(4096));
    let tracer = Tracer::sampled(
        Arc::clone(&sink) as Arc<dyn TraceSink>,
        Sampler::new(7, 0.0),
    );
    // A 50ms stall against a 5ms deadline + 1ms grace: the waiter gives up
    // long before the worker finishes, so the late completion is discarded
    // and the root span is marked `timed_out`. (If the machine is so loaded
    // the request expires before execution starts, the root carries
    // `deadline_exceeded` instead — also a tail-keep mark.)
    let faults = FaultPlan::script()
        .at(FaultKind::SlowExec, 0)
        .with_slow_exec(Duration::from_millis(50))
        .faults();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_timeout_grace(Duration::from_millis(1))
            .with_tracer(tracer.clone())
            .with_faults(faults),
    );
    let inputs = example();
    let model = service
        .loader(SOURCE)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    match service
        .submit_with(&model, inputs, Some(Duration::from_millis(5)))
        .unwrap()
        .wait()
    {
        Err(ServeError::Timeout { .. }) | Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expected a timeout-class outcome, got {other:?}"),
    }
    // Joining the pool guarantees the late worker completion (and the root
    // span it records) has landed.
    drop(service);

    let stats = tracer.sampler_stats().expect("sampled tracer");
    assert_eq!(stats.tail_kept, 1, "the timed-out trace is kept");
    let spans = sink.snapshot();
    let roots: Vec<&SpanRecord> = spans.iter().filter(|r| r.parent.is_none()).collect();
    assert_eq!(roots.len(), 1);
    let root = roots[0];
    assert_eq!(root.name, "request");
    assert!(
        has_keep_mark(root),
        "root carries timed_out/deadline_exceeded: {:?}",
        root.counters
    );
    for r in &spans {
        assert_eq!(r.root, root.id);
    }
}
