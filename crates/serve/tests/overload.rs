//! Overload behavior: under sustained pressure every request either
//! completes or comes back with a *typed* [`ServeError`] — never a panic,
//! never a silently dropped ticket — and shutdown drains to zero.

use std::time::Duration;

use tssa_serve::{BatchSpec, PipelineKind, ServeConfig, ServeError, Service};
use tssa_workloads::Workload;

#[test]
fn queue_full_sheds_with_typed_error_and_rest_complete() {
    const OFFERED: usize = 200;
    let workload = Workload::by_name("yolov3").unwrap();
    // One worker, shallow queue, no batching: overload is guaranteed.
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(2)
            .with_max_batch(1),
    );
    let inputs = workload.inputs(4, 0, 3);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();

    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for _ in 0..OFFERED {
        match service.submit(&model, inputs.clone()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QueueFull { depth }) => {
                assert_eq!(depth, 2);
                shed += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert!(shed > 0, "queue depth 2 with 200 offered must shed");
    let accepted = tickets.len();
    for t in tickets {
        t.wait().expect("accepted requests complete successfully");
    }
    let report = service.shutdown();
    assert_eq!(report.metrics.completed, accepted as u64);
    assert_eq!(report.metrics.shed_queue_full, shed as u64);
    assert_eq!(report.metrics.submitted, OFFERED as u64);
    assert_eq!(
        report.metrics.resolved(),
        OFFERED as u64,
        "{}",
        report.metrics
    );
    assert!(report.total.ops_executed > 0);
}

#[test]
fn expired_deadline_returns_deadline_exceeded() {
    let workload = Workload::by_name("yolact").unwrap();
    let service = Service::new(ServeConfig::default().with_workers(1));
    let inputs = workload.inputs(2, 0, 5);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    let ticket = service
        .submit_with(&model, inputs, Some(Duration::ZERO))
        .unwrap();
    match ticket.wait() {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let snapshot = service.metrics();
    assert_eq!(snapshot.shed_deadline, 1);
}

#[test]
fn malformed_inputs_rejected_at_admission() {
    let workload = Workload::by_name("yolov3").unwrap();
    let service = Service::new(ServeConfig::default().with_workers(1));
    let inputs = workload.inputs(2, 0, 5);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    // Wrong arity is refused synchronously with a typed error.
    match service.submit(&model, Vec::new()) {
        Err(ServeError::InvalidRequest(_)) => {}
        other => panic!("expected InvalidRequest, got {:?}", other.err()),
    }
    // Bad model source is a typed frontend error, not a panic.
    match service
        .loader("def broken(")
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
    {
        Err(ServeError::Frontend(_)) => {}
        other => panic!("expected Frontend error, got {:?}", other.err()),
    }
    // A loader without a batching contract is refused with a typed error.
    match service.loader(workload.source).example(&inputs).load() {
        Err(ServeError::InvalidRequest(_)) => {}
        other => panic!("expected InvalidRequest, got {:?}", other.err()),
    }
}

#[test]
fn shutdown_drains_queued_work() {
    const SUBMITTED: usize = 12;
    let workload = Workload::by_name("fcos").unwrap();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(4)
            .with_max_wait(Duration::from_millis(50)),
    );
    let inputs = workload.inputs(2, 0, 9);
    let spec = BatchSpec {
        args: vec![
            tssa_serve::ArgRole::Stacked,
            tssa_serve::ArgRole::Stacked,
            tssa_serve::ArgRole::Stacked,
            tssa_serve::ArgRole::Shared,
        ],
        outputs: vec![tssa_serve::ArgRole::Stacked, tssa_serve::ArgRole::Stacked],
    };
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(spec)
        .load()
        .unwrap();
    let tickets: Vec<_> = (0..SUBMITTED)
        .map(|_| service.submit(&model, inputs.clone()).unwrap())
        .collect();
    // Shut down immediately: queued and binned requests must still drain.
    let report = service.shutdown();
    let mut completed = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(_) => completed += 1,
            Err(ServeError::Canceled) => {}
            Err(other) => panic!("unexpected terminal state: {other}"),
        }
    }
    assert_eq!(completed as u64, report.metrics.completed);
    assert_eq!(
        report.metrics.resolved(),
        SUBMITTED as u64,
        "{}",
        report.metrics
    );
    assert_eq!(report.per_worker.len(), 2);
}
