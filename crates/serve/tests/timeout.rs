//! Request and load timeouts: a deadline-carrying waiter must return within
//! bounded wall-clock even when the executor wedges, the late result is
//! discarded (span marked `timed_out`) rather than double-counted, and a
//! compile budget turns a stalled load into a synchronous typed error.

use std::time::{Duration, Instant};

use tssa_serve::{
    BatchSpec, FaultKind, FaultPlan, PipelineKind, ServeConfig, ServeError, Service, Tracer,
};
use tssa_workloads::Workload;

#[test]
fn stuck_execution_times_out_within_bounded_wall_clock() {
    let workload = Workload::by_name("yolov3").unwrap();
    // The first execution sleeps 400ms; the waiter's budget is
    // deadline (60ms) + grace (20ms) = 80ms.
    let faults = FaultPlan::script()
        .at(FaultKind::SlowExec, 0)
        .with_slow_exec(Duration::from_millis(400))
        .faults();
    let (tracer, sink) = Tracer::ring(64);
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_timeout_grace(Duration::from_millis(20))
            .with_tracer(tracer)
            .with_faults(faults),
    );
    let inputs = workload.inputs(2, 0, 3);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();

    let started = Instant::now();
    let ticket = service
        .submit_with(&model, inputs, Some(Duration::from_millis(60)))
        .unwrap();
    let outcome = ticket.wait();
    let elapsed = started.elapsed();
    match outcome {
        Err(ServeError::Timeout { waited }) => {
            assert!(
                waited >= Duration::from_millis(60),
                "timeout only past the deadline, waited {waited:?}"
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_millis(350),
        "waiter returned in {elapsed:?}, well before the 400ms stall ended"
    );

    // Shutdown joins the stalled worker; its late Ok result was discarded.
    let report = service.shutdown();
    assert_eq!(report.metrics.timeouts, 1);
    assert_eq!(
        report.metrics.completed, 0,
        "late result not double-counted"
    );
    assert_eq!(report.metrics.faults_injected, 1);
    assert_eq!(report.metrics.resolved(), 1, "{}", report.metrics);

    let records = sink.snapshot();
    assert!(
        records
            .iter()
            .any(|r| r.name == "request" && r.is_marked("timed_out")),
        "discarded completion marks the request span timed_out"
    );
    assert!(
        records
            .iter()
            .any(|r| r.name == "batch" && r.is_marked("fault:slow_exec")),
        "injected stall is visible on the batch span"
    );
}

#[test]
fn result_arriving_within_grace_is_delivered_not_timed_out() {
    let workload = Workload::by_name("yolov3").unwrap();
    let service = Service::new(ServeConfig::default().with_workers(1).with_max_batch(1));
    let inputs = workload.inputs(2, 0, 3);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    // A generous deadline on a fast model: the normal path is untouched by
    // the timeout machinery.
    let ticket = service
        .submit_with(&model, inputs, Some(Duration::from_secs(5)))
        .unwrap();
    ticket.wait().expect("fast request completes normally");
    let report = service.shutdown();
    assert_eq!(report.metrics.timeouts, 0);
    assert_eq!(report.metrics.completed, 1);
}

#[test]
fn stalled_compile_fails_load_deadline_but_caches_the_plan() {
    let workload = Workload::by_name("yolov3").unwrap();
    let faults = FaultPlan::script()
        .at(FaultKind::CompileStall, 0)
        .with_stall(Duration::from_millis(60))
        .faults();
    let (tracer, sink) = Tracer::ring(64);
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_tracer(tracer)
            .with_faults(faults),
    );
    let inputs = workload.inputs(2, 0, 3);
    match service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .deadline(Duration::from_millis(5))
        .load()
    {
        Err(ServeError::Timeout { waited }) => {
            assert!(
                waited >= Duration::from_millis(60),
                "stall dominates: {waited:?}"
            );
        }
        other => panic!("expected Timeout, got {:?}", other.err()),
    }
    // The compiled plan landed in the cache anyway: the retry is a hit and
    // sails under the same deadline.
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::stacked(1, 1))
        .deadline(Duration::from_millis(5))
        .load()
        .expect("second load is a cache hit under the deadline");
    let ticket = service.submit(&model, inputs).unwrap();
    ticket.wait().expect("model serves after the stalled load");

    let report = service.shutdown();
    // The retry is served by the shape class the first (timed-out) load
    // formed — still exactly one hit, zero recompiles.
    assert_eq!(
        report.metrics.cache.hits + report.metrics.cache.class_hits,
        1,
        "{:?}",
        report.metrics.cache
    );
    assert_eq!(report.metrics.faults_injected, 1);
    // Load timeouts are synchronous — the request-outcome reconciliation
    // stays untouched.
    assert_eq!(report.metrics.timeouts, 0);
    assert_eq!(report.metrics.resolved(), 1, "{}", report.metrics);

    let records = sink.snapshot();
    assert!(
        records.iter().any(|r| r.name == "request:load"
            && r.is_marked("timed_out")
            && r.is_marked("fault:compile_stall")),
        "stalled load span carries both the fault and the timeout mark"
    );
}
