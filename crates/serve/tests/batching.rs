//! Dynamic batching must be invisible to callers: for models that are
//! elementwise over the batch dimension, a request's outputs are
//! *bit-for-bit* identical whether it ran alone or coalesced into a batch.

use std::time::Duration;

use tssa_backend::{DeviceProfile, RtValue};
use tssa_serve::{ArgRole, BatchSpec, PipelineKind, ServeConfig, Service};
use tssa_workloads::Workload;

/// Batch contracts for the three CV workloads whose computation is
/// elementwise over dimension 0.
fn spec_for(name: &str) -> BatchSpec {
    match name {
        "yolov3" => BatchSpec::stacked(1, 1),
        "yolact" => BatchSpec::stacked(1, 1),
        "fcos" => BatchSpec {
            args: vec![
                ArgRole::Stacked, // cls
                ArgRole::Stacked, // ctr
                ArgRole::Stacked, // reg
                ArgRole::Shared,  // anchor points, identical per request
            ],
            outputs: vec![ArgRole::Stacked, ArgRole::Stacked],
        },
        other => panic!("no batch spec for {other}"),
    }
}

#[test]
fn batched_equals_sequential_bit_for_bit() {
    const REQUESTS: usize = 5;
    for name in ["yolov3", "yolact", "fcos"] {
        let workload = Workload::by_name(name).unwrap();
        let spec = spec_for(name);
        // Per-request inputs: same shapes (same plan), different data.
        // fcos's shared `points` argument must be identical across requests,
        // which `inputs(batch, seq, seed)` guarantees only for equal seeds —
        // so splice one request's points into all of them.
        let mut all_inputs: Vec<Vec<RtValue>> = (0..REQUESTS)
            .map(|i| workload.inputs(2, 0, 1000 + i as u64))
            .collect();
        if name == "fcos" {
            let shared_points = all_inputs[0][3].clone();
            for inputs in &mut all_inputs {
                inputs[3] = shared_points.clone();
            }
        }

        // A wide-open batching window and a single worker force every
        // request into one coalesced execution.
        let service = Service::new(
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(REQUESTS)
                .with_max_wait(Duration::from_millis(250)),
        );
        let model = service
            .loader(workload.source)
            .pipeline(PipelineKind::TensorSsa)
            .example(&all_inputs[0])
            .batch(spec)
            .load()
            .unwrap();

        // Sequential reference: each request run alone through the same plan.
        let references: Vec<Vec<RtValue>> = all_inputs
            .iter()
            .map(|inputs| {
                model
                    .plan()
                    .run(DeviceProfile::consumer(), inputs)
                    .unwrap()
                    .0
            })
            .collect();

        let tickets: Vec<_> = all_inputs
            .iter()
            .map(|inputs| service.submit(&model, inputs.clone()).unwrap())
            .collect();
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();

        assert!(
            responses.iter().any(|r| r.coalesced > 1),
            "{name}: batching never engaged (coalesced sizes: {:?})",
            responses.iter().map(|r| r.coalesced).collect::<Vec<_>>()
        );
        for (i, (response, reference)) in responses.iter().zip(&references).enumerate() {
            assert_eq!(
                response.outputs.len(),
                reference.len(),
                "{name} req {i}: arity"
            );
            for (j, (got, want)) in response.outputs.iter().zip(reference).enumerate() {
                let (got, want) = (got.as_tensor().unwrap(), want.as_tensor().unwrap());
                assert_eq!(
                    got, want,
                    "{name} req {i} output {j}: batched != sequential"
                );
            }
        }
        let report = service.shutdown();
        assert_eq!(report.metrics.completed, REQUESTS as u64);
        assert!(report.metrics.max_batch >= 2, "{name}: {}", report.metrics);
    }
}

#[test]
fn incompatible_shared_args_never_share_a_batch() {
    let workload = Workload::by_name("fcos").unwrap();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(4)
            .with_max_wait(Duration::from_millis(100)),
    );
    // Different seeds → different anchor points → requests must not merge.
    let a = workload.inputs(2, 0, 1);
    let b = workload.inputs(2, 0, 2);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&a)
        .batch(spec_for("fcos"))
        .load()
        .unwrap();
    let ref_a = model.plan().run(DeviceProfile::consumer(), &a).unwrap().0;
    let ref_b = model.plan().run(DeviceProfile::consumer(), &b).unwrap().0;

    let ta = service.submit(&model, a).unwrap();
    let tb = service.submit(&model, b).unwrap();
    let (ra, rb) = (ta.wait().unwrap(), tb.wait().unwrap());
    for (got, want) in ra
        .outputs
        .iter()
        .zip(&ref_a)
        .chain(rb.outputs.iter().zip(&ref_b))
    {
        assert_eq!(got.as_tensor().unwrap(), want.as_tensor().unwrap());
    }
}

#[test]
fn mixed_row_counts_split_correctly() {
    let workload = Workload::by_name("yolov3").unwrap();
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(3)
            .with_max_wait(Duration::from_millis(250)),
    );
    // Different batch sizes → different plan signatures; load per size but
    // submit through one service so rows are split per request.
    let sizes = [1usize, 2, 3];
    let inputs: Vec<Vec<RtValue>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &b)| workload.inputs(b, 0, 50 + i as u64))
        .collect();
    // One handle (one plan) serves all rows: same signature requires same
    // shape, so use the plan loaded for batch 1 only for its source; in this
    // engine plans are shape-polymorphic, making a single handle valid for
    // every row count.
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs[0])
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    let references: Vec<Vec<RtValue>> = inputs
        .iter()
        .map(|i| model.plan().run(DeviceProfile::consumer(), i).unwrap().0)
        .collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|i| service.submit(&model, i.clone()).unwrap())
        .collect();
    for ((ticket, reference), &rows) in tickets.into_iter().zip(&references).zip(&sizes) {
        let response = ticket.wait().unwrap();
        let got = response.outputs[0].as_tensor().unwrap();
        assert_eq!(got.shape()[0], rows);
        assert_eq!(got, reference[0].as_tensor().unwrap());
    }
}
