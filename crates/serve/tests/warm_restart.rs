//! The restart drill: a service backed by a persistent plan store is shut
//! down and rebooted over the same cache directory — the rebooted
//! service's first load comes from disk (no compile span, disk-hit
//! counter increments) and serves bit-identical outputs.

use std::sync::Arc;
use std::time::Duration;

use tssa_backend::{DeviceProfile, RtValue};
use tssa_serve::{BatchSpec, PipelineKind, PlanStore, ServeConfig, Service, Tracer};
use tssa_tensor::Tensor;
use tssa_workloads::Workload;

fn store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tssa-warm-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config_with_store(dir: &std::path::Path) -> (ServeConfig, Arc<PlanStore>) {
    let store = Arc::new(PlanStore::open(dir).expect("open plan store"));
    let config = ServeConfig::default()
        .with_workers(1)
        .with_plan_store(Some(Arc::clone(&store)));
    (config, store)
}

#[test]
fn restart_drill_first_load_is_a_disk_hit() {
    let dir = store_dir("drill");
    let workload = Workload::by_name("attention").unwrap();
    let inputs = workload.inputs(2, 16, 5);

    // Boot #1: cold — compiles, serves, writes the plan back to disk.
    let (config, store) = config_with_store(&dir);
    let service = Service::new(config);
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::unbatched(inputs.len()))
        .load()
        .unwrap();
    let cold_outputs = model
        .plan()
        .run(DeviceProfile::consumer(), &inputs)
        .unwrap()
        .0;
    store.flush();
    let stats = store.stats();
    assert_eq!(stats.disk_hits, 0, "boot #1 is cold: {stats:?}");
    assert_eq!(stats.disk_misses, 1);
    assert_eq!(stats.writes, 1);
    service.shutdown();
    drop(store);

    // Boot #2: same directory, fresh process state, tracer installed so the
    // load path is observable span by span.
    let (tracer, sink) = Tracer::ring(4096);
    let (config, store) = config_with_store(&dir);
    let service = Service::new(config.with_tracer(tracer));
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::unbatched(inputs.len()))
        .load()
        .unwrap();

    // The plan came from disk: counted, marked, and no compile span exists.
    let stats = store.stats();
    assert_eq!(stats.disk_hits, 1, "boot #2 warm-starts: {stats:?}");
    assert_eq!(stats.writes, 0, "a disk hit is not re-persisted");
    let records = sink.snapshot();
    let load_span = records
        .iter()
        .find(|r| r.name == "request:load")
        .expect("load span recorded");
    assert!(
        load_span.is_marked("warm_hit"),
        "disk-served load carries the warm_hit mark: {load_span:?}"
    );
    assert!(
        !records.iter().any(|r| r.name.starts_with("compile:")),
        "a warm start must not compile"
    );

    // The disk-loaded plan is the one the dispatcher serves, and it computes
    // exactly what the cold plan computed.
    let warm_outputs = model
        .plan()
        .run(DeviceProfile::consumer(), &inputs)
        .unwrap()
        .0;
    assert_eq!(cold_outputs.len(), warm_outputs.len());
    for (cold, warm) in cold_outputs.iter().zip(&warm_outputs) {
        assert_eq!(cold.as_tensor().unwrap(), warm.as_tensor().unwrap());
    }
    let response = service.submit(&model, inputs).unwrap().wait().unwrap();
    assert_eq!(response.outputs.len(), warm_outputs.len());

    // The counter is on the exposition under its documented name.
    let prom = service.prometheus();
    assert!(
        prom.contains("tssa_plan_cache_disk_hits_total 1"),
        "disk hits missing from exposition:\n{prom}"
    );
    service.shutdown();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_from_disk_false_forces_a_fresh_compile() {
    let dir = store_dir("optout");
    let workload = Workload::by_name("yolov3").unwrap();
    let inputs = workload.inputs(2, 0, 3);

    let (config, store) = config_with_store(&dir);
    let service = Service::new(config);
    let load = |warm: bool| {
        service
            .loader(workload.source)
            .pipeline(PipelineKind::TensorSsa)
            .example(&inputs)
            .batch(BatchSpec::unbatched(inputs.len()))
            .warm_from_disk(warm)
            .load()
            .unwrap()
    };
    load(true);
    store.flush();
    assert_eq!(store.stats().writes, 1);
    service.shutdown();
    drop(store);

    // Reboot, but opt out of the warm start: the entry is on disk, yet the
    // load compiles fresh and never reads it.
    let (config, store) = config_with_store(&dir);
    let service = Service::new(config);
    service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::unbatched(inputs.len()))
        .warm_from_disk(false)
        .load()
        .unwrap();
    let stats = store.stats();
    assert_eq!(stats.disk_hits, 0, "{stats:?}");
    assert_eq!(stats.disk_misses, 0, "opt-out never touches the store");
    service.shutdown();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_entry_on_disk_recompiles_and_heals() {
    let dir = store_dir("heal");
    let workload = Workload::by_name("lstm").unwrap();
    let inputs = workload.inputs(2, 0, 9);

    let (config, store) = config_with_store(&dir);
    let service = Service::new(config);
    loader_on(&service, &workload, &inputs).load().unwrap();
    store.flush();
    service.shutdown();

    // Truncate the single on-disk entry.
    assert_eq!(store.entries(), 1, "one entry persisted");
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "plan"))
        .expect("plan file on disk");
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 3]).unwrap();
    drop(store);

    // Reboot over the damaged directory: the load succeeds via recompile,
    // the corruption is counted + evicted, and the write-back heals disk.
    let (config, store) = config_with_store(&dir);
    let service = Service::new(config);
    let model = loader_on(&service, &workload, &inputs).load().unwrap();
    let response = service.submit(&model, inputs.clone()).unwrap().wait();
    response.expect("recompiled plan serves");
    store.flush();
    let stats = store.stats();
    assert_eq!(stats.corrupt_evicted, 1, "{stats:?}");
    assert_eq!(stats.disk_hits, 0);
    assert_eq!(stats.writes, 1, "recompile re-persists the entry");
    let snapshot = service.metrics();
    assert_eq!(snapshot.disk.corrupt_evicted, 1);
    service.shutdown();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// The shape-class census survives restart: a mixed-shape run persists
/// bucket heat with the plan, and the rebooted service serves a batch size
/// no pre-restart request ever carried — from disk, with zero recompiles.
#[test]
fn reboot_serves_a_never_seen_batch_size_from_disk() {
    let dir = store_dir("class");
    let workload = Workload::by_name("yolact").unwrap();

    // Boot #1: compile once at batch 2, then serve batches 2, 3 and 4
    // through the one class plan. Each new concrete bucket re-persists the
    // entry with its updated census.
    let (config, store) = config_with_store(&dir);
    let service = Service::new(config);
    let model = loader_on(&service, &workload, &workload.inputs(2, 0, 7))
        .load()
        .unwrap();
    for b in [2usize, 3, 4] {
        let out = service
            .submit(&model, workload.inputs(b, 0, 7))
            .unwrap()
            .wait()
            .unwrap()
            .outputs;
        assert_eq!(out[0].as_tensor().unwrap().shape()[0], b);
    }
    store.flush();
    assert_eq!(
        store.stats().disk_misses,
        1,
        "boot #1 compiled exactly once"
    );
    service.shutdown();
    drop(store);

    // Boot #2: the example is batch 7 — never seen before the restart. The
    // exact-key probe misses, the class scan admits the shape, and the load
    // never compiles.
    let (tracer, sink) = Tracer::ring(4096);
    let (config, store) = config_with_store(&dir);
    let service = Service::new(config.with_tracer(tracer));
    let inputs = workload.inputs(7, 0, 8);
    let model = loader_on(&service, &workload, &inputs).load().unwrap();
    let stats = store.stats();
    assert_eq!(
        stats.disk_hits, 1,
        "the class scan serves the new shape: {stats:?}"
    );
    assert!(
        !sink
            .snapshot()
            .iter()
            .any(|r| r.name.starts_with("compile:")),
        "a never-seen batch size must not recompile after reboot"
    );

    // Bucket heat from before the restart came back with the plan.
    let entry = model.class().expect("disk-loaded plan reforms its class");
    let census = entry.census();
    for b in [2usize, 3, 4] {
        let label = format!("{b}x48x48");
        assert!(
            census.iter().any(|(l, hits)| l == &label && *hits >= 1),
            "census lost bucket {label}: {census:?}"
        );
    }

    let out = service
        .submit(&model, inputs)
        .unwrap()
        .wait()
        .unwrap()
        .outputs;
    assert_eq!(out[0].as_tensor().unwrap().shape()[0], 7);
    service.shutdown();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

fn loader_on<'s>(
    service: &'s Service,
    workload: &Workload,
    inputs: &[RtValue],
) -> tssa_serve::ModelLoader<'s> {
    service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(inputs)
        .batch(BatchSpec::unbatched(inputs.len()))
}

/// A fresh load certifies the plan's shape signature, surfaces the
/// polymorphic-dim count on `/metrics`, and persists the signature through
/// the store so a warm restart gets it back without re-analysis.
#[test]
fn shape_signature_attaches_on_load_and_survives_restart() {
    let dir = store_dir("shapesig");
    let source =
        "def f(x: Tensor):\n    y = x.clone()\n    y[:, 0:1] = sigmoid(x[:, 0:1])\n    return y\n";
    let example = [RtValue::Tensor(Tensor::ones(&[2, 4]))];

    let (config, store) = config_with_store(&dir);
    let service = Service::new(config);
    let model = service
        .loader(source)
        .named("sig-demo")
        .pipeline(PipelineKind::TensorSsa)
        .example(&example)
        .batch(BatchSpec::stacked(1, 1))
        .deadline(Duration::from_secs(30))
        .load()
        .unwrap();
    let sig = model
        .plan()
        .signature
        .clone()
        .expect("fresh compile certifies a shape signature");
    assert!(
        sig.polymorphic_dims() > 0,
        "batch dim should be polymorphic:\n{}",
        sig.render()
    );
    let prom = service.prometheus();
    assert!(
        prom.contains("tssa_plan_polymorphic_dims{plan=\"sig-demo\"}"),
        "polymorphic-dim gauge missing from exposition:\n{prom}"
    );
    store.flush();
    service.shutdown();
    drop(store);

    // Reboot: the warm load's signature comes off disk, identical.
    let (config, store) = config_with_store(&dir);
    let service = Service::new(config);
    let warm = service
        .loader(source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&example)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .unwrap();
    assert_eq!(store.stats().disk_hits, 1, "reboot load is a disk hit");
    assert_eq!(warm.plan().signature, Some(sig));
    service.shutdown();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
