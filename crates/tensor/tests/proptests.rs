//! Property-based tests of the tensor runtime: random view chains and
//! mutations are checked against a naive dense reference model.

use proptest::prelude::*;
use tssa_tensor::{Scalar, Tensor};

/// Maps an index in a view's coordinate space back to base coordinates.
type IndexMap = Box<dyn Fn(&[usize]) -> Vec<usize>>;

const DIMS: [usize; 3] = [3, 4, 5];

/// A step in a random view chain over a rank-3 base tensor.
#[derive(Debug, Clone)]
enum ViewStep {
    Select {
        dim: usize,
        index: usize,
    },
    Slice {
        dim: usize,
        start: usize,
        len: usize,
    },
    Transpose {
        d0: usize,
        d1: usize,
    },
    Unsqueeze {
        dim: usize,
    },
}

fn step_strategy() -> impl Strategy<Value = ViewStep> {
    prop_oneof![
        (0..3usize, 0..3usize).prop_map(|(dim, index)| ViewStep::Select { dim, index }),
        (0..3usize, 0..2usize, 1..3usize).prop_map(|(dim, start, len)| ViewStep::Slice {
            dim,
            start,
            len
        }),
        (0..3usize, 0..3usize).prop_map(|(d0, d1)| ViewStep::Transpose { d0, d1 }),
        (0..3usize).prop_map(|dim| ViewStep::Unsqueeze { dim }),
    ]
}

/// Apply a step to the strided tensor; `None` if invalid for current rank.
fn apply(t: &Tensor, step: &ViewStep) -> Option<Tensor> {
    match step {
        ViewStep::Select { dim, index } => {
            if *dim >= t.rank() || *index >= t.shape()[*dim] {
                return None;
            }
            t.select(*dim as isize, *index as isize).ok()
        }
        ViewStep::Slice { dim, start, len } => {
            if *dim >= t.rank() || start + len > t.shape()[*dim] {
                return None;
            }
            t.slice(*dim as isize, *start as isize, (start + len) as isize, 1)
                .ok()
        }
        ViewStep::Transpose { d0, d1 } => {
            if *d0 >= t.rank() || *d1 >= t.rank() {
                return None;
            }
            t.transpose(*d0 as isize, *d1 as isize).ok()
        }
        ViewStep::Unsqueeze { dim } => {
            if *dim > t.rank() {
                return None;
            }
            t.unsqueeze(*dim as isize).ok()
        }
    }
}

/// A naive reference: a dense vector of (flat base index) per view element,
/// tracking exactly which base cells the view addresses.
fn reference_cells(base_shape: &[usize], steps: &[ViewStep]) -> Option<(Vec<usize>, Vec<usize>)> {
    // start: identity mapping
    let mut shape = base_shape.to_vec();
    let numel: usize = shape.iter().product();
    let mut cells: Vec<usize> = (0..numel).collect();
    // helper to address cells row-major under `shape`
    fn index(coord: &[usize], shape: &[usize]) -> usize {
        coord.iter().zip(shape).fold(0, |acc, (c, s)| acc * s + c)
    }
    fn coords(shape: &[usize]) -> Vec<Vec<usize>> {
        let mut out = vec![vec![]];
        for &d in shape {
            let mut next = Vec::new();
            for c in &out {
                for i in 0..d {
                    let mut c2 = c.clone();
                    c2.push(i);
                    next.push(c2);
                }
            }
            out = next;
        }
        out
    }
    for step in steps {
        let (new_shape, map): (Vec<usize>, IndexMap) = match step {
            ViewStep::Select { dim, index } => {
                if *dim >= shape.len() || *index >= shape[*dim] {
                    return None;
                }
                let mut s = shape.clone();
                s.remove(*dim);
                let (d, i) = (*dim, *index);
                (
                    s,
                    Box::new(move |c: &[usize]| {
                        let mut c2 = c.to_vec();
                        c2.insert(d, i);
                        c2
                    }),
                )
            }
            ViewStep::Slice { dim, start, len } => {
                if *dim >= shape.len() || start + len > shape[*dim] {
                    return None;
                }
                let mut s = shape.clone();
                s[*dim] = *len;
                let (d, st) = (*dim, *start);
                (
                    s,
                    Box::new(move |c: &[usize]| {
                        let mut c2 = c.to_vec();
                        c2[d] += st;
                        c2
                    }),
                )
            }
            ViewStep::Transpose { d0, d1 } => {
                if *d0 >= shape.len() || *d1 >= shape.len() {
                    return None;
                }
                let mut s = shape.clone();
                s.swap(*d0, *d1);
                let (a, b) = (*d0, *d1);
                (
                    s,
                    Box::new(move |c: &[usize]| {
                        let mut c2 = c.to_vec();
                        c2.swap(a, b);
                        c2
                    }),
                )
            }
            ViewStep::Unsqueeze { dim } => {
                if *dim > shape.len() {
                    return None;
                }
                let mut s = shape.clone();
                s.insert(*dim, 1);
                let d = *dim;
                (
                    s,
                    Box::new(move |c: &[usize]| {
                        let mut c2 = c.to_vec();
                        c2.remove(d);
                        c2
                    }),
                )
            }
        };
        let mut new_cells = Vec::new();
        for c in coords(&new_shape) {
            let old_coord = map(&c);
            new_cells.push(cells[index(&old_coord, &shape)]);
        }
        shape = new_shape;
        cells = new_cells;
    }
    Some((shape, cells))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// A random view chain addresses exactly the base cells the reference
    /// model predicts.
    #[test]
    fn view_chains_address_predicted_cells(steps in prop::collection::vec(step_strategy(), 0..5)) {
        let numel: usize = DIMS.iter().product();
        let base = Tensor::from_vec_f32((0..numel).map(|i| i as f32).collect(), &DIMS).unwrap();
        let mut view = base.clone();
        let mut applied = Vec::new();
        for s in &steps {
            match apply(&view, s) {
                Some(v) => {
                    view = v;
                    applied.push(s.clone());
                }
                None => break,
            }
        }
        let (ref_shape, cells) = reference_cells(&DIMS, &applied).expect("applied steps are valid");
        prop_assert_eq!(view.shape(), &ref_shape[..]);
        let got = view.to_vec_f32().unwrap();
        let expected: Vec<f32> = cells.iter().map(|&c| c as f32).collect();
        prop_assert_eq!(got, expected);
    }

    /// Mutating through a random view chain changes exactly the predicted
    /// base cells and nothing else.
    #[test]
    fn mutation_through_chain_hits_predicted_cells(
        steps in prop::collection::vec(step_strategy(), 0..5),
        fill in -100i32..100,
    ) {
        let numel: usize = DIMS.iter().product();
        let base = Tensor::from_vec_f32((0..numel).map(|i| i as f32).collect(), &DIMS).unwrap();
        let mut view = base.clone();
        let mut applied = Vec::new();
        for s in &steps {
            match apply(&view, s) {
                Some(v) => {
                    view = v;
                    applied.push(s.clone());
                }
                None => break,
            }
        }
        let (_, cells) = reference_cells(&DIMS, &applied).expect("applied steps are valid");
        view.fill_(fill as f32).unwrap();
        let after = base.to_vec_f32().unwrap();
        for (i, v) in after.iter().enumerate() {
            if cells.contains(&i) {
                prop_assert_eq!(*v, fill as f32, "cell {} should be filled", i);
            } else {
                prop_assert_eq!(*v, i as f32, "cell {} must be untouched", i);
            }
        }
    }

    /// `clone_data` decouples storage: mutating the original never changes
    /// the copy.
    #[test]
    fn clone_data_decouples(seed in 0u64..500, fill in -50i32..50) {
        let t = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, seed);
        let copy = t.clone_data();
        let before = copy.to_vec_f32().unwrap();
        t.fill_(fill as f32).unwrap();
        prop_assert_eq!(copy.to_vec_f32().unwrap(), before);
    }

    /// Broadcast addition agrees with explicit expansion.
    #[test]
    fn broadcast_add_matches_expansion(seed in 0u64..500) {
        let a = Tensor::rand_uniform(&[3, 1, 5], -2.0, 2.0, seed);
        let b = Tensor::rand_uniform(&[4, 1], -2.0, 2.0, seed + 1);
        let fast = a.add(&b).unwrap();
        let ae = a.expand(&[3, 4, 5]).unwrap().clone_data();
        let be = b.expand(&[3, 4, 5]).unwrap().clone_data();
        let slow = ae.add(&be).unwrap();
        prop_assert!(fast.allclose(&slow, 1e-6));
    }

    /// In-place ops agree with their functional counterparts.
    #[test]
    fn inplace_matches_functional(seed in 0u64..500) {
        let t = Tensor::rand_uniform(&[2, 6], -3.0, 3.0, seed);
        type FuncPair = (fn(&Tensor) -> Tensor, fn(&Tensor));
        let funcs: Vec<FuncPair> = vec![
            (|t| t.relu(), |t| { t.relu_().unwrap(); }),
            (|t| t.sigmoid(), |t| { t.sigmoid_().unwrap(); }),
            (|t| t.tanh(), |t| { t.tanh_().unwrap(); }),
            (|t| t.exp(), |t| { t.exp_().unwrap(); }),
        ];
        for (pure, inplace) in funcs {
            let expected = pure(&t);
            let working = t.clone_data();
            inplace(&working);
            prop_assert!(working.allclose(&expected, 1e-6));
        }
    }

    /// `item` on every single-element view equals the flat data.
    #[test]
    fn element_views_match_flat_order(seed in 0u64..500) {
        let t = Tensor::rand_uniform(&[2, 3, 2], -1.0, 1.0, seed);
        let flat = t.to_vec_f32().unwrap();
        let mut k = 0;
        for i in 0..2 {
            for j in 0..3 {
                for l in 0..2 {
                    let v = t
                        .select(0, i as isize).unwrap()
                        .select(0, j as isize).unwrap()
                        .select(0, l as isize).unwrap();
                    prop_assert_eq!(v.item().unwrap(), Scalar::F32(flat[k]));
                    k += 1;
                }
            }
        }
    }
}
