//! Reductions: whole-tensor and along one dimension.

use crate::index::{normalize_dim, offset_of, CoordIter};
use crate::storage::Buffer;
use crate::{Result, Tensor};

impl Tensor {
    /// Sum of all elements, as `f32`.
    pub fn sum_all(&self) -> f32 {
        let mut acc = 0.0f64;
        self.for_each(|s| acc += s.as_f64());
        acc as f32
    }

    /// Mean of all elements, as `f32` (`NaN` for empty tensors).
    pub fn mean_all(&self) -> f32 {
        self.sum_all() / self.numel() as f32
    }

    /// Maximum of all elements, as `f32` (`-inf` for empty tensors).
    pub fn max_all(&self) -> f32 {
        let mut acc = f64::NEG_INFINITY;
        self.for_each(|s| acc = acc.max(s.as_f64()));
        acc as f32
    }

    /// Minimum of all elements, as `f32` (`+inf` for empty tensors).
    pub fn min_all(&self) -> f32 {
        let mut acc = f64::INFINITY;
        self.for_each(|s| acc = acc.min(s.as_f64()));
        acc as f32
    }

    fn reduce_dim(
        &self,
        dim: isize,
        keepdim: bool,
        init: f64,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        let mut out_shape = self.shape().to_vec();
        out_shape[d] = 1;
        let mut acc = vec![init; out_shape.iter().product()];
        let out_strides = crate::index::contiguous_strides(&out_shape);
        self.storage().with_read(|b| {
            for coord in CoordIter::new(self.shape()) {
                let src = (self.offset as isize + offset_of(&coord, &self.strides)) as usize;
                let mut oc = coord.clone();
                oc[d] = 0;
                let dst = offset_of(&oc, &out_strides) as usize;
                acc[dst] = f(acc[dst], b.get(src).as_f64());
            }
        });
        let out = Tensor::from_buffer(
            Buffer::F32(acc.into_iter().map(|v| v as f32).collect()),
            out_shape,
        );
        if keepdim {
            Ok(out)
        } else {
            out.squeeze(d as isize)
        }
    }

    /// Sum along `dim` (`aten::sum.dim`).
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range.
    pub fn sum_dim(&self, dim: isize, keepdim: bool) -> Result<Tensor> {
        self.reduce_dim(dim, keepdim, 0.0, |a, b| a + b)
    }

    /// Mean along `dim` (`aten::mean.dim`).
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range.
    pub fn mean_dim(&self, dim: isize, keepdim: bool) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        let n = self.shape()[d] as f32;
        Ok(self.sum_dim(dim, keepdim)?.div_scalar(n))
    }

    /// Maximum along `dim` (`aten::max.dim`, values only).
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range.
    pub fn max_dim(&self, dim: isize, keepdim: bool) -> Result<Tensor> {
        self.reduce_dim(dim, keepdim, f64::NEG_INFINITY, f64::max)
    }

    /// Minimum along `dim` (`aten::min.dim`, values only).
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range.
    pub fn min_dim(&self, dim: isize, keepdim: bool) -> Result<Tensor> {
        self.reduce_dim(dim, keepdim, f64::INFINITY, f64::min)
    }

    /// Index of the maximum along `dim` (`aten::argmax`), as an i64 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range.
    pub fn argmax_dim(&self, dim: isize, keepdim: bool) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        let mut out_shape = self.shape().to_vec();
        out_shape[d] = 1;
        let out_numel: usize = out_shape.iter().product();
        let mut best = vec![f64::NEG_INFINITY; out_numel];
        let mut idx = vec![0i64; out_numel];
        let out_strides = crate::index::contiguous_strides(&out_shape);
        self.storage().with_read(|b| {
            for coord in CoordIter::new(self.shape()) {
                let src = (self.offset as isize + offset_of(&coord, &self.strides)) as usize;
                let mut oc = coord.clone();
                let i = oc[d];
                oc[d] = 0;
                let dst = offset_of(&oc, &out_strides) as usize;
                let v = b.get(src).as_f64();
                if v > best[dst] {
                    best[dst] = v;
                    idx[dst] = i as i64;
                }
            }
        });
        let out = Tensor::from_buffer(Buffer::I64(idx), out_shape);
        if keepdim {
            Ok(out)
        } else {
            out.squeeze(d as isize)
        }
    }

    /// Numerically-stable softmax along `dim` (`aten::softmax`).
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range.
    pub fn softmax(&self, dim: isize) -> Result<Tensor> {
        let max = self.max_dim(dim, true)?;
        let shifted = self.sub(&max)?;
        let e = shifted.exp();
        let z = e.sum_dim(dim, true)?;
        e.div(&z)
    }

    /// Cumulative sum along `dim` (`aten::cumsum`).
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range.
    pub fn cumsum(&self, dim: isize) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        let out = self.clone_data();
        let n = self.shape()[d];
        for i in 1..n {
            let prev = out.select(d as isize, (i - 1) as isize)?;
            let cur = out.select(d as isize, i as isize)?;
            cur.add_(&prev)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: &[usize]) -> Tensor {
        let n = shape.iter().product();
        Tensor::from_vec_f32((0..n).map(|i| i as f32).collect(), shape).unwrap()
    }

    #[test]
    fn whole_tensor_reductions() {
        let t = iota(&[2, 3]);
        assert_eq!(t.sum_all(), 15.0);
        assert_eq!(t.mean_all(), 2.5);
        assert_eq!(t.max_all(), 5.0);
        assert_eq!(t.min_all(), 0.0);
    }

    #[test]
    fn dim_reductions() {
        let t = iota(&[2, 3]);
        assert_eq!(
            t.sum_dim(0, false).unwrap().to_vec_f32().unwrap(),
            vec![3.0, 5.0, 7.0]
        );
        assert_eq!(
            t.sum_dim(1, false).unwrap().to_vec_f32().unwrap(),
            vec![3.0, 12.0]
        );
        assert_eq!(t.sum_dim(1, true).unwrap().shape(), &[2, 1]);
        assert_eq!(
            t.max_dim(1, false).unwrap().to_vec_f32().unwrap(),
            vec![2.0, 5.0]
        );
        assert_eq!(
            t.min_dim(0, false).unwrap().to_vec_f32().unwrap(),
            vec![0.0, 1.0, 2.0]
        );
        assert_eq!(
            t.mean_dim(1, false).unwrap().to_vec_f32().unwrap(),
            vec![1.0, 4.0]
        );
        assert!(t.sum_dim(2, false).is_err());
    }

    #[test]
    fn argmax_picks_first_max() {
        let t = Tensor::from_vec_f32(vec![1.0, 3.0, 3.0, 0.0], &[2, 2]).unwrap();
        assert_eq!(
            t.argmax_dim(1, false).unwrap().to_vec_i64().unwrap(),
            vec![1, 0]
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = iota(&[2, 4]);
        let s = t.softmax(1).unwrap();
        for r in 0..2 {
            let row: f32 = s.select(0, r).unwrap().sum_all();
            assert!((row - 1.0).abs() < 1e-6);
        }
        // Softmax is shift-invariant; large values stay finite.
        let big = Tensor::from_vec_f32(vec![1000.0, 1001.0], &[2]).unwrap();
        let s = big.softmax(0).unwrap().to_vec_f32().unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cumsum_along_dim() {
        let t = iota(&[4]);
        assert_eq!(
            t.cumsum(0).unwrap().to_vec_f32().unwrap(),
            vec![0.0, 1.0, 3.0, 6.0]
        );
        let m = iota(&[2, 2]);
        assert_eq!(
            m.cumsum(0).unwrap().to_vec_f32().unwrap(),
            vec![0.0, 1.0, 2.0, 4.0]
        );
    }
}
