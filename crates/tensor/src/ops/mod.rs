//! Functional (out-of-place) operators.

mod binary;
mod matmul;
mod reduce;
mod shape;
mod unary;

pub use shape::{concat, stack, where_select};
