//! Elementwise binary operators with NumPy-style broadcasting.

use crate::dtype::promote;
use crate::index::{broadcast_shapes, broadcast_strides, offset_of, CoordIter};
use crate::storage::Buffer;
use crate::{DType, Result, Scalar, Tensor};

impl Tensor {
    /// Generic broadcasting binary kernel; `out_dtype` overrides promotion
    /// (used by comparisons, which always yield `Bool`).
    pub(crate) fn zip_broadcast(
        &self,
        rhs: &Tensor,
        op: &'static str,
        out_dtype: Option<DType>,
        f: impl Fn(Scalar, Scalar) -> Scalar,
    ) -> Result<Tensor> {
        let shape = broadcast_shapes(self.shape(), rhs.shape(), op)?;
        let ls = broadcast_strides(self.shape(), self.strides(), &shape);
        let rs = broadcast_strides(rhs.shape(), rhs.strides(), &shape);
        let dtype = out_dtype.unwrap_or_else(|| promote(self.dtype(), rhs.dtype()));
        let n: usize = shape.iter().product();
        let mut out: Vec<Scalar> = Vec::with_capacity(n);
        self.storage().with_read(|lb| {
            rhs.storage().with_read(|rb| {
                for coord in CoordIter::new(&shape) {
                    let lo = (self.offset as isize + offset_of(&coord, &ls)) as usize;
                    let ro = (rhs.offset as isize + offset_of(&coord, &rs)) as usize;
                    out.push(f(lb.get(lo), rb.get(ro)).cast(dtype));
                }
            })
        });
        let buffer = match dtype {
            DType::F32 => Buffer::F32(out.iter().map(|s| s.as_f32()).collect()),
            DType::I64 => Buffer::I64(out.iter().map(|s| s.as_i64()).collect()),
            DType::Bool => Buffer::Bool(out.iter().map(|s| s.as_bool()).collect()),
        };
        Ok(Tensor::from_buffer(buffer, shape))
    }

    /// Elementwise addition with broadcasting (`aten::add`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "add", None, |a, b| num(a, b, |x, y| x + y))
    }

    /// Elementwise subtraction with broadcasting (`aten::sub`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "sub", None, |a, b| num(a, b, |x, y| x - y))
    }

    /// Elementwise multiplication with broadcasting (`aten::mul`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "mul", None, |a, b| num(a, b, |x, y| x * y))
    }

    /// Elementwise division with broadcasting (`aten::div`), always f32.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn div(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "div", Some(DType::F32), |a, b| {
            Scalar::F32((a.as_f64() / b.as_f64()) as f32)
        })
    }

    /// Elementwise maximum with broadcasting (`aten::maximum`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn maximum(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "maximum", None, |a, b| num(a, b, f64::max))
    }

    /// Elementwise minimum with broadcasting (`aten::minimum`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn minimum(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "minimum", None, |a, b| num(a, b, f64::min))
    }

    /// Elementwise power with broadcasting (`aten::pow`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn pow(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "pow", Some(DType::F32), |a, b| {
            Scalar::F32(a.as_f32().powf(b.as_f32()))
        })
    }

    /// Elementwise `>` comparison, yielding a bool tensor (`aten::gt`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn gt(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "gt", Some(DType::Bool), |a, b| {
            Scalar::Bool(a.as_f64() > b.as_f64())
        })
    }

    /// Elementwise `<` comparison (`aten::lt`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn lt(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "lt", Some(DType::Bool), |a, b| {
            Scalar::Bool(a.as_f64() < b.as_f64())
        })
    }

    /// Elementwise `>=` comparison (`aten::ge`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn ge(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "ge", Some(DType::Bool), |a, b| {
            Scalar::Bool(a.as_f64() >= b.as_f64())
        })
    }

    /// Elementwise `<=` comparison (`aten::le`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn le(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "le", Some(DType::Bool), |a, b| {
            Scalar::Bool(a.as_f64() <= b.as_f64())
        })
    }

    /// Elementwise `==` comparison (`aten::eq`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn eq_elem(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "eq", Some(DType::Bool), |a, b| {
            Scalar::Bool(a.as_f64() == b.as_f64())
        })
    }

    /// Elementwise logical and (`aten::logical_and`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn logical_and(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "logical_and", Some(DType::Bool), |a, b| {
            Scalar::Bool(a.as_bool() && b.as_bool())
        })
    }

    /// Elementwise logical or (`aten::logical_or`).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes do not broadcast.
    pub fn logical_or(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "logical_or", Some(DType::Bool), |a, b| {
            Scalar::Bool(a.as_bool() || b.as_bool())
        })
    }
}

/// Numeric helper preserving the promoted dtype of the operands.
fn num(a: Scalar, b: Scalar, f: impl Fn(f64, f64) -> f64) -> Scalar {
    let out = f(a.as_f64(), b.as_f64());
    match promote(a.dtype(), b.dtype()) {
        DType::F32 => Scalar::F32(out as f32),
        DType::I64 => Scalar::I64(out as i64),
        DType::Bool => Scalar::Bool(out != 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_broadcasts() {
        let a = Tensor::from_vec_f32(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec_f32(vec![10.0, 20.0], &[2, 1]).unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(
            c.to_vec_f32().unwrap(),
            vec![11.0, 12.0, 13.0, 21.0, 22.0, 23.0]
        );
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn dtype_promotion() {
        let f = Tensor::from_vec_f32(vec![1.5], &[1]).unwrap();
        let i = Tensor::from_vec_i64(vec![2], &[1]).unwrap();
        assert_eq!(f.add(&i).unwrap().dtype(), DType::F32);
        assert_eq!(i.add(&i).unwrap().dtype(), DType::I64);
        assert_eq!(i.div(&i).unwrap().dtype(), DType::F32);
    }

    #[test]
    fn comparisons_yield_bool() {
        let a = Tensor::from_vec_f32(vec![1.0, 5.0], &[2]).unwrap();
        let b = Tensor::from_vec_f32(vec![3.0, 3.0], &[2]).unwrap();
        assert_eq!(a.gt(&b).unwrap().to_vec_bool().unwrap(), vec![false, true]);
        assert_eq!(a.le(&b).unwrap().to_vec_bool().unwrap(), vec![true, false]);
        assert_eq!(
            a.eq_elem(&a).unwrap().to_vec_bool().unwrap(),
            vec![true, true]
        );
    }

    #[test]
    fn min_max_pow() {
        let a = Tensor::from_vec_f32(vec![1.0, 4.0], &[2]).unwrap();
        let b = Tensor::from_vec_f32(vec![2.0, 3.0], &[2]).unwrap();
        assert_eq!(a.maximum(&b).unwrap().to_vec_f32().unwrap(), vec![2.0, 4.0]);
        assert_eq!(a.minimum(&b).unwrap().to_vec_f32().unwrap(), vec![1.0, 3.0]);
        assert_eq!(a.pow(&b).unwrap().to_vec_f32().unwrap(), vec![1.0, 64.0]);
    }

    #[test]
    fn logical_ops() {
        let a = Tensor::from_vec_bool(vec![true, false], &[2]).unwrap();
        let b = Tensor::from_vec_bool(vec![true, true], &[2]).unwrap();
        assert_eq!(
            a.logical_and(&b).unwrap().to_vec_bool().unwrap(),
            vec![true, false]
        );
        assert_eq!(
            a.logical_or(&b).unwrap().to_vec_bool().unwrap(),
            vec![true, true]
        );
    }

    #[test]
    fn binary_on_views_respects_strides() {
        let t = Tensor::from_vec_f32(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c0 = t.transpose(0, 1).unwrap().select(0, 0).unwrap(); // column [1, 3]
        let c1 = t.transpose(0, 1).unwrap().select(0, 1).unwrap(); // column [2, 4]
        assert_eq!(c0.add(&c1).unwrap().to_vec_f32().unwrap(), vec![3.0, 7.0]);
    }
}
