//! Elementwise unary operators (pure: always allocate a fresh tensor).

use crate::storage::Buffer;
use crate::{DType, Result, Tensor, TensorError};

impl Tensor {
    /// Apply `f` elementwise producing a fresh f32 tensor.
    pub(crate) fn map_f32(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = Vec::with_capacity(self.numel());
        self.for_each(|s| out.push(f(s.as_f32())));
        Tensor::from_buffer(Buffer::F32(out), self.shape().to_vec())
    }

    /// Elementwise negation (`aten::neg`).
    pub fn neg(&self) -> Tensor {
        match self.dtype() {
            DType::I64 => {
                let mut out = Vec::with_capacity(self.numel());
                self.for_each(|s| out.push(-s.as_i64()));
                Tensor::from_buffer(Buffer::I64(out), self.shape().to_vec())
            }
            _ => self.map_f32(|v| -v),
        }
    }

    /// Elementwise ReLU (`aten::relu`).
    pub fn relu(&self) -> Tensor {
        self.map_f32(|v| v.max(0.0))
    }

    /// Elementwise logistic sigmoid (`aten::sigmoid`).
    pub fn sigmoid(&self) -> Tensor {
        self.map_f32(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Elementwise hyperbolic tangent (`aten::tanh`).
    pub fn tanh(&self) -> Tensor {
        self.map_f32(|v| v.tanh())
    }

    /// Elementwise exponential (`aten::exp`).
    pub fn exp(&self) -> Tensor {
        self.map_f32(|v| v.exp())
    }

    /// Elementwise natural logarithm (`aten::log`).
    pub fn log(&self) -> Tensor {
        self.map_f32(|v| v.ln())
    }

    /// Elementwise square root (`aten::sqrt`).
    pub fn sqrt(&self) -> Tensor {
        self.map_f32(|v| v.sqrt())
    }

    /// Elementwise absolute value (`aten::abs`).
    pub fn abs(&self) -> Tensor {
        match self.dtype() {
            DType::I64 => {
                let mut out = Vec::with_capacity(self.numel());
                self.for_each(|s| out.push(s.as_i64().abs()));
                Tensor::from_buffer(Buffer::I64(out), self.shape().to_vec())
            }
            _ => self.map_f32(|v| v.abs()),
        }
    }

    /// Elementwise clamp to `[lo, hi]` (`aten::clamp`).
    ///
    /// # Errors
    ///
    /// Returns an error if `lo > hi`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Result<Tensor> {
        if lo > hi {
            return Err(TensorError::invalid("clamp lower bound above upper"));
        }
        Ok(self.map_f32(move |v| v.clamp(lo, hi)))
    }

    /// Elementwise logical not (bool tensors) / zero-test otherwise.
    pub fn logical_not(&self) -> Tensor {
        let mut out = Vec::with_capacity(self.numel());
        self.for_each(|s| out.push(!s.as_bool()));
        Tensor::from_buffer(Buffer::Bool(out), self.shape().to_vec())
    }

    /// Add a scalar (`aten::add(t, s)`).
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map_f32(move |v| v + value)
    }

    /// Subtract a scalar.
    pub fn sub_scalar(&self, value: f32) -> Tensor {
        self.map_f32(move |v| v - value)
    }

    /// Multiply by a scalar (`aten::mul(t, s)`).
    pub fn mul_scalar(&self, value: f32) -> Tensor {
        self.map_f32(move |v| v * value)
    }

    /// Divide by a scalar.
    pub fn div_scalar(&self, value: f32) -> Tensor {
        self.map_f32(move |v| v / value)
    }

    /// Raise to a scalar power (`aten::pow`).
    pub fn pow_scalar(&self, value: f32) -> Tensor {
        self.map_f32(move |v| v.powf(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_ops_do_not_mutate_input() {
        let t = Tensor::from_vec_f32(vec![-2.0, 3.0], &[2]).unwrap();
        let r = t.relu();
        assert_eq!(r.to_vec_f32().unwrap(), vec![0.0, 3.0]);
        assert_eq!(t.to_vec_f32().unwrap(), vec![-2.0, 3.0]);
        assert!(!r.shares_storage_with(&t));
    }

    #[test]
    fn math_ops() {
        let t = Tensor::from_vec_f32(vec![0.0, 1.0], &[2]).unwrap();
        assert_eq!(t.exp().to_vec_f32().unwrap()[0], 1.0);
        assert_eq!(t.sigmoid().to_vec_f32().unwrap()[0], 0.5);
        assert_eq!(t.neg().to_vec_f32().unwrap(), vec![0.0, -1.0]);
        assert_eq!(t.add_scalar(2.0).to_vec_f32().unwrap(), vec![2.0, 3.0]);
        assert_eq!(t.mul_scalar(3.0).to_vec_f32().unwrap(), vec![0.0, 3.0]);
        assert_eq!(t.pow_scalar(2.0).to_vec_f32().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn integer_neg_and_abs_stay_integer() {
        let t = Tensor::from_vec_i64(vec![-3, 4], &[2]).unwrap();
        assert_eq!(t.neg().to_vec_i64().unwrap(), vec![3, -4]);
        assert_eq!(t.abs().to_vec_i64().unwrap(), vec![3, 4]);
    }

    #[test]
    fn clamp_validates_bounds() {
        let t = Tensor::from_vec_f32(vec![-5.0, 5.0], &[2]).unwrap();
        assert_eq!(
            t.clamp(-1.0, 1.0).unwrap().to_vec_f32().unwrap(),
            vec![-1.0, 1.0]
        );
        assert!(t.clamp(1.0, -1.0).is_err());
    }

    #[test]
    fn logical_not_produces_bool() {
        let t = Tensor::from_vec_bool(vec![true, false], &[2]).unwrap();
        assert_eq!(t.logical_not().to_vec_bool().unwrap(), vec![false, true]);
    }

    #[test]
    fn unary_through_view_reads_view_layout() {
        let t = Tensor::from_vec_f32(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let col = t.transpose(0, 1).unwrap().select(0, 1).unwrap();
        assert_eq!(col.neg().to_vec_f32().unwrap(), vec![-2.0, -4.0]);
    }
}
