//! Matrix multiplication: 2-D `matmul` and batched `bmm`.

use crate::storage::Buffer;
use crate::{DType, Result, Tensor, TensorError};

impl Tensor {
    /// 2-D matrix product (`aten::matmul` for rank-2 operands).
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-2 operands, non-f32 dtypes or an inner
    /// dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        check_f32(self, "matmul")?;
        check_f32(rhs, "matmul")?;
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::invalid("matmul expects rank-2 operands"));
        }
        if self.shape()[1] != rhs.shape()[0] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let n = rhs.shape()[1];
        let a = self.contiguous();
        let b = rhs.contiguous();
        let mut out = vec![0f32; m * n];
        a.storage().with_read(|ab| {
            b.storage().with_read(|bb| {
                let (av, bv) = match (ab, bb) {
                    (Buffer::F32(av), Buffer::F32(bv)) => (av, bv),
                    _ => unreachable!("dtype checked above"),
                };
                let ao = a.storage_offset();
                let bo = b.storage_offset();
                for i in 0..m {
                    for p in 0..k {
                        let aval = av[ao + i * k + p];
                        if aval == 0.0 {
                            continue;
                        }
                        for j in 0..n {
                            out[i * n + j] += aval * bv[bo + p * n + j];
                        }
                    }
                }
            })
        });
        Ok(Tensor::from_buffer(Buffer::F32(out), vec![m, n]))
    }

    /// Batched matrix product (`aten::bmm`): `[b, m, k] × [b, k, n] → [b, m, n]`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-3 operands or mismatched batch/inner
    /// dimensions.
    pub fn bmm(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 3 || rhs.rank() != 3 {
            return Err(TensorError::invalid("bmm expects rank-3 operands"));
        }
        if self.shape()[0] != rhs.shape()[0] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
                op: "bmm",
            });
        }
        let batch = self.shape()[0];
        let mut slabs = Vec::with_capacity(batch);
        for i in 0..batch {
            let a = self.select(0, i as isize)?;
            let b = rhs.select(0, i as isize)?;
            slabs.push(a.matmul(&b)?.unsqueeze(0)?);
        }
        let refs: Vec<&Tensor> = slabs.iter().collect();
        super::shape::concat(&refs, 0)
    }
}

fn check_f32(t: &Tensor, op: &'static str) -> Result<()> {
    if t.dtype() != DType::F32 {
        return Err(TensorError::DTypeMismatch {
            expected: DType::F32,
            found: t.dtype(),
            op,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2() {
        let a = Tensor::from_vec_f32(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec_f32(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.to_vec_f32().unwrap(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec_f32(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::ones(&[3, 1]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 1]);
        assert_eq!(c.to_vec_f32().unwrap(), vec![6.0, 15.0]);
    }

    #[test]
    fn matmul_validates() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&Tensor::zeros(&[2, 2])).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
        let i = Tensor::from_vec_i64(vec![1, 2, 3, 4], &[2, 2]).unwrap();
        assert!(i.matmul(&i).is_err());
    }

    #[test]
    fn matmul_on_transposed_view() {
        let a = Tensor::from_vec_f32(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let at = a.transpose(0, 1).unwrap();
        let c = at.matmul(&Tensor::ones(&[2, 1])).unwrap();
        assert_eq!(c.to_vec_f32().unwrap(), vec![4.0, 6.0]);
    }

    #[test]
    fn bmm_batches_independently() {
        let a = Tensor::from_vec_f32((1..=8).map(|v| v as f32).collect(), &[2, 2, 2]).unwrap();
        let b = Tensor::ones(&[2, 2, 2]);
        let c = a.bmm(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(
            c.to_vec_f32().unwrap(),
            vec![3.0, 3.0, 7.0, 7.0, 11.0, 11.0, 15.0, 15.0]
        );
        assert!(a.bmm(&Tensor::ones(&[3, 2, 2])).is_err());
    }
}
