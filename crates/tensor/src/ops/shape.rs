//! Shape-combining operators: `concat`, `stack`, `gather`, `where`.

use crate::index::{normalize_dim, offset_of, CoordIter};
use crate::storage::Buffer;
use crate::{DType, Result, Scalar, Tensor, TensorError};

/// Concatenate tensors along `dim` (`aten::cat`).
///
/// # Errors
///
/// Returns an error if `tensors` is empty, shapes disagree outside `dim`, or
/// dtypes differ.
pub fn concat(tensors: &[&Tensor], dim: isize) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::invalid("concat of zero tensors"));
    }
    let first = tensors[0];
    let d = normalize_dim(dim, first.rank())?;
    let mut out_shape = first.shape().to_vec();
    let mut total = 0usize;
    for t in tensors {
        if t.rank() != first.rank() || t.dtype() != first.dtype() {
            return Err(TensorError::invalid(
                "concat operands must agree in rank and dtype",
            ));
        }
        for i in 0..first.rank() {
            if i != d && t.shape()[i] != first.shape()[i] {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape().to_vec(),
                    rhs: t.shape().to_vec(),
                    op: "concat",
                });
            }
        }
        total += t.shape()[d];
    }
    out_shape[d] = total;
    let out = Tensor::zeros_dtype(&out_shape, first.dtype());
    let mut cursor = 0isize;
    for t in tensors {
        let len = t.shape()[d];
        let dst = out.slice(d as isize, cursor, cursor + len as isize, 1)?;
        dst.copy_(t)?;
        cursor += len as isize;
    }
    Ok(out)
}

/// Stack tensors along a new leading `dim` (`aten::stack`).
///
/// # Errors
///
/// Returns an error if `tensors` is empty or shapes/dtypes disagree.
pub fn stack(tensors: &[&Tensor], dim: isize) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::invalid("stack of zero tensors"));
    }
    let mut unsqueezed = Vec::with_capacity(tensors.len());
    for t in tensors {
        unsqueezed.push(t.unsqueeze(dim)?);
    }
    let refs: Vec<&Tensor> = unsqueezed.iter().collect();
    concat(&refs, dim)
}

/// Elementwise select: `cond ? a : b` with broadcasting (`aten::where`).
///
/// # Errors
///
/// Returns an error if `cond` is not boolean or shapes do not broadcast.
pub fn where_select(cond: &Tensor, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if cond.dtype() != DType::Bool {
        return Err(TensorError::DTypeMismatch {
            expected: DType::Bool,
            found: cond.dtype(),
            op: "where",
        });
    }
    // Broadcast in two steps: (a ? b) then with cond.
    let picked = a.zip_broadcast(b, "where", None, |x, _| x)?;
    let shape = crate::index::broadcast_shapes(cond.shape(), picked.shape(), "where")?;
    let cs = crate::index::broadcast_strides(cond.shape(), cond.strides(), &shape);
    let as_ = crate::index::broadcast_strides(a.shape(), a.strides(), &shape);
    let bs = crate::index::broadcast_strides(b.shape(), b.strides(), &shape);
    let dtype = picked.dtype();
    let mut out: Vec<Scalar> = Vec::with_capacity(shape.iter().product());
    cond.storage().with_read(|cb| {
        a.storage().with_read(|ab| {
            b.storage().with_read(|bb| {
                for coord in CoordIter::new(&shape) {
                    let co = (cond.offset as isize + offset_of(&coord, &cs)) as usize;
                    let ao = (a.offset as isize + offset_of(&coord, &as_)) as usize;
                    let bo = (b.offset as isize + offset_of(&coord, &bs)) as usize;
                    let v = if cb.get(co).as_bool() {
                        ab.get(ao)
                    } else {
                        bb.get(bo)
                    };
                    out.push(v.cast(dtype));
                }
            })
        })
    });
    let buffer = match dtype {
        DType::F32 => Buffer::F32(out.iter().map(|s| s.as_f32()).collect()),
        DType::I64 => Buffer::I64(out.iter().map(|s| s.as_i64()).collect()),
        DType::Bool => Buffer::Bool(out.iter().map(|s| s.as_bool()).collect()),
    };
    Ok(Tensor::from_buffer(buffer, shape))
}

impl Tensor {
    /// Gather elements along `dim` using integer `index` (`aten::gather`).
    ///
    /// `index` must have the same rank as `self`; the output has `index`'s
    /// shape.
    ///
    /// # Errors
    ///
    /// Returns an error if ranks differ, `index` is not i64, or an index is
    /// out of range.
    pub fn gather(&self, dim: isize, index: &Tensor) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        if index.dtype() != DType::I64 {
            return Err(TensorError::DTypeMismatch {
                expected: DType::I64,
                found: index.dtype(),
                op: "gather",
            });
        }
        if index.rank() != self.rank() {
            return Err(TensorError::invalid(
                "gather index rank must match input rank",
            ));
        }
        let out_shape = index.shape().to_vec();
        let mut out: Vec<Scalar> = Vec::with_capacity(index.numel());
        let mut fail: Option<TensorError> = None;
        self.storage().with_read(|sb| {
            index.storage().with_read(|ib| {
                for coord in CoordIter::new(&out_shape) {
                    let io = (index.offset as isize + offset_of(&coord, index.strides())) as usize;
                    let i = ib.get(io).as_i64();
                    if i < 0 || i as usize >= self.shape()[d] {
                        fail.get_or_insert(TensorError::IndexOutOfRange {
                            index: i as isize,
                            size: self.shape()[d],
                            dim: d,
                        });
                        out.push(Scalar::F32(0.0));
                        continue;
                    }
                    let mut sc = coord.clone();
                    sc[d] = i as usize;
                    let so = (self.offset as isize + offset_of(&sc, self.strides())) as usize;
                    out.push(sb.get(so));
                }
            })
        });
        if let Some(e) = fail {
            return Err(e);
        }
        let buffer = match self.dtype() {
            DType::F32 => Buffer::F32(out.iter().map(|s| s.as_f32()).collect()),
            DType::I64 => Buffer::I64(out.iter().map(|s| s.as_i64()).collect()),
            DType::Bool => Buffer::Bool(out.iter().map(|s| s.as_bool()).collect()),
        };
        Ok(Tensor::from_buffer(buffer, out_shape))
    }

    /// Select whole slices along `dim` by integer indices
    /// (`aten::index_select`).
    ///
    /// # Errors
    ///
    /// Returns an error if `index` is not a 1-D i64 tensor or any index is
    /// out of range.
    pub fn index_select(&self, dim: isize, index: &Tensor) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        if index.dtype() != DType::I64 || index.rank() != 1 {
            return Err(TensorError::invalid("index_select needs a 1-D i64 index"));
        }
        let ids = index.to_vec_i64()?;
        let mut slices = Vec::with_capacity(ids.len());
        for &i in &ids {
            slices.push(self.select(d as isize, i as isize)?.unsqueeze(d as isize)?);
        }
        let refs: Vec<&Tensor> = slices.iter().collect();
        concat(&refs, d as isize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: &[usize]) -> Tensor {
        let n = shape.iter().product();
        Tensor::from_vec_f32((0..n).map(|i| i as f32).collect(), shape).unwrap()
    }

    #[test]
    fn concat_rows_and_cols() {
        let a = iota(&[1, 2]);
        let b = iota(&[1, 2]);
        let r = concat(&[&a, &b], 0).unwrap();
        assert_eq!(r.shape(), &[2, 2]);
        let c = concat(&[&a, &b], 1).unwrap();
        assert_eq!(c.shape(), &[1, 4]);
        assert_eq!(c.to_vec_f32().unwrap(), vec![0.0, 1.0, 0.0, 1.0]);
        assert!(concat(&[], 0).is_err());
        assert!(concat(&[&a, &iota(&[1, 3])], 0).is_err());
    }

    #[test]
    fn stack_adds_dimension() {
        let a = iota(&[2]);
        let b = iota(&[2]);
        let s = stack(&[&a, &b], 0).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        let s1 = stack(&[&a, &b], 1).unwrap();
        assert_eq!(s1.shape(), &[2, 2]);
        assert_eq!(s1.to_vec_f32().unwrap(), vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn where_selects_elementwise() {
        let cond = Tensor::from_vec_bool(vec![true, false], &[2]).unwrap();
        let a = Tensor::full(&[2], 1.0);
        let b = Tensor::full(&[2], 2.0);
        let r = where_select(&cond, &a, &b).unwrap();
        assert_eq!(r.to_vec_f32().unwrap(), vec![1.0, 2.0]);
        assert!(where_select(&a, &a, &b).is_err());
    }

    #[test]
    fn where_broadcasts_condition() {
        let cond = Tensor::from_vec_bool(vec![true, false], &[2, 1]).unwrap();
        let a = Tensor::full(&[2, 3], 1.0);
        let b = Tensor::full(&[2, 3], 0.0);
        let r = where_select(&cond, &a, &b).unwrap();
        assert_eq!(r.to_vec_f32().unwrap(), vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn gather_along_dim() {
        let t = iota(&[2, 3]);
        let idx = Tensor::from_vec_i64(vec![2, 0], &[2, 1]).unwrap();
        let g = t.gather(1, &idx).unwrap();
        assert_eq!(g.to_vec_f32().unwrap(), vec![2.0, 3.0]);
        let bad = Tensor::from_vec_i64(vec![5, 0], &[2, 1]).unwrap();
        assert!(t.gather(1, &bad).is_err());
    }

    #[test]
    fn index_select_picks_slices() {
        let t = iota(&[3, 2]);
        let idx = Tensor::from_vec_i64(vec![2, 0], &[2]).unwrap();
        let r = t.index_select(0, &idx).unwrap();
        assert_eq!(r.shape(), &[2, 2]);
        assert_eq!(r.to_vec_f32().unwrap(), vec![4.0, 5.0, 0.0, 1.0]);
    }
}
