//! Seeded random tensor generation for workload inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::storage::Buffer;
use crate::Tensor;

impl Tensor {
    /// Uniform samples in `[lo, hi)` from a deterministic seed.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_buffer(Buffer::F32(data), shape.to_vec())
    }

    /// Standard-normal samples (Box–Muller) from a deterministic seed.
    pub fn randn(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect();
        Tensor::from_buffer(Buffer::F32(data), shape.to_vec())
    }

    /// Uniform integer samples in `[lo, hi)` from a deterministic seed.
    pub fn rand_int(shape: &[usize], lo: i64, hi: i64, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_buffer(Buffer::I64(data), shape.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = Tensor::rand_uniform(&[8], 0.0, 1.0, 42);
        let b = Tensor::rand_uniform(&[8], 0.0, 1.0, 42);
        let c = Tensor::rand_uniform(&[8], 0.0, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_range() {
        let t = Tensor::rand_uniform(&[100], -2.0, 3.0, 7);
        for v in t.to_vec_f32().unwrap() {
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn randn_has_plausible_moments() {
        let t = Tensor::randn(&[10_000], 1);
        let mean = t.mean_all();
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn rand_int_respects_range() {
        let t = Tensor::rand_int(&[64], 0, 5, 9);
        for v in t.to_vec_i64().unwrap() {
            assert!((0..5).contains(&v));
        }
    }
}
