//! In-place mutation operators (`Mutate(v, w)` in the paper, Definition 3.2).
//!
//! These write through the receiver's storage; any tensor aliasing that
//! storage observes the change. Sources broadcast to the receiver's shape
//! following PyTorch semantics.

use crate::index::{broadcast_strides, offset_of, CoordIter};
use crate::storage::Buffer;
use crate::{Result, Scalar, Tensor, TensorError};

impl Tensor {
    /// Apply `f` to every element of this view, in place.
    fn map_inplace(&self, f: impl Fn(Scalar) -> Scalar) {
        let offs = self.element_offsets();
        self.storage.with_write(|b| {
            for &o in &offs {
                let v = b.get(o);
                b.set(o, f(v));
            }
        });
    }

    /// Combine every element of this view with the broadcast `src`, in place.
    fn zip_inplace(
        &self,
        src: &Tensor,
        op: &'static str,
        f: impl Fn(Scalar, Scalar) -> Scalar,
    ) -> Result<()> {
        // Source must broadcast to the destination's exact shape.
        let src_strides = {
            if src.rank() > self.rank() {
                return Err(TensorError::ShapeMismatch {
                    lhs: self.shape.clone(),
                    rhs: src.shape.clone(),
                    op,
                });
            }
            let pad = self.rank() - src.rank();
            for i in 0..src.rank() {
                if src.shape[i] != self.shape[pad + i] && src.shape[i] != 1 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: src.shape.clone(),
                        op,
                    });
                }
            }
            broadcast_strides(&src.shape, &src.strides, &self.shape)
        };
        // If src aliases our storage, snapshot it first: PyTorch's in-place
        // ops read the source fully before writing when buffers overlap is
        // not generally guaranteed, but copy-on-overlap gives the intuitive
        // sequential semantics our interpreter needs.
        // Fast path: same shape, both contiguous, disjoint storage — a flat
        // element-by-element walk with no coordinate math.
        if self.is_contiguous()
            && src.is_contiguous()
            && self.shape == src.shape
            && !src.shares_storage_with(self)
        {
            let n = self.numel();
            let values: Vec<Scalar> = {
                let mut vals = Vec::with_capacity(n);
                src.for_each(|s| vals.push(s));
                vals
            };
            self.storage.with_write(|b| {
                for (k, s) in values.into_iter().enumerate() {
                    let off = self.offset + k;
                    let d = b.get(off);
                    b.set(off, f(d, s));
                }
            });
            return Ok(());
        }
        let src_snapshot;
        let src_eff = if src.shares_storage_with(self) {
            src_snapshot = src.clone_data();
            &src_snapshot
        } else {
            src
        };
        let src_strides = if src_eff.shares_storage_with(src) {
            src_strides
        } else {
            broadcast_strides(&src_eff.shape, &src_eff.strides, &self.shape)
        };
        let mut pairs: Vec<(usize, Scalar)> = Vec::with_capacity(self.numel());
        src_eff.storage().with_read(|sb| {
            for coord in CoordIter::new(&self.shape) {
                let dst_off = (self.offset as isize + offset_of(&coord, &self.strides)) as usize;
                let src_off = (src_eff.offset as isize + offset_of(&coord, &src_strides)) as usize;
                pairs.push((dst_off, sb.get(src_off)));
            }
        });
        self.storage.with_write(|b| {
            for (off, s) in pairs {
                let d = b.get(off);
                b.set(off, f(d, s));
            }
        });
        Ok(())
    }

    /// Replace this view's data with `src` (broadcast), i.e. `aten::copy_`.
    ///
    /// # Errors
    ///
    /// Returns an error if `src` does not broadcast to this shape.
    pub fn copy_(&self, src: &Tensor) -> Result<()> {
        self.zip_inplace(src, "copy_", |_, s| s)
    }

    /// Fill every element with `value`, i.e. `aten::fill_`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface uniformity with the
    /// other mutators.
    pub fn fill_(&self, value: f32) -> Result<()> {
        self.map_inplace(|d| Scalar::F32(value).cast(d.dtype()));
        Ok(())
    }

    /// Fill every element with an arbitrary scalar.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface uniformity.
    pub fn fill_scalar_(&self, value: Scalar) -> Result<()> {
        self.map_inplace(move |d| value.cast(d.dtype()));
        Ok(())
    }

    /// `self += src` (broadcast), i.e. `aten::add_`.
    ///
    /// # Errors
    ///
    /// Returns an error if `src` does not broadcast to this shape.
    pub fn add_(&self, src: &Tensor) -> Result<()> {
        self.zip_inplace(src, "add_", |d, s| arith(d, s, |a, b| a + b))
    }

    /// `self -= src` (broadcast), i.e. `aten::sub_`.
    ///
    /// # Errors
    ///
    /// Returns an error if `src` does not broadcast to this shape.
    pub fn sub_(&self, src: &Tensor) -> Result<()> {
        self.zip_inplace(src, "sub_", |d, s| arith(d, s, |a, b| a - b))
    }

    /// `self *= src` (broadcast), i.e. `aten::mul_`.
    ///
    /// # Errors
    ///
    /// Returns an error if `src` does not broadcast to this shape.
    pub fn mul_(&self, src: &Tensor) -> Result<()> {
        self.zip_inplace(src, "mul_", |d, s| arith(d, s, |a, b| a * b))
    }

    /// `self /= src` (broadcast), i.e. `aten::div_`.
    ///
    /// # Errors
    ///
    /// Returns an error if `src` does not broadcast to this shape.
    pub fn div_(&self, src: &Tensor) -> Result<()> {
        self.zip_inplace(src, "div_", |d, s| arith(d, s, |a, b| a / b))
    }

    /// `self += value` for a scalar, i.e. `aten::add_(t, s)`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface uniformity.
    pub fn add_scalar_(&self, value: f32) -> Result<()> {
        self.map_inplace(move |d| arith(d, Scalar::F32(value), |a, b| a + b));
        Ok(())
    }

    /// `self *= value` for a scalar, i.e. `aten::mul_(t, s)`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface uniformity.
    pub fn mul_scalar_(&self, value: f32) -> Result<()> {
        self.map_inplace(move |d| arith(d, Scalar::F32(value), |a, b| a * b));
        Ok(())
    }

    /// In-place logistic sigmoid, i.e. `aten::sigmoid_`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface uniformity.
    pub fn sigmoid_(&self) -> Result<()> {
        self.map_inplace(|d| Scalar::F32(1.0 / (1.0 + (-d.as_f32()).exp())));
        Ok(())
    }

    /// In-place ReLU, i.e. `aten::relu_`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface uniformity.
    pub fn relu_(&self) -> Result<()> {
        self.map_inplace(|d| Scalar::F32(d.as_f32().max(0.0)));
        Ok(())
    }

    /// In-place `tanh`, i.e. `aten::tanh_`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface uniformity.
    pub fn tanh_(&self) -> Result<()> {
        self.map_inplace(|d| Scalar::F32(d.as_f32().tanh()));
        Ok(())
    }

    /// In-place `exp`, i.e. `aten::exp_`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface uniformity.
    pub fn exp_(&self) -> Result<()> {
        self.map_inplace(|d| Scalar::F32(d.as_f32().exp()));
        Ok(())
    }

    /// In-place negation, i.e. `aten::neg_`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface uniformity.
    pub fn neg_(&self) -> Result<()> {
        self.map_inplace(|d| match d {
            Scalar::F32(v) => Scalar::F32(-v),
            Scalar::I64(v) => Scalar::I64(-v),
            Scalar::Bool(v) => Scalar::Bool(!v),
        });
        Ok(())
    }

    /// In-place clamp to `[lo, hi]`, i.e. `aten::clamp_`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lo > hi`.
    pub fn clamp_(&self, lo: f32, hi: f32) -> Result<()> {
        if lo > hi {
            return Err(TensorError::invalid("clamp_ lower bound above upper"));
        }
        self.map_inplace(move |d| Scalar::F32(d.as_f32().clamp(lo, hi)));
        Ok(())
    }
}

/// Numeric binary helper preserving the destination's dtype.
fn arith(d: Scalar, s: Scalar, f: impl Fn(f64, f64) -> f64) -> Scalar {
    let out = f(d.as_f64(), s.as_f64());
    match d.dtype() {
        crate::DType::F32 => Scalar::F32(out as f32),
        crate::DType::I64 => Scalar::I64(out as i64),
        crate::DType::Bool => Scalar::Bool(out != 0.0),
    }
}

/// A contiguous copy helper used by tests to freeze a value.
#[allow(dead_code)]
pub(crate) fn snapshot(t: &Tensor) -> Buffer {
    t.storage().with_read(|b| b.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: &[usize]) -> Tensor {
        let n = shape.iter().product();
        Tensor::from_vec_f32((0..n).map(|i| i as f32).collect(), shape).unwrap()
    }

    #[test]
    fn copy_through_view_mutates_base() {
        let a = iota(&[2, 3]);
        let b = a.select(0, 0).unwrap();
        b.copy_(&Tensor::full(&[3], -1.0)).unwrap();
        assert_eq!(
            a.to_vec_f32().unwrap(),
            vec![-1.0, -1.0, -1.0, 3.0, 4.0, 5.0]
        );
    }

    #[test]
    fn copy_broadcasts_source() {
        let a = iota(&[2, 3]);
        a.copy_(&Tensor::full(&[1], 5.0)).unwrap();
        assert_eq!(a.to_vec_f32().unwrap(), vec![5.0; 6]);
        assert!(a.copy_(&iota(&[4])).is_err());
    }

    #[test]
    fn arith_mutators() {
        let a = iota(&[3]);
        a.add_(&Tensor::full(&[3], 1.0)).unwrap();
        assert_eq!(a.to_vec_f32().unwrap(), vec![1.0, 2.0, 3.0]);
        a.mul_scalar_(2.0).unwrap();
        assert_eq!(a.to_vec_f32().unwrap(), vec![2.0, 4.0, 6.0]);
        a.sub_(&Tensor::full(&[3], 2.0)).unwrap();
        a.div_(&Tensor::full(&[3], 2.0)).unwrap();
        assert_eq!(a.to_vec_f32().unwrap(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn unary_mutators() {
        let a = Tensor::from_vec_f32(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        a.relu_().unwrap();
        assert_eq!(a.to_vec_f32().unwrap(), vec![0.0, 0.0, 2.0]);
        a.clamp_(0.0, 1.0).unwrap();
        assert_eq!(a.to_vec_f32().unwrap(), vec![0.0, 0.0, 1.0]);
        assert!(a.clamp_(2.0, 1.0).is_err());
        let s = Tensor::from_vec_f32(vec![0.0], &[1]).unwrap();
        s.sigmoid_().unwrap();
        assert_eq!(s.to_vec_f32().unwrap(), vec![0.5]);
    }

    #[test]
    fn overlapping_copy_reads_before_writing() {
        // a[0:2] = a[1:3] with overlap must behave as if the source were
        // snapshotted first.
        let a = iota(&[4]);
        let dst = a.slice(0, 0, 2, 1).unwrap();
        let src = a.slice(0, 1, 3, 1).unwrap();
        dst.copy_(&src).unwrap();
        assert_eq!(a.to_vec_f32().unwrap(), vec![1.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn fill_preserves_dtype() {
        let t = Tensor::from_vec_i64(vec![1, 2], &[2]).unwrap();
        t.fill_(7.9).unwrap();
        assert_eq!(t.to_vec_i64().unwrap(), vec![7, 7]);
    }

    #[test]
    fn mutation_through_expand_writes_shared_element() {
        // Writing through a stride-0 view hits the same storage cell.
        let t = Tensor::zeros(&[1]);
        let e = t.expand(&[3]).unwrap();
        e.add_scalar_(1.0).unwrap();
        // Three logical elements all map to one physical cell: 0 +1 +1 +1.
        assert_eq!(t.to_vec_f32().unwrap(), vec![3.0]);
    }
}
