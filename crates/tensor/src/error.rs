//! Error type shared by all fallible tensor operations.

use std::error::Error;
use std::fmt;

use crate::DType;

/// Error returned by fallible [`crate::Tensor`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two shapes could not be broadcast together or did not match.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// The operation that failed.
        op: &'static str,
    },
    /// A dimension index was out of range for the tensor's rank.
    DimOutOfRange {
        /// The offending dimension.
        dim: isize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An element index was out of range along some dimension.
    IndexOutOfRange {
        /// The offending index.
        index: isize,
        /// The dimension size it was checked against.
        size: usize,
        /// The dimension it indexed.
        dim: usize,
    },
    /// The operation required a different element type.
    DTypeMismatch {
        /// The type that was expected.
        expected: DType,
        /// The type that was found.
        found: DType,
        /// The operation that failed.
        op: &'static str,
    },
    /// `view`/`reshape` target has a different number of elements.
    NumelMismatch {
        /// Source element count.
        from: usize,
        /// Requested element count.
        to: usize,
    },
    /// A `view` was requested on a tensor whose layout cannot be reinterpreted
    /// without copying.
    NotViewable {
        /// Human-readable description of why.
        reason: String,
    },
    /// Any other invalid argument.
    InvalidArgument {
        /// Description of the problem.
        message: String,
    },
}

impl TensorError {
    /// Convenience constructor for [`TensorError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        TensorError::InvalidArgument {
            message: message.into(),
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::DimOutOfRange { dim, rank } => {
                write!(f, "dimension {dim} out of range for rank {rank}")
            }
            TensorError::IndexOutOfRange { index, size, dim } => {
                write!(f, "index {index} out of range for size {size} at dim {dim}")
            }
            TensorError::DTypeMismatch {
                expected,
                found,
                op,
            } => write!(
                f,
                "dtype mismatch in {op}: expected {expected}, found {found}"
            ),
            TensorError::NumelMismatch { from, to } => {
                write!(f, "cannot reshape {from} elements into {to} elements")
            }
            TensorError::NotViewable { reason } => {
                write!(f, "layout cannot be viewed without copy: {reason}")
            }
            TensorError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            TensorError::ShapeMismatch {
                lhs: vec![2],
                rhs: vec![3],
                op: "add",
            },
            TensorError::DimOutOfRange { dim: 5, rank: 2 },
            TensorError::IndexOutOfRange {
                index: -4,
                size: 3,
                dim: 0,
            },
            TensorError::DTypeMismatch {
                expected: DType::F32,
                found: DType::Bool,
                op: "matmul",
            },
            TensorError::NumelMismatch { from: 6, to: 5 },
            TensorError::NotViewable {
                reason: "non-contiguous".into(),
            },
            TensorError::invalid("nope"),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
