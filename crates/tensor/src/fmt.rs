//! Human-readable tensor formatting.

use std::fmt;

use crate::{DType, Tensor};

/// How many elements per dimension to print before eliding with `…`.
const EDGE_ITEMS: usize = 4;

impl fmt::Display for Tensor {
    /// Nested-bracket rendering (like NumPy/PyTorch), eliding long
    /// dimensions and annotating shape and dtype:
    ///
    /// ```text
    /// [[0, 1, 2], [3, 4, 5]] : f32[2x3]
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_dim(self, &mut Vec::new(), f)?;
        write!(
            f,
            " : {}[{}]",
            self.dtype(),
            self.shape()
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x")
        )
    }
}

fn fmt_scalar(t: &Tensor, coord: &[usize], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t.at(coord) {
        Ok(s) => match t.dtype() {
            DType::F32 => {
                let v = s.as_f32();
                if v == v.trunc() && v.abs() < 1e6 {
                    write!(f, "{v:.0}")
                } else {
                    write!(f, "{v:.4}")
                }
            }
            DType::I64 => write!(f, "{}", s.as_i64()),
            DType::Bool => write!(f, "{}", s.as_bool()),
        },
        Err(_) => write!(f, "?"),
    }
}

fn fmt_dim(t: &Tensor, coord: &mut Vec<usize>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let depth = coord.len();
    if depth == t.rank() {
        return fmt_scalar(t, coord, f);
    }
    let size = t.shape()[depth];
    write!(f, "[")?;
    let mut printed = 0;
    for i in 0..size {
        if size > 2 * EDGE_ITEMS && i == EDGE_ITEMS {
            write!(f, ", …")?;
            continue;
        }
        if size > 2 * EDGE_ITEMS && i > EDGE_ITEMS && i < size - EDGE_ITEMS {
            continue;
        }
        if printed > 0 {
            write!(f, ", ")?;
        }
        coord.push(i);
        fmt_dim(t, coord, f)?;
        coord.pop();
        printed += 1;
    }
    write!(f, "]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_tensor_renders_fully() {
        let t = Tensor::from_vec_f32(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[2, 3]).unwrap();
        assert_eq!(t.to_string(), "[[0, 1, 2], [3, 4, 5]] : f32[2x3]");
    }

    #[test]
    fn long_dimension_is_elided() {
        let t = Tensor::arange_f32(100);
        let s = t.to_string();
        assert!(s.contains('…'), "{s}");
        assert!(s.contains("f32[100]"), "{s}");
        assert!(s.contains("99"), "tail edge items shown: {s}");
    }

    #[test]
    fn scalar_and_bool_tensors() {
        assert_eq!(Tensor::scalar_f32(2.5).to_string(), "2.5000 : f32[]");
        let b = Tensor::from_vec_bool(vec![true, false], &[2]).unwrap();
        assert_eq!(b.to_string(), "[true, false] : bool[2]");
        let i = Tensor::from_vec_i64(vec![-7], &[1]).unwrap();
        assert_eq!(i.to_string(), "[-7] : i64[1]");
    }

    #[test]
    fn views_render_their_logical_contents() {
        let t = Tensor::from_vec_f32(vec![0.0, 1.0, 2.0, 3.0], &[2, 2]).unwrap();
        let col = t.transpose(0, 1).unwrap().select(0, 1).unwrap();
        assert_eq!(col.to_string(), "[1, 3] : f32[2]");
    }
}
