//! Element types and dynamically-typed scalars.

use std::fmt;

/// Element type of a [`crate::Tensor`].
///
/// The workloads in the TensorSSA evaluation only need floating-point data,
/// integer indices and boolean masks, so the runtime supports exactly those.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit signed integer (indices, lengths).
    I64,
    /// Boolean (comparison results, masks).
    Bool,
}

impl DType {
    /// Size of one element in bytes, used by the device cost model.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::I64 => 8,
            DType::Bool => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F32 => write!(f, "f32"),
            DType::I64 => write!(f, "i64"),
            DType::Bool => write!(f, "bool"),
        }
    }
}

/// A dynamically-typed scalar value, the element-level counterpart of
/// [`crate::Tensor`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub enum Scalar {
    /// A float element.
    F32(f32),
    /// An integer element.
    I64(i64),
    /// A boolean element.
    Bool(bool),
}

impl Scalar {
    /// The element type this scalar belongs to.
    pub fn dtype(self) -> DType {
        match self {
            Scalar::F32(_) => DType::F32,
            Scalar::I64(_) => DType::I64,
            Scalar::Bool(_) => DType::Bool,
        }
    }

    /// Numeric value as `f64`, converting integers and booleans.
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::F32(v) => v as f64,
            Scalar::I64(v) => v as f64,
            Scalar::Bool(v) => {
                if v {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Value as `f32`, converting integers and booleans.
    pub fn as_f32(self) -> f32 {
        self.as_f64() as f32
    }

    /// Value as `i64`, truncating floats.
    pub fn as_i64(self) -> i64 {
        match self {
            Scalar::F32(v) => v as i64,
            Scalar::I64(v) => v,
            Scalar::Bool(v) => v as i64,
        }
    }

    /// Value as `bool` (non-zero is `true`).
    pub fn as_bool(self) -> bool {
        match self {
            Scalar::F32(v) => v != 0.0,
            Scalar::I64(v) => v != 0,
            Scalar::Bool(v) => v,
        }
    }

    /// Convert to another element type.
    pub fn cast(self, dtype: DType) -> Scalar {
        match dtype {
            DType::F32 => Scalar::F32(self.as_f32()),
            DType::I64 => Scalar::I64(self.as_i64()),
            DType::Bool => Scalar::Bool(self.as_bool()),
        }
    }
}

impl From<f32> for Scalar {
    fn from(v: f32) -> Self {
        Scalar::F32(v)
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::I64(v)
    }
}

impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::F32(v) => write!(f, "{v}"),
            Scalar::I64(v) => write!(f, "{v}"),
            Scalar::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Promotion rule used by binary operators: `bool < i64 < f32`.
pub(crate) fn promote(a: DType, b: DType) -> DType {
    use DType::*;
    match (a, b) {
        (F32, _) | (_, F32) => F32,
        (I64, _) | (_, I64) => I64,
        (Bool, Bool) => Bool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_casts_round_trip() {
        assert_eq!(Scalar::F32(2.5).as_i64(), 2);
        assert_eq!(Scalar::I64(3).as_f32(), 3.0);
        assert!(Scalar::F32(0.1).as_bool());
        assert!(!Scalar::I64(0).as_bool());
        assert_eq!(Scalar::Bool(true).cast(DType::F32), Scalar::F32(1.0));
    }

    #[test]
    fn promotion_prefers_float() {
        assert_eq!(promote(DType::Bool, DType::Bool), DType::Bool);
        assert_eq!(promote(DType::Bool, DType::I64), DType::I64);
        assert_eq!(promote(DType::I64, DType::F32), DType::F32);
        assert_eq!(promote(DType::F32, DType::F32), DType::F32);
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }
}
