//! View operators: alias-producing reinterpretations of a tensor's layout.
//!
//! Every method in this module returns a tensor that **shares storage** with
//! the receiver (Definition 3.1 of the paper: `v ← x[·]`). Mutating the result
//! through an in-place operator mutates the base tensor too.

use crate::index::{contiguous_strides, normalize_dim, normalize_index, numel};
use crate::{Result, Tensor, TensorError};

impl Tensor {
    fn view_with(&self, shape: Vec<usize>, strides: Vec<isize>, offset: usize) -> Tensor {
        Tensor {
            storage: self.storage.clone(),
            offset,
            shape,
            strides,
        }
    }

    /// Select index `index` along `dim`, removing that dimension.
    ///
    /// Equivalent to PyTorch's `t.select(dim, index)` / `t[index]` on `dim` 0.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` or `index` is out of range.
    pub fn select(&self, dim: isize, index: isize) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        let i = normalize_index(index, self.shape[d], d)?;
        let mut shape = self.shape.clone();
        let mut strides = self.strides.clone();
        let offset = (self.offset as isize + i as isize * strides[d]) as usize;
        shape.remove(d);
        strides.remove(d);
        Ok(self.view_with(shape, strides, offset))
    }

    /// Slice `[start, end)` with `step` along `dim`, keeping the dimension.
    ///
    /// `end` is clamped to the dimension size, matching PyTorch semantics.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range or `step` is zero/negative.
    pub fn slice(&self, dim: isize, start: isize, end: isize, step: isize) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        if step <= 0 {
            return Err(TensorError::invalid("slice step must be positive"));
        }
        let size = self.shape[d] as isize;
        let clamp = |v: isize| -> isize {
            let v = if v < 0 { v + size } else { v };
            v.clamp(0, size)
        };
        let s = clamp(start);
        let e = clamp(end).max(s);
        let len = ((e - s) + step - 1) / step;
        let mut shape = self.shape.clone();
        let mut strides = self.strides.clone();
        let offset = (self.offset as isize + s * strides[d]) as usize;
        shape[d] = len as usize;
        strides[d] *= step;
        Ok(self.view_with(shape, strides, offset))
    }

    /// Narrow to `length` elements starting at `start` along `dim`.
    ///
    /// # Errors
    ///
    /// Returns an error if the range does not fit in the dimension.
    pub fn narrow(&self, dim: isize, start: isize, length: usize) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        let s = normalize_index(start, self.shape[d] + 1, d)?;
        if s + length > self.shape[d] {
            return Err(TensorError::IndexOutOfRange {
                index: (s + length) as isize,
                size: self.shape[d],
                dim: d,
            });
        }
        self.slice(d as isize, s as isize, (s + length) as isize, 1)
    }

    /// Reorder dimensions according to `perm` (a permutation of `0..rank`).
    ///
    /// # Errors
    ///
    /// Returns an error if `perm` is not a permutation of the dimensions.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.rank() {
            return Err(TensorError::invalid(format!(
                "permutation of length {} for rank {}",
                perm.len(),
                self.rank()
            )));
        }
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            if p >= self.rank() || seen[p] {
                return Err(TensorError::invalid("invalid permutation"));
            }
            seen[p] = true;
        }
        let shape = perm.iter().map(|&p| self.shape[p]).collect();
        let strides = perm.iter().map(|&p| self.strides[p]).collect();
        Ok(self.view_with(shape, strides, self.offset))
    }

    /// Swap dimensions `dim0` and `dim1`.
    ///
    /// # Errors
    ///
    /// Returns an error if either dimension is out of range.
    pub fn transpose(&self, dim0: isize, dim1: isize) -> Result<Tensor> {
        let a = normalize_dim(dim0, self.rank())?;
        let b = normalize_dim(dim1, self.rank())?;
        let mut perm: Vec<usize> = (0..self.rank()).collect();
        perm.swap(a, b);
        self.permute(&perm)
    }

    /// Insert a size-1 dimension at `dim`.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range (`0..=rank`).
    pub fn unsqueeze(&self, dim: isize) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank() + 1)?;
        let mut shape = self.shape.clone();
        let mut strides = self.strides.clone();
        // The stride value of a size-1 dim never affects addressing.
        let stride = if d < strides.len() { strides[d] } else { 1 };
        shape.insert(d, 1);
        strides.insert(d, stride);
        Ok(self.view_with(shape, strides, self.offset))
    }

    /// Remove the size-1 dimension at `dim`.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim` is out of range or not of size 1.
    pub fn squeeze(&self, dim: isize) -> Result<Tensor> {
        let d = normalize_dim(dim, self.rank())?;
        if self.shape[d] != 1 {
            return Err(TensorError::invalid(format!(
                "squeeze dim {d} of size {}",
                self.shape[d]
            )));
        }
        let mut shape = self.shape.clone();
        let mut strides = self.strides.clone();
        shape.remove(d);
        strides.remove(d);
        Ok(self.view_with(shape, strides, self.offset))
    }

    /// Broadcast size-1 dimensions up to `target` shape without copying
    /// (the expanded dimensions get stride 0).
    ///
    /// # Errors
    ///
    /// Returns an error if a non-1 dimension would need to change size.
    pub fn expand(&self, target: &[usize]) -> Result<Tensor> {
        if target.len() < self.rank() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: target.to_vec(),
                op: "expand",
            });
        }
        let pad = target.len() - self.rank();
        let mut strides = vec![0isize; target.len()];
        for i in 0..self.rank() {
            if self.shape[i] == target[pad + i] {
                strides[pad + i] = self.strides[i];
            } else if self.shape[i] == 1 {
                strides[pad + i] = 0;
            } else {
                return Err(TensorError::ShapeMismatch {
                    lhs: self.shape.clone(),
                    rhs: target.to_vec(),
                    op: "expand",
                });
            }
        }
        Ok(self.view_with(target.to_vec(), strides, self.offset))
    }

    /// Reinterpret a contiguous tensor with a new shape, sharing storage.
    ///
    /// One dimension may be `-1` and is inferred.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotViewable`] if this tensor is not contiguous
    /// (use [`Tensor::reshape`] to fall back to a copy), or
    /// [`TensorError::NumelMismatch`] if the element counts differ.
    pub fn view(&self, shape: &[isize]) -> Result<Tensor> {
        if !self.is_contiguous() {
            return Err(TensorError::NotViewable {
                reason: "view() requires a contiguous tensor".into(),
            });
        }
        let resolved = resolve_shape(shape, self.numel())?;
        Ok(self.view_with(resolved.clone(), contiguous_strides(&resolved), self.offset))
    }

    /// Like [`Tensor::view`], but copies to a contiguous layout when needed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NumelMismatch`] if element counts differ.
    pub fn reshape(&self, shape: &[isize]) -> Result<Tensor> {
        if self.is_contiguous() {
            self.view(shape)
        } else {
            self.clone_data().view(shape)
        }
    }

    /// Flatten to one dimension, copying if non-contiguous.
    pub fn flatten(&self) -> Tensor {
        // A flatten can never fail: -1 always resolves.
        self.reshape(&[-1]).expect("flatten is infallible")
    }
}

fn resolve_shape(shape: &[isize], total: usize) -> Result<Vec<usize>> {
    let mut infer: Option<usize> = None;
    let mut known = 1usize;
    for (i, &d) in shape.iter().enumerate() {
        if d == -1 {
            if infer.is_some() {
                return Err(TensorError::invalid("at most one -1 dimension"));
            }
            infer = Some(i);
        } else if d < 0 {
            return Err(TensorError::invalid("negative dimension in shape"));
        } else {
            known *= d as usize;
        }
    }
    let mut out: Vec<usize> = shape.iter().map(|&d| d.max(0) as usize).collect();
    if let Some(i) = infer {
        if known == 0 || !total.is_multiple_of(known) {
            return Err(TensorError::NumelMismatch {
                from: total,
                to: known,
            });
        }
        out[i] = total / known;
    }
    if numel(&out) != total {
        return Err(TensorError::NumelMismatch {
            from: total,
            to: numel(&out),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scalar;

    fn iota(shape: &[usize]) -> Tensor {
        let n = shape.iter().product();
        Tensor::from_vec_f32((0..n).map(|i| i as f32).collect(), shape).unwrap()
    }

    #[test]
    fn select_shares_storage() {
        let t = iota(&[3, 4]);
        let row = t.select(0, 1).unwrap();
        assert_eq!(row.shape(), &[4]);
        assert!(row.shares_storage_with(&t));
        assert_eq!(row.to_vec_f32().unwrap(), vec![4.0, 5.0, 6.0, 7.0]);
        let neg = t.select(0, -1).unwrap();
        assert_eq!(neg.at(&[0]).unwrap(), Scalar::F32(8.0));
    }

    #[test]
    fn slice_with_step_and_clamping() {
        let t = iota(&[6]);
        let s = t.slice(0, 1, 100, 2).unwrap();
        assert_eq!(s.to_vec_f32().unwrap(), vec![1.0, 3.0, 5.0]);
        assert!(t.slice(0, 0, 6, 0).is_err());
        let empty = t.slice(0, 4, 2, 1).unwrap();
        assert_eq!(empty.numel(), 0);
    }

    #[test]
    fn narrow_checks_bounds() {
        let t = iota(&[5]);
        assert_eq!(
            t.narrow(0, 1, 3).unwrap().to_vec_f32().unwrap(),
            vec![1.0, 2.0, 3.0]
        );
        assert!(t.narrow(0, 3, 3).is_err());
    }

    #[test]
    fn permute_and_transpose() {
        let t = iota(&[2, 3]);
        let p = t.transpose(0, 1).unwrap();
        assert_eq!(p.shape(), &[3, 2]);
        assert_eq!(p.at(&[2, 1]).unwrap(), Scalar::F32(5.0));
        assert!(!p.is_contiguous());
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
    }

    #[test]
    fn squeeze_unsqueeze_round_trip() {
        let t = iota(&[2, 3]);
        let u = t.unsqueeze(1).unwrap();
        assert_eq!(u.shape(), &[2, 1, 3]);
        let s = u.squeeze(1).unwrap();
        assert_eq!(s.shape(), &[2, 3]);
        assert!(u.squeeze(0).is_err());
    }

    #[test]
    fn expand_broadcasts_without_copy() {
        let t = iota(&[1, 3]);
        let e = t.expand(&[4, 3]).unwrap();
        assert_eq!(e.shape(), &[4, 3]);
        assert_eq!(e.at(&[3, 2]).unwrap(), Scalar::F32(2.0));
        assert!(e.shares_storage_with(&t));
        assert!(iota(&[2, 3]).expand(&[4, 3]).is_err());
    }

    #[test]
    fn view_and_reshape() {
        let t = iota(&[2, 6]);
        let v = t.view(&[3, -1]).unwrap();
        assert_eq!(v.shape(), &[3, 4]);
        assert!(v.shares_storage_with(&t));
        let tp = t.transpose(0, 1).unwrap();
        assert!(tp.view(&[12]).is_err());
        let r = tp.reshape(&[12]).unwrap();
        assert!(!r.shares_storage_with(&t));
        assert_eq!(r.at(&[1]).unwrap(), Scalar::F32(6.0));
    }

    #[test]
    fn mutation_through_chained_views() {
        // b = a[1]; c = b[0:2]; c.fill_(9) mutates a.
        let a = iota(&[2, 4]);
        let b = a.select(0, 1).unwrap();
        let c = b.slice(0, 0, 2, 1).unwrap();
        c.fill_(9.0).unwrap();
        assert_eq!(
            a.to_vec_f32().unwrap(),
            vec![0.0, 1.0, 2.0, 3.0, 9.0, 9.0, 6.0, 7.0]
        );
    }
}
