//! The [`Tensor`] type: a strided view over shared storage.

use crate::index::{contiguous_strides, normalize_index, numel, offset_of, CoordIter};
use crate::storage::{Buffer, Storage};
use crate::{DType, Result, Scalar, StorageId, TensorError};

/// An n-dimensional strided view over reference-counted storage.
///
/// Cloning a `Tensor` is cheap and produces another view of the *same*
/// storage; use [`Tensor::contiguous`] or [`Tensor::clone_data`] to copy the
/// data. View operators ([`Tensor::select`], [`Tensor::slice`], …) return
/// tensors that alias the receiver, and in-place operators ([`Tensor::copy_`],
/// [`Tensor::add_`], …) mutate storage visible through every alias — the
/// semantics the TensorSSA pass functionalizes away.
#[derive(Debug, Clone)]
pub struct Tensor {
    pub(crate) storage: Storage,
    pub(crate) offset: usize,
    pub(crate) shape: Vec<usize>,
    pub(crate) strides: Vec<isize>,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    pub(crate) fn from_buffer(buffer: Buffer, shape: Vec<usize>) -> Tensor {
        debug_assert_eq!(buffer.len(), numel(&shape));
        let strides = contiguous_strides(&shape);
        Tensor {
            storage: Storage::new(buffer),
            offset: 0,
            shape,
            strides,
        }
    }

    /// A new f32 tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor::full_scalar(shape, Scalar::F32(0.0))
    }

    /// A new f32 tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Tensor {
        Tensor::full_scalar(shape, Scalar::F32(1.0))
    }

    /// A new f32 tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        Tensor::full_scalar(shape, Scalar::F32(value))
    }

    /// A new tensor of `value`'s dtype filled with `value`.
    pub fn full_scalar(shape: &[usize], value: Scalar) -> Tensor {
        let buffer = Buffer::filled(value.dtype(), numel(shape), value);
        Tensor::from_buffer(buffer, shape.to_vec())
    }

    /// A new tensor of the given dtype filled with zeros.
    pub fn zeros_dtype(shape: &[usize], dtype: DType) -> Tensor {
        Tensor::full_scalar(shape, Scalar::F32(0.0).cast(dtype))
    }

    /// A rank-0 f32 tensor.
    pub fn scalar_f32(value: f32) -> Tensor {
        Tensor::from_buffer(Buffer::F32(vec![value]), vec![])
    }

    /// A rank-0 i64 tensor.
    pub fn scalar_i64(value: i64) -> Tensor {
        Tensor::from_buffer(Buffer::I64(vec![value]), vec![])
    }

    /// A rank-0 bool tensor.
    pub fn scalar_bool(value: bool) -> Tensor {
        Tensor::from_buffer(Buffer::Bool(vec![value]), vec![])
    }

    /// Build an f32 tensor from `data` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NumelMismatch`] if `data.len()` does not match
    /// the number of elements of `shape`.
    pub fn from_vec_f32(data: Vec<f32>, shape: &[usize]) -> Result<Tensor> {
        if data.len() != numel(shape) {
            return Err(TensorError::NumelMismatch {
                from: data.len(),
                to: numel(shape),
            });
        }
        Ok(Tensor::from_buffer(Buffer::F32(data), shape.to_vec()))
    }

    /// Build an i64 tensor from `data` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NumelMismatch`] on length mismatch.
    pub fn from_vec_i64(data: Vec<i64>, shape: &[usize]) -> Result<Tensor> {
        if data.len() != numel(shape) {
            return Err(TensorError::NumelMismatch {
                from: data.len(),
                to: numel(shape),
            });
        }
        Ok(Tensor::from_buffer(Buffer::I64(data), shape.to_vec()))
    }

    /// Build a bool tensor from `data` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NumelMismatch`] on length mismatch.
    pub fn from_vec_bool(data: Vec<bool>, shape: &[usize]) -> Result<Tensor> {
        if data.len() != numel(shape) {
            return Err(TensorError::NumelMismatch {
                from: data.len(),
                to: numel(shape),
            });
        }
        Ok(Tensor::from_buffer(Buffer::Bool(data), shape.to_vec()))
    }

    /// `[0, 1, …, n-1]` as a 1-D f32 tensor.
    pub fn arange_f32(n: usize) -> Tensor {
        Tensor::from_buffer(Buffer::F32((0..n).map(|i| i as f32).collect()), vec![n])
    }

    /// `[0, 1, …, n-1]` as a 1-D i64 tensor.
    pub fn arange_i64(n: usize) -> Tensor {
        Tensor::from_buffer(Buffer::I64((0..n as i64).collect()), vec![n])
    }

    // ------------------------------------------------------------- metadata

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.storage.dtype()
    }

    /// Logical shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Strides in elements (0 for broadcast dimensions).
    pub fn strides(&self) -> &[isize] {
        &self.strides
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of logical elements.
    pub fn numel(&self) -> usize {
        numel(&self.shape)
    }

    /// Identity of the underlying storage; equal ids alias the same memory.
    pub fn storage_id(&self) -> StorageId {
        self.storage.id()
    }

    /// Offset (in elements) of this view into its storage.
    pub fn storage_offset(&self) -> usize {
        self.offset
    }

    /// Whether two tensors share the same storage buffer.
    pub fn shares_storage_with(&self, other: &Tensor) -> bool {
        self.storage_id() == other.storage_id()
    }

    /// Whether this view is laid out contiguously in row-major order.
    pub fn is_contiguous(&self) -> bool {
        self.strides == contiguous_strides(&self.shape)
    }

    // -------------------------------------------------------- element access

    fn checked_offset(&self, coord: &[usize]) -> Result<usize> {
        if coord.len() != self.rank() {
            return Err(TensorError::invalid(format!(
                "coordinate of length {} for rank {} tensor",
                coord.len(),
                self.rank()
            )));
        }
        for (d, (&c, &s)) in coord.iter().zip(&self.shape).enumerate() {
            normalize_index(c as isize, s, d)?;
        }
        let rel = offset_of(coord, &self.strides);
        Ok((self.offset as isize + rel) as usize)
    }

    /// Read the element at `coord`.
    ///
    /// # Errors
    ///
    /// Returns an error if `coord` has the wrong rank or is out of range.
    pub fn at(&self, coord: &[usize]) -> Result<Scalar> {
        let off = self.checked_offset(coord)?;
        Ok(self.storage.with_read(|b| b.get(off)))
    }

    /// Write the element at `coord` (casting `value` to this tensor's dtype).
    ///
    /// # Errors
    ///
    /// Returns an error if `coord` has the wrong rank or is out of range.
    pub fn set_at(&self, coord: &[usize], value: Scalar) -> Result<()> {
        let off = self.checked_offset(coord)?;
        self.storage.with_write(|b| b.set(off, value));
        Ok(())
    }

    /// The single element of a one-element tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor has more than one element.
    pub fn item(&self) -> Result<Scalar> {
        if self.numel() != 1 {
            return Err(TensorError::invalid(format!(
                "item() on tensor with {} elements",
                self.numel()
            )));
        }
        let coord = vec![0; self.rank()];
        self.at(&coord)
    }

    // ----------------------------------------------------------- iteration

    /// Visit every element in row-major logical order.
    pub(crate) fn for_each(&self, mut f: impl FnMut(Scalar)) {
        if self.is_contiguous() {
            // Fast path: a single flat range, no coordinate arithmetic.
            let n = self.numel();
            self.storage.with_read(|b| match b {
                Buffer::F32(v) => {
                    for &x in &v[self.offset..self.offset + n] {
                        f(Scalar::F32(x));
                    }
                }
                Buffer::I64(v) => {
                    for &x in &v[self.offset..self.offset + n] {
                        f(Scalar::I64(x));
                    }
                }
                Buffer::Bool(v) => {
                    for &x in &v[self.offset..self.offset + n] {
                        f(Scalar::Bool(x));
                    }
                }
            });
            return;
        }
        self.storage.with_read(|b| {
            for coord in CoordIter::new(&self.shape) {
                let off = (self.offset as isize + offset_of(&coord, &self.strides)) as usize;
                f(b.get(off));
            }
        });
    }

    /// Flat storage offsets of every element in row-major logical order.
    pub(crate) fn element_offsets(&self) -> Vec<usize> {
        CoordIter::new(&self.shape)
            .map(|coord| (self.offset as isize + offset_of(&coord, &self.strides)) as usize)
            .collect()
    }

    pub(crate) fn storage(&self) -> &Storage {
        &self.storage
    }

    // ----------------------------------------------------------- conversion

    /// Copy the logical contents into a fresh contiguous tensor.
    pub fn clone_data(&self) -> Tensor {
        let shape = self.shape.clone();
        let buffer = self.storage.with_read(|b| {
            if self.is_contiguous() {
                // Fast path: one slice copy.
                let n = self.numel();
                return match b {
                    Buffer::F32(v) => Buffer::F32(v[self.offset..self.offset + n].to_vec()),
                    Buffer::I64(v) => Buffer::I64(v[self.offset..self.offset + n].to_vec()),
                    Buffer::Bool(v) => Buffer::Bool(v[self.offset..self.offset + n].to_vec()),
                };
            }
            let offs = self.element_offsets();
            match b {
                Buffer::F32(v) => Buffer::F32(offs.iter().map(|&o| v[o]).collect()),
                Buffer::I64(v) => Buffer::I64(offs.iter().map(|&o| v[o]).collect()),
                Buffer::Bool(v) => Buffer::Bool(offs.iter().map(|&o| v[o]).collect()),
            }
        });
        Tensor::from_buffer(buffer, shape)
    }

    /// This tensor if already contiguous, otherwise a contiguous copy.
    pub fn contiguous(&self) -> Tensor {
        if self.is_contiguous() {
            self.clone()
        } else {
            self.clone_data()
        }
    }

    /// Cast to another element type (always copies).
    pub fn cast(&self, dtype: DType) -> Tensor {
        let mut out: Vec<Scalar> = Vec::with_capacity(self.numel());
        self.for_each(|s| out.push(s.cast(dtype)));
        let buffer = match dtype {
            DType::F32 => Buffer::F32(out.iter().map(|s| s.as_f32()).collect()),
            DType::I64 => Buffer::I64(out.iter().map(|s| s.as_i64()).collect()),
            DType::Bool => Buffer::Bool(out.iter().map(|s| s.as_bool()).collect()),
        };
        Tensor::from_buffer(buffer, self.shape.clone())
    }

    /// Logical contents as a flat `Vec<f32>` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-f32 tensors.
    pub fn to_vec_f32(&self) -> Result<Vec<f32>> {
        if self.dtype() != DType::F32 {
            return Err(TensorError::DTypeMismatch {
                expected: DType::F32,
                found: self.dtype(),
                op: "to_vec_f32",
            });
        }
        let mut out = Vec::with_capacity(self.numel());
        self.for_each(|s| out.push(s.as_f32()));
        Ok(out)
    }

    /// Logical contents as a flat `Vec<i64>` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-i64 tensors.
    pub fn to_vec_i64(&self) -> Result<Vec<i64>> {
        if self.dtype() != DType::I64 {
            return Err(TensorError::DTypeMismatch {
                expected: DType::I64,
                found: self.dtype(),
                op: "to_vec_i64",
            });
        }
        let mut out = Vec::with_capacity(self.numel());
        self.for_each(|s| out.push(s.as_i64()));
        Ok(out)
    }

    /// Logical contents as a flat `Vec<bool>` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-bool tensors.
    pub fn to_vec_bool(&self) -> Result<Vec<bool>> {
        if self.dtype() != DType::Bool {
            return Err(TensorError::DTypeMismatch {
                expected: DType::Bool,
                found: self.dtype(),
                op: "to_vec_bool",
            });
        }
        let mut out = Vec::with_capacity(self.numel());
        self.for_each(|s| out.push(s.as_bool()));
        Ok(out)
    }

    /// Whether two tensors have identical shape and all elements within
    /// `tol` of each other (after conversion to f64).
    ///
    /// Useful in tests comparing eager execution against compiled execution.
    pub fn allclose(&self, other: &Tensor, tol: f64) -> bool {
        if self.shape != other.shape {
            return false;
        }
        let mut lhs = Vec::with_capacity(self.numel());
        self.for_each(|s| lhs.push(s.as_f64()));
        let mut rhs = Vec::with_capacity(other.numel());
        other.for_each(|s| rhs.push(s.as_f64()));
        lhs.iter()
            .zip(&rhs)
            .all(|(a, b)| (a - b).abs() <= tol + tol * b.abs().max(a.abs()))
    }
}

impl PartialEq for Tensor {
    /// Structural equality: same shape, dtype and logical contents.
    fn eq(&self, other: &Tensor) -> bool {
        if self.shape != other.shape || self.dtype() != other.dtype() {
            return false;
        }
        let mut lhs = Vec::with_capacity(self.numel());
        self.for_each(|s| lhs.push(s));
        let mut rhs = Vec::with_capacity(other.numel());
        other.for_each(|s| rhs.push(s));
        lhs == rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_metadata() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.strides(), &[3, 1]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.dtype(), DType::F32);
        assert!(t.is_contiguous());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec_f32(vec![1.0, 2.0], &[3]).is_err());
        let t = Tensor::from_vec_f32(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.at(&[1, 0]).unwrap(), Scalar::F32(3.0));
    }

    #[test]
    fn element_set_and_get() {
        let t = Tensor::zeros(&[2, 2]);
        t.set_at(&[0, 1], Scalar::F32(5.0)).unwrap();
        assert_eq!(t.at(&[0, 1]).unwrap(), Scalar::F32(5.0));
        assert!(t.at(&[0, 2]).is_err());
        assert!(t.at(&[0]).is_err());
    }

    #[test]
    fn clone_aliases_clone_data_copies() {
        let t = Tensor::zeros(&[2]);
        let alias = t.clone();
        let copy = t.clone_data();
        assert!(t.shares_storage_with(&alias));
        assert!(!t.shares_storage_with(&copy));
        t.set_at(&[0], Scalar::F32(1.0)).unwrap();
        assert_eq!(alias.at(&[0]).unwrap(), Scalar::F32(1.0));
        assert_eq!(copy.at(&[0]).unwrap(), Scalar::F32(0.0));
    }

    #[test]
    fn item_requires_single_element() {
        assert_eq!(Tensor::scalar_i64(4).item().unwrap(), Scalar::I64(4));
        assert!(Tensor::zeros(&[2]).item().is_err());
    }

    #[test]
    fn cast_converts_elements() {
        let t = Tensor::from_vec_f32(vec![0.0, 1.5], &[2]).unwrap();
        assert_eq!(t.cast(DType::I64).to_vec_i64().unwrap(), vec![0, 1]);
        assert_eq!(
            t.cast(DType::Bool).to_vec_bool().unwrap(),
            vec![false, true]
        );
    }

    #[test]
    fn structural_equality() {
        let a = Tensor::from_vec_f32(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec_f32(vec![1.0, 2.0], &[2]).unwrap();
        let c = Tensor::from_vec_f32(vec![1.0, 2.0], &[2, 1]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arange_builders() {
        assert_eq!(Tensor::arange_i64(3).to_vec_i64().unwrap(), vec![0, 1, 2]);
        assert_eq!(Tensor::arange_f32(2).to_vec_f32().unwrap(), vec![0.0, 1.0]);
    }
}
