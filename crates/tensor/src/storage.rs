//! Shared, reference-counted storage buffers.
//!
//! A [`Storage`] is the unit of aliasing: every tensor view of the same base
//! tensor holds a clone of the same `Storage`, and in-place operators write
//! through it. [`StorageId`] lets analyses (and tests) ask whether two tensors
//! share memory without touching the data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{DType, Scalar};

static NEXT_STORAGE_ID: AtomicU64 = AtomicU64::new(0);

/// Opaque identity of a storage buffer; equal ids mean shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StorageId(u64);

/// Typed element buffer.
#[derive(Debug, Clone)]
pub(crate) enum Buffer {
    F32(Vec<f32>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
}

impl Buffer {
    pub(crate) fn dtype(&self) -> DType {
        match self {
            Buffer::F32(_) => DType::F32,
            Buffer::I64(_) => DType::I64,
            Buffer::Bool(_) => DType::Bool,
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Buffer::F32(v) => v.len(),
            Buffer::I64(v) => v.len(),
            Buffer::Bool(v) => v.len(),
        }
    }

    pub(crate) fn get(&self, i: usize) -> Scalar {
        match self {
            Buffer::F32(v) => Scalar::F32(v[i]),
            Buffer::I64(v) => Scalar::I64(v[i]),
            Buffer::Bool(v) => Scalar::Bool(v[i]),
        }
    }

    pub(crate) fn set(&mut self, i: usize, s: Scalar) {
        match self {
            Buffer::F32(v) => v[i] = s.as_f32(),
            Buffer::I64(v) => v[i] = s.as_i64(),
            Buffer::Bool(v) => v[i] = s.as_bool(),
        }
    }

    pub(crate) fn filled(dtype: DType, len: usize, value: Scalar) -> Buffer {
        match dtype {
            DType::F32 => Buffer::F32(vec![value.as_f32(); len]),
            DType::I64 => Buffer::I64(vec![value.as_i64(); len]),
            DType::Bool => Buffer::Bool(vec![value.as_bool(); len]),
        }
    }
}

/// Reference-counted shared buffer; clones alias the same memory.
#[derive(Debug, Clone)]
pub(crate) struct Storage {
    id: StorageId,
    data: Arc<RwLock<Buffer>>,
}

impl Storage {
    pub(crate) fn new(buffer: Buffer) -> Storage {
        Storage {
            id: StorageId(NEXT_STORAGE_ID.fetch_add(1, Ordering::Relaxed)),
            data: Arc::new(RwLock::new(buffer)),
        }
    }

    pub(crate) fn id(&self) -> StorageId {
        self.id
    }

    pub(crate) fn dtype(&self) -> DType {
        self.data.read().dtype()
    }

    /// Run `f` with shared access to the buffer.
    pub(crate) fn with_read<R>(&self, f: impl FnOnce(&Buffer) -> R) -> R {
        f(&self.data.read())
    }

    /// Run `f` with exclusive access to the buffer.
    pub(crate) fn with_write<R>(&self, f: impl FnOnce(&mut Buffer) -> R) -> R {
        f(&mut self.data.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_identity_and_data() {
        let s = Storage::new(Buffer::F32(vec![1.0, 2.0]));
        let t = s.clone();
        assert_eq!(s.id(), t.id());
        t.with_write(|b| b.set(0, Scalar::F32(9.0)));
        assert_eq!(s.with_read(|b| b.get(0)), Scalar::F32(9.0));
    }

    #[test]
    fn fresh_storages_have_distinct_ids() {
        let a = Storage::new(Buffer::F32(vec![0.0]));
        let b = Storage::new(Buffer::F32(vec![0.0]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn filled_buffers_match_dtype() {
        assert_eq!(
            Buffer::filled(DType::I64, 3, Scalar::F32(2.7)).get(1),
            Scalar::I64(2)
        );
        assert_eq!(
            Buffer::filled(DType::Bool, 2, Scalar::I64(1)).get(0),
            Scalar::Bool(true)
        );
    }
}
