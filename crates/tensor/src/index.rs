//! Shape/stride arithmetic: contiguous layouts, coordinate iteration and
//! broadcasting.

use crate::{Result, TensorError};

/// Row-major (C-order) strides for `shape`, in elements.
pub(crate) fn contiguous_strides(shape: &[usize]) -> Vec<isize> {
    let mut strides = vec![0isize; shape.len()];
    let mut acc = 1isize;
    for (i, &dim) in shape.iter().enumerate().rev() {
        strides[i] = acc;
        acc *= dim as isize;
    }
    strides
}

/// Number of elements in `shape`.
pub(crate) fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Flat storage offset of coordinate `coord` under `strides`, relative to the
/// tensor's base offset.
pub(crate) fn offset_of(coord: &[usize], strides: &[isize]) -> isize {
    coord
        .iter()
        .zip(strides)
        .map(|(&c, &s)| c as isize * s)
        .sum()
}

/// Normalize a possibly-negative dimension index against `rank`.
pub(crate) fn normalize_dim(dim: isize, rank: usize) -> Result<usize> {
    let r = rank as isize;
    let d = if dim < 0 { dim + r } else { dim };
    if d < 0 || d >= r.max(1) {
        return Err(TensorError::DimOutOfRange { dim, rank });
    }
    Ok(d as usize)
}

/// Normalize a possibly-negative element index against dimension `size`.
pub(crate) fn normalize_index(index: isize, size: usize, dim: usize) -> Result<usize> {
    let s = size as isize;
    let i = if index < 0 { index + s } else { index };
    if i < 0 || i >= s {
        return Err(TensorError::IndexOutOfRange { index, size, dim });
    }
    Ok(i as usize)
}

/// Broadcast two shapes per NumPy/PyTorch rules.
pub(crate) fn broadcast_shapes(a: &[usize], b: &[usize], op: &'static str) -> Result<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(TensorError::ShapeMismatch {
                lhs: a.to_vec(),
                rhs: b.to_vec(),
                op,
            });
        };
    }
    Ok(out)
}

/// Strides for reading a tensor of `shape`/`strides` as if broadcast to
/// `target` (broadcast dimensions get stride 0).
pub(crate) fn broadcast_strides(
    shape: &[usize],
    strides: &[isize],
    target: &[usize],
) -> Vec<isize> {
    let pad = target.len() - shape.len();
    let mut out = vec![0isize; target.len()];
    for i in 0..shape.len() {
        out[pad + i] = if shape[i] == 1 && target[pad + i] != 1 {
            0
        } else {
            strides[i]
        };
    }
    out
}

/// Iterator over the coordinates of a shape in row-major order.
///
/// Yields nothing for shapes containing a zero dimension; yields one empty
/// coordinate for the rank-0 shape.
pub(crate) struct CoordIter {
    shape: Vec<usize>,
    coord: Vec<usize>,
    done: bool,
}

impl CoordIter {
    pub(crate) fn new(shape: &[usize]) -> CoordIter {
        CoordIter {
            done: shape.contains(&0),
            coord: vec![0; shape.len()],
            shape: shape.to_vec(),
        }
    }
}

impl Iterator for CoordIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.coord.clone();
        // Advance odometer-style from the innermost dimension.
        let mut i = self.shape.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.coord[i] += 1;
            if self.coord[i] < self.shape[i] {
                break;
            }
            self.coord[i] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_strides_row_major() {
        assert_eq!(contiguous_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(contiguous_strides(&[]), Vec::<isize>::new());
        assert_eq!(contiguous_strides(&[5]), vec![1]);
    }

    #[test]
    fn coord_iter_visits_all_row_major() {
        let coords: Vec<_> = CoordIter::new(&[2, 2]).collect();
        assert_eq!(coords, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn coord_iter_scalar_and_empty() {
        assert_eq!(CoordIter::new(&[]).count(), 1);
        assert_eq!(CoordIter::new(&[0, 3]).count(), 0);
    }

    #[test]
    fn broadcasting_rules() {
        assert_eq!(broadcast_shapes(&[2, 1], &[3], "t").unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[4], "t").unwrap(), vec![4]);
        assert!(broadcast_shapes(&[2], &[3], "t").is_err());
    }

    #[test]
    fn broadcast_strides_zeroes_expanded_dims() {
        let s = broadcast_strides(&[2, 1], &[1, 1], &[2, 3]);
        assert_eq!(s, vec![1, 0]);
        let s = broadcast_strides(&[3], &[1], &[2, 3]);
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn negative_dims_and_indices() {
        assert_eq!(normalize_dim(-1, 3).unwrap(), 2);
        assert!(normalize_dim(3, 3).is_err());
        assert_eq!(normalize_index(-2, 5, 0).unwrap(), 3);
        assert!(normalize_index(5, 5, 0).is_err());
    }
}
