//! Strided-view tensor runtime with shared storage, views and in-place mutation.
//!
//! This crate is the "PyTorch eager" substrate of the TensorSSA reproduction:
//! it provides n-dimensional tensors whose *views* (produced by [`Tensor::select`],
//! [`Tensor::slice`], [`Tensor::permute`], …) share the same underlying storage
//! as their base tensor, and *in-place* operators ([`Tensor::copy_`],
//! [`Tensor::add_`], …) that mutate that storage through any view. This is
//! exactly the aliasing behaviour that the TensorSSA functionalization pass
//! (crate `tssa-core`) must analyse and eliminate.
//!
//! # Examples
//!
//! A mutation through a view is visible through the base tensor (Figure 1 of
//! the paper):
//!
//! ```
//! # use tssa_tensor::Tensor;
//! # fn main() -> Result<(), tssa_tensor::TensorError> {
//! let a = Tensor::zeros(&[2, 3]);
//! let b = a.select(0, 1)?;          // b is a view of row 1 of a
//! let c = Tensor::full(&[3], 7.0);
//! b.copy_(&c)?;                     // mutating b mutates a
//! assert_eq!(a.to_vec_f32()?, vec![0.0, 0.0, 0.0, 7.0, 7.0, 7.0]);
//! # Ok(())
//! # }
//! ```

mod dtype;
mod error;
mod fmt;
mod index;
mod inplace;
mod ops;
mod random;
mod storage;
mod tensor;
mod view;

pub use dtype::{DType, Scalar};
pub use error::TensorError;
pub use ops::{concat, stack, where_select};
pub use storage::StorageId;
pub use tensor::Tensor;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
