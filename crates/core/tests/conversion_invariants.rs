//! Invariants of the TensorSSA conversion checked in isolation (beyond the
//! cross-pipeline equivalence suite at the workspace root).

use tssa_core::{convert_to_tensorssa, passes};
use tssa_ir::{parse_graph, Graph, Op};

fn convert(src: &str) -> Graph {
    let mut g = parse_graph(src).unwrap_or_else(|e| panic!("{src}\n{e}"));
    convert_to_tensorssa(&mut g);
    passes::dce(&mut g);
    g.verify().unwrap_or_else(|e| panic!("{e}\n{g}"));
    g
}

fn count(g: &Graph, pred: impl Fn(&Op) -> bool) -> usize {
    g.nodes_recursive(g.top())
        .into_iter()
        .filter(|&n| pred(&g.node(n).op))
        .count()
}

#[test]
fn no_updates_survive_conversion() {
    let g = convert(
        "graph(%x : Tensor, %n : int):
           %b : Tensor = aten::clone(%x)
           %t : bool = prim::Constant[value=true]()
           prim::Loop(%n, %t)
             block0(%i : int):
               %v : Tensor = aten::select[dim=0](%b, %i)
               %m : Tensor = aten::relu_(%v)
               -> (%t)
           return (%b)",
    );
    assert_eq!(count(&g, |op| *op == Op::Update), 0, "{g}");
}

#[test]
fn every_assign_has_an_origin_version_chain() {
    // Two mutations to different slices: each produces a distinct assign,
    // and the graph's return is the latest version (not the clone).
    let g = convert(
        "graph(%x : Tensor):
           %b : Tensor = aten::clone(%x)
           %i : int = prim::Constant[value=0]()
           %j : int = prim::Constant[value=1]()
           %v0 : Tensor = aten::select[dim=0](%b, %i)
           %m0 : Tensor = aten::relu_(%v0)
           %v1 : Tensor = aten::select[dim=0](%b, %j)
           %m1 : Tensor = aten::sigmoid_(%v1)
           return (%b)",
    );
    assert_eq!(count(&g, |op| matches!(op, Op::Assign(_))), 2, "{g}");
    let ret = g.block(g.top()).returns[0];
    let def = g.def_node(ret).unwrap();
    assert!(matches!(g.node(def).op, Op::Assign(_)), "{g}");
    // The first assign feeds the second (version chain).
    let assigns: Vec<_> = g
        .nodes_recursive(g.top())
        .into_iter()
        .filter(|&n| matches!(g.node(n).op, Op::Assign(_)))
        .collect();
    let second_base = g.node(assigns[1]).inputs[0];
    assert_eq!(g.def_node(second_base), Some(assigns[0]), "{g}");
}

#[test]
fn reads_before_mutation_see_old_version() {
    // %before reads the view prior to the mutation and must keep reading the
    // pre-mutation value (its access is *not* re-pointed at the new
    // version).
    let g = convert(
        "graph(%x : Tensor):
           %b : Tensor = aten::clone(%x)
           %i : int = prim::Constant[value=0]()
           %v : Tensor = aten::select[dim=0](%b, %i)
           %before : Tensor = aten::exp(%v)
           %m : Tensor = aten::relu_(%v)
           %after : Tensor = aten::exp(%v)
           return (%before, %after)",
    );
    let rets = g.block(g.top()).returns.clone();
    let before_src = g.node(g.def_node(rets[0]).unwrap()).inputs[0];
    let after_src = g.node(g.def_node(rets[1]).unwrap()).inputs[0];
    assert_ne!(
        before_src, after_src,
        "pre- and post-mutation reads must see different versions\n{g}"
    );
}

#[test]
fn conversion_is_idempotent() {
    let src = "graph(%x : Tensor):
           %b : Tensor = aten::clone(%x)
           %i : int = prim::Constant[value=0]()
           %v : Tensor = aten::select[dim=0](%b, %i)
           %m : Tensor = aten::relu_(%v)
           return (%b)";
    let mut g = parse_graph(src).unwrap();
    let first = convert_to_tensorssa(&mut g);
    assert_eq!(first.mutations_removed, 1);
    let second = convert_to_tensorssa(&mut g);
    assert_eq!(second.mutations_removed, 0, "nothing left to convert");
    assert_eq!(second.candidates, 0);
    assert!(g.verify().is_ok());
}

#[test]
fn unrelated_pure_code_is_untouched() {
    let src = "graph(%x : Tensor, %w : Tensor):
           %m : Tensor = aten::matmul(%x, %w)
           %s : Tensor = aten::softmax[dim=1](%m)
           return (%s)";
    let mut g = parse_graph(src).unwrap();
    let before = g.to_string();
    let stats = convert_to_tensorssa(&mut g);
    assert_eq!(stats.candidates, 0);
    assert_eq!(g.to_string(), before, "pure graphs pass through unchanged");
}

#[test]
fn loop_signature_growth_is_exactly_one_carry_per_tensor() {
    let g = convert(
        "graph(%x : Tensor, %y : Tensor, %n : int):
           %a : Tensor = aten::clone(%x)
           %b : Tensor = aten::clone(%y)
           %t : bool = prim::Constant[value=true]()
           prim::Loop(%n, %t)
             block0(%i : int):
               %va : Tensor = aten::select[dim=0](%a, %i)
               %ma : Tensor = aten::relu_(%va)
               %vb : Tensor = aten::select[dim=0](%b, %i)
               %mb : Tensor = aten::tanh_(%vb)
               -> (%t)
           return (%a, %b)",
    );
    let lp = g
        .nodes_recursive(g.top())
        .into_iter()
        .find(|&n| g.node(n).op == Op::Loop)
        .unwrap();
    // Two mutated tensors → exactly two carried values.
    assert_eq!(g.node(lp).outputs.len(), 2, "{g}");
    assert_eq!(g.node(lp).inputs.len(), 4, "{g}"); // n, cond, a, b
}

#[test]
fn prune_loop_carries_removes_pass_through() {
    use tssa_ir::Type;
    let mut g = parse_graph(
        "graph(%x : Tensor, %y : Tensor, %n : int):
           %t : bool = prim::Constant[value=true]()
           %a : Tensor, %b : Tensor = prim::Loop(%n, %t, %x, %y)
             block0(%i : int, %ca : Tensor, %cb : Tensor):
               %u : Tensor = aten::relu(%ca)
               -> (%t, %u, %cb)
           return (%a)",
    )
    .unwrap();
    // %b is unused and %cb only passes through: one carry removable.
    assert_eq!(passes::prune_loop_carries(&mut g), 1);
    assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
    let lp = g
        .nodes_recursive(g.top())
        .into_iter()
        .find(|&n| g.node(n).op == Op::Loop)
        .unwrap();
    assert_eq!(g.node(lp).outputs.len(), 1);
    assert_eq!(g.node(lp).inputs.len(), 3);
    assert_eq!(g.value(g.node(lp).outputs[0]).ty, Type::Tensor);
}

#[test]
fn prune_keeps_live_and_computing_carries() {
    let mut g = parse_graph(
        "graph(%x : Tensor, %n : int):
           %t : bool = prim::Constant[value=true]()
           %o : Tensor = prim::Loop(%n, %t, %x)
             block0(%i : int, %c : Tensor):
               %u : Tensor = aten::relu(%c)
               -> (%t, %u)
           return (%o)",
    )
    .unwrap();
    // Output used: nothing to prune.
    assert_eq!(passes::prune_loop_carries(&mut g), 0);

    // Output unused but the param feeds real computation returned in the
    // same slot: the conservative pass leaves it alone.
    let mut g2 = parse_graph(
        "graph(%x : Tensor, %n : int):
           %t : bool = prim::Constant[value=true]()
           %o : Tensor = prim::Loop(%n, %t, %x)
             block0(%i : int, %c : Tensor):
               %u : Tensor = aten::relu(%c)
               -> (%t, %u)
           return (%x)",
    )
    .unwrap();
    assert_eq!(passes::prune_loop_carries(&mut g2), 0);
}
